//! The engine's page I/O boundary.
//!
//! The engine never does I/O directly: all page reads go through
//! [`PageAccess`] and all mutations through [`PageMutator`]. This is the
//! same layering trick as SQL Server's FCB virtualization (paper §3.6) one
//! level up: B-trees, the version store, and the transaction manager are
//! identical whether they run on a monolithic local store, a Socrates
//! primary (tiered cache + log pipeline), a read-only secondary, or an
//! HADR replica — only the injected I/O implementation differs.

use crate::evicted::EvictedLsnMap;
use parking_lot::Mutex;
use socrates_common::metrics::Counter;
use socrates_common::obs::{SpanKind, SpanRing, TraceRecorder};
use socrates_common::TxnId;
use socrates_common::{Error, Lsn, NodeId, PageId, Result};
use socrates_storage::cache::{PageRef, TieredCache};
use socrates_storage::page::{Page, PageType};
use socrates_storage::pageops::{apply_page_op, PageOp};
use socrates_wal::pipeline::LogPipeline;
use socrates_wal::record::{LogPayload, LogRecord};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Read access to pages.
pub trait PageAccess: Send + Sync {
    /// Get the page, fetching through whatever hierarchy backs this node.
    fn page(&self, id: PageId) -> Result<PageRef>;

    /// Advisory read-ahead: the caller expects to read `count` pages
    /// starting at `first` soon. Implementations backed by an I/O scheduler
    /// prefetch them in the background; the default does nothing.
    fn hint_range(&self, _first: PageId, _count: u32) {}
}

/// Read-write access: allocation, logged mutation, and the transaction
/// lifecycle records. The defaults are no-ops so purely local stores (unit
/// tests) need not care about logging.
pub trait PageMutator: PageAccess {
    /// Allocate a fresh page id (logged so replicas track the allocator).
    fn allocate(&self, txn: TxnId) -> Result<PageId>;
    /// Apply `op` to `page`, writing the redo record to the log first.
    /// Returns the op's LSN (already stamped into the page).
    fn mutate(&self, txn: TxnId, page: &mut Page, op: &PageOp) -> Result<Lsn>;
    /// Log a transaction begin.
    fn log_txn_begin(&self, _txn: TxnId) {}
    /// Log a transaction commit and return only once it is durable.
    fn log_txn_commit(&self, _txn: TxnId, _commit_ts: u64) -> Result<()> {
        Ok(())
    }
    /// Log a transaction abort (fire-and-forget; ADR needs no undo).
    fn log_txn_abort(&self, _txn: TxnId) {}
    /// Log a checkpoint record and return its LSN, durably.
    fn log_checkpoint(&self, _redo_start: Lsn, _meta: Vec<u8>) -> Result<Lsn> {
        Ok(Lsn::ZERO)
    }
    /// The page allocator's high-water mark (for checkpoint metadata).
    fn allocator_watermark(&self) -> u64 {
        0
    }
}

/// Callback invoked with each freshly allocated page id (see
/// [`LoggedPageIo::set_on_allocate`]).
pub type AllocateHook = Arc<dyn Fn(PageId) + Send + Sync>;

/// The production implementation: mutations are logged through the
/// [`LogPipeline`] and applied to pages in the [`TieredCache`].
pub struct LoggedPageIo {
    cache: Arc<TieredCache>,
    pipeline: Arc<LogPipeline>,
    next_page: AtomicU64,
    evicted: Arc<EvictedLsnMap>,
    /// Data-page (B-tree leaf / version store) reads served locally.
    data_hits: Counter,
    /// Data-page reads that went remote.
    data_misses: Counter,
    /// Invoked with each freshly allocated page id *before* its allocation
    /// record is logged. Socrates deployments use this to spin up a page
    /// server when the database grows into a partition that has none —
    /// the O(1)-in-data upsize path.
    on_allocate: parking_lot::RwLock<Option<AllocateHook>>,
    /// Commit tracing, when the deployment installed a recorder. The sync
    /// stages are stamped here: engine time (txn begin → commit append) and
    /// harden time (the `commit_wait`); the async stages are completed by
    /// the deployment's LSN-lag watcher.
    trace: parking_lot::RwLock<Option<Arc<TraceRecorder>>>,
    /// Begin timestamps of in-flight transactions, consulted only when a
    /// recorder is installed (the map stays empty — and the commit path
    /// lock-free — otherwise).
    txn_begun: Mutex<HashMap<TxnId, std::time::Instant>>,
    /// Cross-tier span ring plus this node's identity, set once at fabric
    /// wiring time (lock-free read; no new lock rank). Commits mint their
    /// causal [`TraceCtx`](socrates_common::obs::TraceCtx) here — the ring
    /// owns the sampling decision, so an unsampled commit pays one relaxed
    /// load and a compare.
    spans: std::sync::OnceLock<(Arc<SpanRing>, NodeId)>,
}

impl LoggedPageIo {
    /// Wire up the node's cache, pipeline, and evicted-LSN map.
    /// `next_page` is the first unallocated page id (1 for a fresh
    /// database — page 0 is the catalog).
    pub fn new(
        cache: Arc<TieredCache>,
        pipeline: Arc<LogPipeline>,
        evicted: Arc<EvictedLsnMap>,
        next_page: u64,
    ) -> LoggedPageIo {
        LoggedPageIo {
            cache,
            pipeline,
            next_page: AtomicU64::new(next_page),
            evicted,
            data_hits: Counter::new(),
            data_misses: Counter::new(),
            on_allocate: parking_lot::RwLock::with_rank(
                None,
                socrates_common::lock_rank::ENGINE_IO_ON_ALLOCATE,
                "io.on_allocate",
            ),
            trace: parking_lot::RwLock::with_rank(
                None,
                socrates_common::lock_rank::ENGINE_IO_TRACE,
                "io.trace",
            ),
            txn_begun: Mutex::with_rank(
                HashMap::new(),
                socrates_common::lock_rank::ENGINE_IO_TXN_BEGUN,
                "io.txn_begun",
            ),
            spans: std::sync::OnceLock::new(),
        }
    }

    /// Route cross-tier commit spans into `ring`, attributed to `node`.
    /// First caller wins; later calls are ignored (fabric wiring happens
    /// once per node).
    pub fn set_span_ring(&self, ring: Arc<SpanRing>, node: NodeId) {
        let _ = self.spans.set((ring, node));
    }

    /// Whether the cross-tier span ring is armed (commits may sample).
    fn spans_armed(&self) -> bool {
        self.spans.get().is_some_and(|(ring, _)| ring.is_enabled())
    }

    /// Install the commit trace recorder. Transactions that begin after
    /// this point get full engine-stage timings; ones already in flight
    /// record a clamped-to-minimum engine stage.
    pub fn set_trace_recorder(&self, recorder: Arc<TraceRecorder>) {
        *self.trace.write() = Some(recorder);
    }

    /// The installed trace recorder, if any.
    pub fn trace_recorder(&self) -> Option<Arc<TraceRecorder>> {
        self.trace.read().clone()
    }

    /// Register this node's engine-side metrics (data-page cache hit
    /// accounting) into the hub under `node`.
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: socrates_common::NodeId,
    ) {
        let me = Arc::clone(self);
        hub.register_counter_fn(node, "data_page_hits", move || me.data_hits.get());
        let me = Arc::clone(self);
        hub.register_counter_fn(node, "data_page_misses", move || me.data_misses.get());
    }

    /// The local hit rate over *data pages only* (B-tree leaves and
    /// version-store pages). This is the quantity the paper's Tables 3/4
    /// report: index upper levels are structurally hot in any engine and
    /// would drown the signal.
    pub fn data_hit_rate(&self) -> f64 {
        let hits = self.data_hits.get();
        let total = hits + self.data_misses.get();
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Reset the data-page hit accounting (benchmarks call this when the
    /// measurement window starts).
    pub fn reset_data_hit_stats(&self) {
        self.data_hits.reset();
        self.data_misses.reset();
    }

    /// Install the allocation observer (see the field docs).
    pub fn set_on_allocate(&self, f: AllocateHook) {
        *self.on_allocate.write() = Some(f);
    }

    /// The node's cache (hit-rate metrics and maintenance).
    pub fn cache(&self) -> &Arc<TieredCache> {
        &self.cache
    }

    /// The log pipeline (commit paths need it).
    pub fn pipeline(&self) -> &Arc<LogPipeline> {
        &self.pipeline
    }

    /// Install a brand-new page into the cache (allocation path).
    pub fn install_new(&self, page: Page) -> Result<PageRef> {
        self.cache.install(page)
    }

    /// Highest allocated page id + 1 (diagnostics, recovery).
    pub fn next_page_id(&self) -> u64 {
        // ordering: relaxed — allocator watermark read for checkpoint metadata;
        // the caller orders it against page writes via the engine locks
        self.next_page.load(Ordering::Relaxed)
    }
}

impl PageAccess for LoggedPageIo {
    fn page(&self, id: PageId) -> Result<PageRef> {
        let evicted = Arc::clone(&self.evicted);
        let (page, tier) = self.cache.get_traced(id, move || evicted.lsn_for(id))?;
        // Per-class hit accounting (data pages only; see data_hit_rate).
        let is_data =
            matches!(page.read().page_type(), Ok(PageType::BTreeLeaf) | Ok(PageType::VersionStore));
        if is_data {
            match tier {
                socrates_storage::cache::CacheTier::Remote => self.data_misses.incr(),
                _ => self.data_hits.incr(),
            }
        }
        Ok(page)
    }

    fn hint_range(&self, first: PageId, count: u32) {
        if count == 0 {
            return;
        }
        // A prefetched page must satisfy the same freshness floor a demand
        // read would use: the max evicted LSN over the hinted run is safe
        // for every member (GetPage@LSN may return newer).
        let min_lsn = (first.raw()..first.raw() + count as u64)
            .map(|raw| self.evicted.lsn_for(PageId::new(raw)))
            .max()
            .unwrap_or(Lsn::ZERO);
        self.cache.prefetch(first, count, min_lsn);
    }
}

impl PageMutator for LoggedPageIo {
    fn allocate(&self, txn: TxnId) -> Result<PageId> {
        // ordering: relaxed — id uniqueness needs only RMW atomicity
        let id = PageId::new(self.next_page.fetch_add(1, Ordering::Relaxed));
        // Lock order: clone the hook out so the upcall into the deployment
        // (which takes fabric locks, ranked *below* engine locks) runs
        // without this guard held — holding it was a rank inversion.
        let hook = self.on_allocate.read().clone();
        if let Some(f) = hook {
            f(id);
        }
        self.pipeline
            .append(&LogRecord { txn, payload: LogPayload::AllocPages { first: id, count: 1 } });
        self.cache.install(Page::new(id, PageType::Free))?;
        Ok(id)
    }

    fn mutate(&self, txn: TxnId, page: &mut Page, op: &PageOp) -> Result<Lsn> {
        let mut op_bytes = Vec::with_capacity(op.encoded_len());
        op.encode(&mut op_bytes);
        let lsn = self.pipeline.append(&LogRecord {
            txn,
            payload: LogPayload::PageWrite { page_id: page.page_id(), op: op_bytes },
        });
        apply_page_op(page, op, lsn)?;
        Ok(lsn)
    }

    fn log_txn_begin(&self, txn: TxnId) {
        if self.trace.read().is_some() || self.spans_armed() {
            self.txn_begun.lock().insert(txn, std::time::Instant::now());
        }
        self.pipeline.append(&LogRecord { txn, payload: LogPayload::TxnBegin });
    }

    fn log_txn_commit(&self, txn: TxnId, commit_ts: u64) -> Result<()> {
        let trace = self.trace.read().clone();
        let engine_ns = if trace.is_some() || self.spans_armed() {
            self.txn_begun.lock().remove(&txn).map_or(0, |t0| t0.elapsed().as_nanos() as u64)
        } else {
            0
        };
        // Mint the cross-tier trace ctx; the ring owns the sampling
        // decision, and the ctx rides the commit's log block across every
        // tier boundary downstream.
        let ctx_sink = self
            .spans
            .get()
            .and_then(|(ring, node)| ring.try_sample().map(|ctx| (Arc::clone(ring), *node, ctx)));
        let record = LogRecord { txn, payload: LogPayload::TxnCommit { commit_ts } };
        let lsn = match &ctx_sink {
            Some((_, _, ctx)) => self.pipeline.append_traced(&record, *ctx),
            None => self.pipeline.append(&record),
        };
        let harden_start = std::time::Instant::now();
        self.pipeline.commit_wait(lsn)?;
        if let Some((ring, node, ctx)) = ctx_sink {
            let harden_ns = harden_start.elapsed().as_nanos() as u64;
            let end_ns = ring.now_ns();
            let root_ns = engine_ns + harden_ns;
            let root_start = end_ns.saturating_sub(root_ns);
            ring.record_root(ctx, SpanKind::Commit, node, root_start, root_ns);
            if engine_ns > 0 {
                ring.record_child(ctx, SpanKind::CommitEngine, node, root_start, engine_ns);
            }
            ring.record_child(
                ctx,
                SpanKind::CommitHarden,
                node,
                end_ns.saturating_sub(harden_ns),
                harden_ns,
            );
        }
        if let Some(recorder) = trace {
            recorder.record_commit(txn, lsn, engine_ns, harden_start.elapsed().as_nanos() as u64);
        }
        Ok(())
    }

    fn log_txn_abort(&self, txn: TxnId) {
        if self.trace.read().is_some() || self.spans_armed() {
            self.txn_begun.lock().remove(&txn);
        }
        self.pipeline.append(&LogRecord { txn, payload: LogPayload::TxnAbort });
    }

    fn log_checkpoint(&self, redo_start: Lsn, meta: Vec<u8>) -> Result<Lsn> {
        let lsn = self.pipeline.append(&LogRecord::system(LogPayload::Checkpoint {
            redo_start_lsn: redo_start,
            meta,
        }));
        self.pipeline.commit_wait(lsn)?;
        Ok(lsn)
    }

    fn allocator_watermark(&self) -> u64 {
        // ordering: relaxed — allocator watermark read for checkpoint metadata;
        // the caller orders it against page writes via the engine locks
        self.next_page.load(Ordering::Relaxed)
    }
}

/// A purely in-memory, unlogged implementation for unit tests of the
/// engine's data structures.
pub struct MemIo {
    pages: Mutex<HashMap<PageId, PageRef>>,
    next_page: AtomicU64,
    next_lsn: AtomicU64,
}

impl MemIo {
    /// Fresh store; page ids start at `first_page`.
    pub fn new(first_page: u64) -> MemIo {
        MemIo {
            pages: Mutex::with_rank(
                HashMap::new(),
                socrates_common::lock_rank::ENGINE_MEM_PAGES,
                "io.mem_pages",
            ),
            next_page: AtomicU64::new(first_page),
            next_lsn: AtomicU64::new(1),
        }
    }

    /// Pre-install a page (bootstrap).
    pub fn install(&self, page: Page) -> PageRef {
        let id = page.page_id();
        let r: PageRef = Arc::new(parking_lot::RwLock::new(page));
        self.pages.lock().insert(id, Arc::clone(&r));
        r
    }

    /// Number of pages in the store.
    pub fn len(&self) -> usize {
        self.pages.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl PageAccess for MemIo {
    fn page(&self, id: PageId) -> Result<PageRef> {
        self.pages.lock().get(&id).cloned().ok_or_else(|| Error::NotFound(format!("{id}")))
    }
}

impl PageMutator for MemIo {
    fn allocate(&self, _txn: TxnId) -> Result<PageId> {
        // ordering: relaxed — id uniqueness needs only RMW atomicity
        let id = PageId::new(self.next_page.fetch_add(1, Ordering::Relaxed));
        self.install(Page::new(id, PageType::Free));
        Ok(id)
    }

    fn mutate(&self, _txn: TxnId, page: &mut Page, op: &PageOp) -> Result<Lsn> {
        // ordering: relaxed — test-only LSN ticker; uniqueness needs only atomicity
        let lsn = Lsn::new(self.next_lsn.fetch_add(1, Ordering::Relaxed));
        apply_page_op(page, op, lsn)?;
        // Keep the canonical copy in the map in sync: the caller holds a
        // write lock on the same Arc, so the map entry already reflects the
        // change (same allocation).
        Ok(lsn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socrates_storage::slotted::Slotted;

    #[test]
    fn traced_commit_records_commit_and_harden_spans() {
        use socrates_storage::{Fcb, MemFcb};
        use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
        use socrates_wal::pipeline::{BlockSink, LogPipelineConfig};

        /// Commit path never fetches; any miss is a test bug.
        struct NoRemote;
        impl socrates_storage::cache::PageSource for NoRemote {
            fn fetch_page(&self, id: PageId, _min_lsn: Lsn) -> Result<Page> {
                Err(Error::NotFound(format!("{id}")))
            }
        }

        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
        ));
        let pipeline = Arc::new(LogPipeline::new(
            Arc::clone(&lz) as Arc<dyn BlockSink>,
            Arc::new(|_p: PageId| socrates_common::PartitionId::new(0)),
            LogPipelineConfig::default(),
            Lsn::ZERO,
        ));
        let cache = Arc::new(TieredCache::with_defaults(8, None, Arc::new(NoRemote)));
        let io = LoggedPageIo::new(
            Arc::clone(&cache),
            Arc::clone(&pipeline),
            Arc::new(EvictedLsnMap::new(16)),
            1,
        );
        let ring = Arc::new(SpanRing::new(64, 1));
        io.set_span_ring(Arc::clone(&ring), NodeId::PRIMARY);
        pipeline.set_span_ring(Arc::clone(&ring), NodeId::PRIMARY);

        io.log_txn_begin(TxnId::new(1));
        io.log_txn_commit(TxnId::new(1), 42).unwrap();

        let spans = ring.spans();
        let root = spans.iter().find(|s| s.kind == SpanKind::Commit).expect("commit root");
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.trace_id, root.span_id);
        for kind in [SpanKind::CommitEngine, SpanKind::CommitHarden, SpanKind::WalHarden] {
            let child = spans
                .iter()
                .find(|s| s.kind == kind)
                .unwrap_or_else(|| panic!("missing {kind:?} child"));
            assert_eq!(child.trace_id, root.trace_id);
            assert_eq!(child.parent_id, root.span_id);
        }
        // Sampling off (ring disabled): nothing new is recorded.
        let before = spans.len();
        let quiet = LoggedPageIo::new(cache, pipeline, Arc::new(EvictedLsnMap::new(16)), 1);
        quiet.set_span_ring(Arc::new(SpanRing::disabled()), NodeId::PRIMARY);
        quiet.log_txn_begin(TxnId::new(2));
        quiet.log_txn_commit(TxnId::new(2), 43).unwrap();
        assert_eq!(ring.spans().len(), before);
    }

    #[test]
    fn memio_allocate_and_mutate() {
        let io = MemIo::new(10);
        let id = io.allocate(TxnId::new(1)).unwrap();
        assert_eq!(id, PageId::new(10));
        let page_ref = io.page(id).unwrap();
        let mut page = page_ref.write();
        io.mutate(TxnId::new(1), &mut page, &PageOp::Format { ptype: PageType::BTreeLeaf })
            .unwrap();
        io.mutate(TxnId::new(1), &mut page, &PageOp::Insert { idx: 0, bytes: b"rec".to_vec() })
            .unwrap();
        drop(page);
        // Visible through a fresh fetch (shared Arc).
        let again = io.page(id).unwrap();
        assert_eq!(Slotted::get(&again.read(), 0).unwrap(), b"rec");
        assert!(again.read().page_lsn() > Lsn::ZERO);
        assert!(io.page(PageId::new(999)).is_err());
    }
}

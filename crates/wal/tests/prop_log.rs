//! Property tests for the log substrate: codec roundtrips and landing-zone
//! behaviour under arbitrary block sequences.

use proptest::prelude::*;
use socrates_common::{Lsn, PageId, PartitionId, TxnId};
use socrates_storage::{Fcb, MemFcb};
use socrates_wal::block::{BlockBuilder, LogBlock};
use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
use socrates_wal::record::{LogPayload, LogRecord};
use std::sync::Arc;

fn payload_strategy() -> impl Strategy<Value = LogPayload> {
    prop_oneof![
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(p, op)| { LogPayload::PageWrite { page_id: PageId::new(p % 10_000), op } }),
        Just(LogPayload::TxnBegin),
        any::<u64>().prop_map(|t| LogPayload::TxnCommit { commit_ts: t }),
        Just(LogPayload::TxnAbort),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
            .prop_map(|(l, m)| { LogPayload::Checkpoint { redo_start_lsn: Lsn::new(l), meta: m } }),
        (any::<u64>(), 1..64u64).prop_map(|(f, c)| LogPayload::AllocPages {
            first: PageId::new(f % 100_000),
            count: c,
        }),
        proptest::collection::vec(any::<u8>(), 0..100).prop_map(|info| LogPayload::Noop { info }),
    ]
}

proptest! {
    #[test]
    fn record_codec_roundtrip(
        txn in any::<u64>(),
        payload in payload_strategy(),
    ) {
        let rec = LogRecord { txn: TxnId::new(txn), payload };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(buf.len(), rec.encoded_len());
        let (got, used) = LogRecord::decode(&buf).unwrap();
        prop_assert_eq!(used, buf.len());
        prop_assert_eq!(got, rec);
    }

    #[test]
    fn block_roundtrip_with_lsn_chain(
        payloads in proptest::collection::vec(payload_strategy(), 1..30),
        start in 0u64..1_000_000,
    ) {
        let mut b = BlockBuilder::new(Lsn::new(start), 1 << 20);
        let mut lsns = Vec::new();
        for p in &payloads {
            let partition = match p {
                LogPayload::PageWrite { page_id, .. } => {
                    Some(PartitionId::new((page_id.raw() / 100) as u32))
                }
                _ => None,
            };
            lsns.push(b.append(&LogRecord { txn: TxnId::new(1), payload: p.clone() }, partition));
        }
        let block = b.seal();
        let decoded = LogBlock::decode(block.as_bytes().to_vec()).unwrap();
        let recs = decoded.records().unwrap();
        prop_assert_eq!(recs.len(), payloads.len());
        for ((rec, lsn), payload) in recs.iter().zip(&lsns).zip(&payloads) {
            prop_assert_eq!(&rec.lsn, lsn);
            prop_assert_eq!(&rec.record.payload, payload);
        }
        // LSNs strictly increase and stay inside the block.
        for w in lsns.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(lsns[0] > block.start_lsn());
        prop_assert!(*lsns.last().unwrap() < block.end_lsn());
    }

    #[test]
    fn landing_zone_scan_equals_written_chain(
        sizes in proptest::collection::vec(1usize..500, 1..25),
    ) {
        let lz = LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
        );
        let mut start = Lsn::ZERO;
        let mut written = Vec::new();
        for (i, size) in sizes.iter().enumerate() {
            let mut b = BlockBuilder::new(start, 1 << 20);
            b.append(
                &LogRecord {
                    txn: TxnId::new(i as u64),
                    payload: LogPayload::PageWrite {
                        page_id: PageId::new(i as u64),
                        op: vec![i as u8; *size],
                    },
                },
                Some(PartitionId::new(0)),
            );
            let block = b.seal();
            lz.write_block(&block).unwrap();
            start = block.end_lsn();
            written.push(block);
        }
        let mut scanned = Vec::new();
        lz.scan_from(Lsn::ZERO, |b| { scanned.push(b); true }).unwrap();
        prop_assert_eq!(scanned, written);
    }

    #[test]
    fn wraparound_never_corrupts_retained_range(
        sizes in proptest::collection::vec(50usize..400, 4..40),
    ) {
        // A tiny LZ with aggressive truncation: every retained block must
        // read back exactly, no matter how the ring wraps.
        let lz = LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 2048, write_quorum: 1 },
        );
        let mut start = Lsn::ZERO;
        let mut last: Option<LogBlock> = None;
        for (i, size) in sizes.iter().enumerate() {
            let mut b = BlockBuilder::new(start, 1 << 20);
            b.append(
                &LogRecord {
                    txn: TxnId::new(i as u64),
                    payload: LogPayload::PageWrite {
                        page_id: PageId::new(i as u64),
                        op: vec![0xAA; *size],
                    },
                },
                None,
            );
            let block = b.seal();
            // Retain only the previous block: truncate everything older.
            if let Some(prev) = &last {
                lz.truncate_to(prev.start_lsn());
            }
            lz.write_block(&block).unwrap();
            // The just-written and the previous block both read back.
            prop_assert_eq!(&lz.read_block(block.start_lsn()).unwrap(), &block);
            if let Some(prev) = &last {
                prop_assert_eq!(&lz.read_block(prev.start_lsn()).unwrap(), prev);
            }
            start = block.end_lsn();
            last = Some(block);
        }
    }
}

//! Property tests for the quorum WAL acceptance protocol, driven through
//! the deterministic simulator (`socrates_wal::quorum::sim`).
//!
//! Each case runs a full randomized schedule — appends, acks, message
//! drops and duplication, acceptor crashes/restarts, partitions, and
//! competing proposers — and the simulator checks the three safety
//! invariants after **every** step:
//!
//! 1. the committed watermark never regresses (elections included);
//! 2. no two proposers commit conflicting records for the same LSN range;
//! 3. every committed LSN stays flushed on at least a write quorum of
//!    acceptors (counting crashed-but-durable nodes).
//!
//! On failure the shrunken seed's full step trace is written under
//! `target/quorum-sim/` so the schedule can be replayed exactly
//! (`run_sim` is a pure function of the seed and config).
//!
//! Runs under Miri with reduced case counts, like
//! `common/tests/ring_invariants.rs`: the simulator is single-threaded
//! and clock-free, so Miri checks it at full fidelity, just slower.

use proptest::prelude::*;
use socrates_wal::quorum::sim::{run_sim, SimConfig, SimReport};

/// Case/step scale: Miri is ~two orders of magnitude slower than native.
const fn cases() -> u32 {
    if cfg!(miri) {
        4
    } else {
        64
    }
}

const fn max_steps() -> usize {
    if cfg!(miri) {
        60
    } else {
        600
    }
}

/// Fail with a replay artifact when a run reports violations.
fn assert_clean(report: &SimReport) {
    if report.violations.is_empty() && report.quiesce_converged {
        return;
    }
    let dir = std::path::Path::new("target").join("quorum-sim");
    let _ = std::fs::create_dir_all(&dir);
    let path = dir.join(format!("prop-seed-{}.trace", report.seed));
    let _ = std::fs::write(&path, report.render());
    panic!(
        "seed {} violated the protocol (converged={}): {:?} — replay trace at {}",
        report.seed,
        report.quiesce_converged,
        report.violations,
        path.display()
    );
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: cases(),
        .. ProptestConfig::default()
    })]

    /// The canonical 3-acceptor, majority-commit shape over arbitrary
    /// seeds and schedule lengths.
    #[test]
    fn three_acceptor_schedules_hold_invariants(
        seed in any::<u64>(),
        steps in 20usize..max_steps(),
    ) {
        let report = run_sim(seed, SimConfig::small(steps));
        assert_clean(&report);
    }

    /// The 5-acceptor shape (tolerates two losses) with larger entries,
    /// so commit points land mid-stream more often.
    #[test]
    fn five_acceptor_schedules_hold_invariants(
        seed in any::<u64>(),
        steps in 20usize..max_steps(),
        max_entry in 1u64..256,
    ) {
        let cfg = SimConfig { max_entry_len: max_entry, ..SimConfig::five(steps) };
        let report = run_sim(seed, cfg);
        assert_clean(&report);
    }

    /// Determinism: the trace (and therefore every decision) is a pure
    /// function of the seed — the foundation of seed-based replay.
    #[test]
    fn schedules_replay_identically(seed in any::<u64>()) {
        let steps = if cfg!(miri) { 40 } else { 200 };
        let a = run_sim(seed, SimConfig::small(steps));
        let b = run_sim(seed, SimConfig::small(steps));
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.watermark, b.watermark);
        prop_assert_eq!(a.violations, b.violations);
    }
}

/// The three CI seeds, pinned outside proptest so the `quorum-sim` job
/// exercises the exact same schedules on every run.
#[test]
fn ci_pinned_seeds_run_clean() {
    for seed in [0xC0FFEE, 0x5EED, 0xD15C] {
        for cfg in [SimConfig::small(max_steps()), SimConfig::five(max_steps())] {
            let report = run_sim(seed, cfg);
            assert!(
                report.violations.is_empty() && report.quiesce_converged,
                "pinned seed {seed:#x} violated: {:?}",
                report.violations
            );
        }
    }
}

//! The log-store abstraction: what the rest of the system needs from
//! "the durable tail of the log", independent of how it is replicated.
//!
//! Socrates' landing zone (paper §4.1.4) is one implementation: a fixed
//! write-quorum over premium-storage FCB replicas fronted by a single
//! writer. The quorum log tier ([`crate::quorum`]) is another: three
//! safekeeper-style acceptors with term-based leadership, where the
//! durable head is a *commit watermark* advanced on majority ack. Both
//! present the same surface — an LSN-addressed block window between
//! `tail` (destaged below) and `head` (hardened up to) — so XLOG, the
//! primary's pipeline, and the fabric can be wired against either.

use crate::block::LogBlock;
use crate::pipeline::BlockSink;
use socrates_common::fault::FaultRegistry;
use socrates_common::{Lsn, Result};

/// An LSN-addressed durable block window. `BlockSink::harden` appends at
/// `head`; `truncate_to` advances `tail` once blocks are destaged.
pub trait LogStore: BlockSink {
    /// First LSN not yet hardened — the append cursor.
    fn head(&self) -> Lsn;

    /// Oldest LSN still held; everything below has been destaged.
    fn tail(&self) -> Lsn;

    /// Bytes of capacity left before `harden` starts returning
    /// `Unavailable` backpressure.
    fn free_bytes(&self) -> u64;

    /// Read the block starting exactly at `lsn`.
    fn read_block(&self, lsn: Lsn) -> Result<LogBlock>;

    /// Drop all blocks ending at or below `lsn` (destage handoff).
    fn truncate_to(&self, lsn: Lsn);

    /// Visit blocks in order from `from` until `f` returns false.
    fn scan_from(&self, from: Lsn, f: &mut dyn FnMut(LogBlock) -> bool) -> Result<()>;

    /// Attach the deployment's fault registry (the store's own fault
    /// sites: `lz.write` for the landing zone, `lz.quorum.*` for the
    /// quorum tier).
    fn set_fault_registry(&self, faults: FaultRegistry);

    /// Re-establish the right to append after a (possible) writer
    /// restart, returning the LSN new appends must start at.
    ///
    /// For the single-writer landing zone this is a no-op returning
    /// `head()`. For the quorum tier it runs a leader campaign: bump the
    /// term, collect a majority of votes, truncate divergent acceptor
    /// tails, and catch stragglers up to the elected start position.
    fn recover(&self) -> Result<Lsn>;
}

use crate::landing_zone::LandingZone;

impl LogStore for LandingZone {
    fn head(&self) -> Lsn {
        LandingZone::head(self)
    }

    fn tail(&self) -> Lsn {
        LandingZone::tail(self)
    }

    fn free_bytes(&self) -> u64 {
        LandingZone::free_bytes(self)
    }

    fn read_block(&self, lsn: Lsn) -> Result<LogBlock> {
        LandingZone::read_block(self, lsn)
    }

    fn truncate_to(&self, lsn: Lsn) {
        LandingZone::truncate_to(self, lsn)
    }

    fn scan_from(&self, from: Lsn, f: &mut dyn FnMut(LogBlock) -> bool) -> Result<()> {
        LandingZone::scan_from(self, from, f)
    }

    fn set_fault_registry(&self, faults: FaultRegistry) {
        LandingZone::set_fault_registry(self, faults)
    }

    fn recover(&self) -> Result<Lsn> {
        // Single designated writer: whatever is hardened is the truth.
        Ok(LandingZone::head(self))
    }
}

//! The landing zone (LZ) — the small, fast, durable tail of the log.
//!
//! The primary writes log blocks synchronously to the LZ for the lowest
//! possible commit latency (paper §4.3). The LZ is a *circular buffer* over
//! a replicated storage service: in production Azure Premium Storage (XIO,
//! three replicas) or DirectDrive; here, a set of [`Fcb`] replicas wrapped
//! in the matching latency profile. A block is *hardened* once a write
//! quorum of replicas holds it.
//!
//! The LZ is bounded: XLOG's destaging pipeline must continually move the
//! tail to long-term storage and advance the truncation point, or the
//! primary stalls — exactly the backpressure the paper describes
//! ("Socrates cannot process any update transactions once the LZ is full").
//!
//! Readers tolerate a non-quorum replica holding torn or stale bytes: every
//! block is checksummed, and reads fall through to the next replica on
//! validation failure — concurrent readers need no synchronisation with the
//! writer beyond wraparound protection, as in the paper.

use crate::block::{LogBlock, BLOCK_HEADER};
use parking_lot::{Mutex, RwLock};
use socrates_common::fault::{sites, FaultOutcome, FaultRegistry};
use socrates_common::{Error, Lsn, Result};
use socrates_storage::Fcb;
use std::sync::mpsc;
use std::sync::Arc;

/// Landing-zone configuration.
#[derive(Clone, Debug)]
pub struct LandingZoneConfig {
    /// Circular buffer capacity in bytes.
    pub capacity: u64,
    /// Number of replicas that must acknowledge a write (e.g. 2 of 3).
    pub write_quorum: usize,
}

impl Default for LandingZoneConfig {
    fn default() -> Self {
        // 64 MiB, quorum 2-of-3 — scaled-down defaults for a simulated LZ.
        LandingZoneConfig { capacity: 64 << 20, write_quorum: 2 }
    }
}

struct LzState {
    /// LSN of the next byte to be written.
    head: Lsn,
    /// Oldest LSN still retained (everything older has been destaged).
    tail: Lsn,
}

/// A write job handed to one replica's worker: (byte offset, block,
/// completion channel).
type WriteJob = (u64, LogBlock, mpsc::Sender<bool>);

/// A quorum-replicated circular log store.
///
/// Writes go to all replicas **in parallel** (one persistent worker thread
/// per replica, as the real storage service's replication does) and
/// `write_block` returns as soon as a write quorum has acknowledged — the
/// commit latency is the quorum-th fastest replica, not the sum.
pub struct LandingZone {
    replicas: Vec<Arc<dyn Fcb>>,
    writers: Vec<mpsc::Sender<WriteJob>>,
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    config: LandingZoneConfig,
    state: Mutex<LzState>,
    faults: RwLock<FaultRegistry>,
}

impl LandingZone {
    /// Create an LZ over `replicas` (all starting empty).
    pub fn new(replicas: Vec<Arc<dyn Fcb>>, config: LandingZoneConfig) -> LandingZone {
        assert!(!replicas.is_empty(), "landing zone needs at least one replica");
        assert!(
            config.write_quorum >= 1 && config.write_quorum <= replicas.len(),
            "write quorum {} out of range for {} replicas",
            config.write_quorum,
            replicas.len()
        );
        let capacity = config.capacity;
        let mut writers = Vec::with_capacity(replicas.len());
        let mut handles = Vec::with_capacity(replicas.len());
        for (i, replica) in replicas.iter().enumerate() {
            let (tx, rx) = mpsc::channel::<WriteJob>();
            let fcb = Arc::clone(replica);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("lz-replica-{i}"))
                    .spawn(move || {
                        while let Ok((off, block, ack)) = rx.recv() {
                            let ok =
                                write_wrapped_to(&fcb, capacity, off, block.as_bytes()).is_ok();
                            let _ = ack.send(ok);
                        }
                    })
                    .expect("spawn lz replica worker"),
            );
            writers.push(tx);
        }
        LandingZone {
            replicas,
            writers,
            worker_handles: Mutex::with_rank(
                handles,
                socrates_common::lock_rank::WAL_LZ_WORKERS,
                "lz.worker_handles",
            ),
            config,
            state: Mutex::with_rank(
                LzState { head: Lsn::ZERO, tail: Lsn::ZERO },
                socrates_common::lock_rank::WAL_LZ_STATE,
                "lz.state",
            ),
            faults: RwLock::with_rank(
                FaultRegistry::disabled(),
                socrates_common::lock_rank::WAL_LZ_FAULTS,
                "lz.faults",
            ),
        }
    }

    /// Attach a fault registry; `write_block` consults the `lz.write` site.
    pub fn set_fault_registry(&self, faults: FaultRegistry) {
        *self.faults.write() = faults;
    }

    /// Create an LZ whose first block will start at `start` instead of
    /// [`Lsn::ZERO`] — used when a log store is (re)created mid-stream,
    /// e.g. XLOG's local SSD block cache or a restored deployment.
    pub fn with_start(
        replicas: Vec<Arc<dyn Fcb>>,
        config: LandingZoneConfig,
        start: Lsn,
    ) -> LandingZone {
        let lz = LandingZone::new(replicas, config);
        {
            let mut s = lz.state.lock();
            s.head = start;
            s.tail = start;
        }
        lz
    }

    /// The LSN the next block must start at.
    pub fn head(&self) -> Lsn {
        self.state.lock().head
    }

    /// The truncation point: the oldest retained LSN.
    pub fn tail(&self) -> Lsn {
        self.state.lock().tail
    }

    /// Bytes currently free for appends.
    pub fn free_bytes(&self) -> u64 {
        let s = self.state.lock();
        self.config.capacity - (s.head - s.tail)
    }

    /// The replica devices (tests inject faults through these).
    pub fn replicas(&self) -> &[Arc<dyn Fcb>] {
        &self.replicas
    }

    /// Durably append `block`, which must start exactly at the current head.
    ///
    /// Returns once a write quorum of replicas has the block. Fails with
    /// [`Error::Unavailable`] when the LZ is full (destage backpressure) or
    /// quorum cannot be reached.
    pub fn write_block(&self, block: &LogBlock) -> Result<()> {
        match self.faults.read().check_at(sites::LZ_WRITE, Some(block.start_lsn())) {
            Some(FaultOutcome::Err(e)) => return Err(e),
            // The LZ has no single node to crash (it is a replicated
            // service); dropped/crashed writes surface as a transient
            // failure the pipeline's commit path retries.
            Some(FaultOutcome::Drop) | Some(FaultOutcome::Crash) => {
                return Err(Error::Unavailable("fault: LZ write dropped".into()));
            }
            None => {}
        }
        let (start, len) = {
            let s = self.state.lock();
            if block.start_lsn() != s.head {
                return Err(Error::InvalidArgument(format!(
                    "block starts at {} but LZ head is {}",
                    block.start_lsn(),
                    s.head
                )));
            }
            let len = block.len() as u64;
            if len > self.config.capacity {
                return Err(Error::InvalidArgument(format!(
                    "block of {len} bytes exceeds LZ capacity {}",
                    self.config.capacity
                )));
            }
            if (s.head - s.tail) + len > self.config.capacity {
                return Err(Error::Unavailable(
                    "landing zone full; destaging has not caught up".into(),
                ));
            }
            (s.head, len)
        };
        // Fan the write out to every replica worker; return at quorum.
        let (ack_tx, ack_rx) = mpsc::channel();
        for w in &self.writers {
            let _ = w.send((start.offset(), block.clone(), ack_tx.clone()));
        }
        drop(ack_tx);
        let mut acks = 0usize;
        let mut failures = 0usize;
        let n = self.writers.len();
        while acks < self.config.write_quorum && failures <= n - self.config.write_quorum {
            match ack_rx.recv() {
                Ok(true) => acks += 1,
                Ok(false) => failures += 1,
                Err(_) => break, // all workers reported
            }
        }
        if acks < self.config.write_quorum {
            return Err(Error::Unavailable(format!(
                "LZ quorum failed: {acks}/{} acks ({failures} replicas failed)",
                self.config.write_quorum
            )));
        }
        let mut s = self.state.lock();
        s.head = start + len;
        Ok(())
    }

    /// Read the block starting at `lsn`, trying replicas until one yields a
    /// validating image.
    pub fn read_block(&self, lsn: Lsn) -> Result<LogBlock> {
        {
            let s = self.state.lock();
            if lsn < s.tail {
                return Err(Error::NotFound(format!(
                    "{lsn} already truncated from the LZ (tail {})",
                    s.tail
                )));
            }
            if lsn >= s.head {
                return Err(Error::NotFound(format!("{lsn} beyond LZ head {}", s.head)));
            }
        }
        let mut last_err: Option<Error> = None;
        for replica in &self.replicas {
            match self.try_read_block(replica, lsn) {
                Ok(b) => return Ok(b),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| Error::NotFound(format!("block at {lsn}"))))
    }

    /// Iterate blocks from `from` (a block boundary) up to the head,
    /// calling `f` for each. Stops early if `f` returns `false`.
    pub fn scan_from(&self, from: Lsn, mut f: impl FnMut(LogBlock) -> bool) -> Result<()> {
        let mut at = from;
        loop {
            let head = self.state.lock().head;
            if at >= head {
                return Ok(());
            }
            let block = self.read_block(at)?;
            at = block.end_lsn();
            if !f(block) {
                return Ok(());
            }
        }
    }

    /// Release everything below `lsn` for reuse. Called by XLOG once the
    /// range is durably destaged to long-term storage.
    pub fn truncate_to(&self, lsn: Lsn) {
        let mut s = self.state.lock();
        if lsn > s.tail {
            s.tail = lsn.min(s.head);
        }
    }

    fn try_read_block(&self, replica: &Arc<dyn Fcb>, lsn: Lsn) -> Result<LogBlock> {
        let mut header = vec![0u8; BLOCK_HEADER];
        self.read_wrapped(replica, lsn.offset(), &mut header)?;
        let info = LogBlock::peek(&header)?;
        if info.start_lsn != lsn {
            return Err(Error::Corruption(format!(
                "block at {lsn} claims start {}",
                info.start_lsn
            )));
        }
        let mut image = vec![0u8; info.total_len];
        self.read_wrapped(replica, lsn.offset(), &mut image)?;
        LogBlock::decode(image)
    }

    fn read_wrapped(&self, fcb: &Arc<dyn Fcb>, lsn_off: u64, buf: &mut [u8]) -> Result<()> {
        let cap = self.config.capacity;
        let pos = lsn_off % cap;
        let first = ((cap - pos) as usize).min(buf.len());
        fcb.read_at(pos, &mut buf[..first])?;
        if first < buf.len() {
            let rest = buf.len() - first;
            fcb.read_at(0, &mut buf[first..first + rest])?;
        }
        Ok(())
    }
}

impl Drop for LandingZone {
    fn drop(&mut self) {
        // Closing the job channels lets the workers drain and exit.
        self.writers.clear();
        for h in self.worker_handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Write `data` at circular position `lsn_off % cap`, splitting at the
/// wrap boundary.
fn write_wrapped_to(fcb: &Arc<dyn Fcb>, cap: u64, lsn_off: u64, data: &[u8]) -> Result<()> {
    let pos = lsn_off % cap;
    let first = ((cap - pos) as usize).min(data.len());
    fcb.write_at(pos, &data[..first])?;
    if first < data.len() {
        fcb.write_at(0, &data[first..])?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use crate::record::{LogPayload, LogRecord};
    use socrates_common::{PageId, PartitionId, TxnId};
    use socrates_storage::{FaultFcb, MemFcb};

    fn block_at(start: Lsn, payload_len: usize) -> LogBlock {
        let mut b = BlockBuilder::new(start, 1 << 16);
        b.append(
            &LogRecord {
                txn: TxnId::new(1),
                payload: LogPayload::PageWrite {
                    page_id: PageId::new(1),
                    op: vec![0xCD; payload_len],
                },
            },
            Some(PartitionId::new(0)),
        );
        b.seal()
    }

    fn lz(capacity: u64, quorum: usize, n: usize) -> (LandingZone, Vec<Arc<FaultFcb<MemFcb>>>) {
        let faults: Vec<Arc<FaultFcb<MemFcb>>> =
            (0..n).map(|i| Arc::new(FaultFcb::new(MemFcb::new(format!("lz-{i}"))))).collect();
        let replicas: Vec<Arc<dyn Fcb>> =
            faults.iter().map(|f| Arc::clone(f) as Arc<dyn Fcb>).collect();
        (LandingZone::new(replicas, LandingZoneConfig { capacity, write_quorum: quorum }), faults)
    }

    #[test]
    fn write_read_chain() {
        let (lz, _) = lz(1 << 20, 2, 3);
        let b1 = block_at(Lsn::ZERO, 100);
        lz.write_block(&b1).unwrap();
        let b2 = block_at(b1.end_lsn(), 200);
        lz.write_block(&b2).unwrap();
        assert_eq!(lz.head(), b2.end_lsn());
        assert_eq!(lz.read_block(Lsn::ZERO).unwrap(), b1);
        assert_eq!(lz.read_block(b1.end_lsn()).unwrap(), b2);
    }

    #[test]
    fn rejects_gap_or_overlap() {
        let (lz, _) = lz(1 << 20, 2, 3);
        let b1 = block_at(Lsn::ZERO, 10);
        lz.write_block(&b1).unwrap();
        // Re-writing the same block (head mismatch) fails.
        assert!(lz.write_block(&b1).is_err());
        // A block with a gap fails.
        let gap = block_at(b1.end_lsn() + 100, 10);
        assert!(lz.write_block(&gap).is_err());
    }

    #[test]
    fn wraparound_roundtrip() {
        // Tiny LZ so blocks wrap the boundary.
        let (lz, _) = lz(700, 1, 1);
        let mut start = Lsn::ZERO;
        let mut blocks = vec![];
        for _ in 0..6 {
            let b = block_at(start, 150);
            // Keep space available by truncating aggressively.
            lz.truncate_to(Lsn::new(start.offset().saturating_sub(200)));
            lz.write_block(&b).unwrap();
            start = b.end_lsn();
            blocks.push(b);
        }
        // The most recent block definitely wrapped at least once; verify it
        // reads back correctly.
        let last = blocks.last().unwrap();
        assert_eq!(&lz.read_block(last.start_lsn()).unwrap(), last);
    }

    #[test]
    fn full_lz_applies_backpressure_until_truncated() {
        let (lz, _) = lz(400, 1, 1);
        let b1 = block_at(Lsn::ZERO, 150);
        lz.write_block(&b1).unwrap();
        let b2 = block_at(b1.end_lsn(), 150);
        let err = lz.write_block(&b2).unwrap_err();
        assert!(err.is_transient(), "LZ-full must be retryable: {err}");
        // Destage: truncate, then the write goes through.
        lz.truncate_to(b1.end_lsn());
        lz.write_block(&b2).unwrap();
        assert_eq!(lz.read_block(b2.start_lsn()).unwrap(), b2);
    }

    #[test]
    fn quorum_tolerates_minority_failure() {
        let (lz, faults) = lz(1 << 20, 2, 3);
        faults[1].set_unavailable(true);
        let b1 = block_at(Lsn::ZERO, 64);
        lz.write_block(&b1).unwrap(); // 2/3 still ack
                                      // Reads also skip the dead replica.
        assert_eq!(lz.read_block(Lsn::ZERO).unwrap(), b1);
    }

    #[test]
    fn quorum_fails_on_majority_failure() {
        let (lz, faults) = lz(1 << 20, 2, 3);
        faults[0].set_unavailable(true);
        faults[1].set_unavailable(true);
        let b1 = block_at(Lsn::ZERO, 64);
        let err = lz.write_block(&b1).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(lz.head(), Lsn::ZERO, "failed write must not advance head");
        // Replicas recover; the same block can be written now.
        faults[0].set_unavailable(false);
        faults[1].set_unavailable(false);
        lz.write_block(&b1).unwrap();
    }

    #[test]
    fn read_falls_through_torn_replica() {
        let (lz, faults) = lz(1 << 20, 2, 3);
        let b1 = block_at(Lsn::ZERO, 64);
        lz.write_block(&b1).unwrap();
        // Corrupt replica 0's copy; read must still succeed via replica 1.
        faults[0].write_at(10, &[0xFF; 16]).unwrap();
        assert_eq!(lz.read_block(Lsn::ZERO).unwrap(), b1);
    }

    #[test]
    fn truncated_and_future_reads_fail_cleanly() {
        let (lz, _) = lz(1 << 20, 1, 1);
        let b1 = block_at(Lsn::ZERO, 64);
        lz.write_block(&b1).unwrap();
        lz.truncate_to(b1.end_lsn());
        assert_eq!(lz.read_block(Lsn::ZERO).unwrap_err().kind(), "not_found");
        assert_eq!(lz.read_block(b1.end_lsn()).unwrap_err().kind(), "not_found");
        assert_eq!(lz.free_bytes(), 1 << 20);
    }

    #[test]
    fn scan_visits_blocks_in_order() {
        let (lz, _) = lz(1 << 20, 1, 1);
        let b1 = block_at(Lsn::ZERO, 10);
        lz.write_block(&b1).unwrap();
        let b2 = block_at(b1.end_lsn(), 20);
        lz.write_block(&b2).unwrap();
        let b3 = block_at(b2.end_lsn(), 30);
        lz.write_block(&b3).unwrap();
        let mut seen = vec![];
        lz.scan_from(Lsn::ZERO, |b| {
            seen.push(b.start_lsn());
            true
        })
        .unwrap();
        assert_eq!(seen, vec![b1.start_lsn(), b2.start_lsn(), b3.start_lsn()]);
        // Early stop.
        let mut count = 0;
        lz.scan_from(Lsn::ZERO, |_| {
            count += 1;
            false
        })
        .unwrap();
        assert_eq!(count, 1);
    }
}

//! Log records.
//!
//! The log is the spine of Socrates: the primary produces a single ordered
//! stream of records, and every other component (secondaries, page servers,
//! recovery, PITR) consumes it. A record's LSN is the byte offset of its
//! first byte in the record stream — records are not self-describing about
//! position; the enclosing [`crate::block::LogBlock`] anchors them.
//!
//! Page redo payloads are opaque bytes here (an encoded
//! `socrates_storage::PageOp`); the log layer moves bytes, the engine and
//! page servers interpret them. This keeps the dependency direction clean
//! and matches the paper's "the log doesn't know what's in the records"
//! layering.

use socrates_common::{Error, Lsn, PageId, Result, TxnId};

/// The body of one log record.
#[derive(Clone, Debug, PartialEq)]
pub enum LogPayload {
    /// A page mutation: redo bytes for `page_id` (an encoded `PageOp`).
    PageWrite {
        /// The page modified.
        page_id: PageId,
        /// Encoded redo operation.
        op: Vec<u8>,
    },
    /// Transaction start.
    TxnBegin,
    /// Transaction commit with its commit timestamp (MVCC visibility point).
    TxnCommit {
        /// The commit timestamp assigned by the transaction manager.
        commit_ts: u64,
    },
    /// Transaction abort (its versions are invisible; ADR needs no undo).
    TxnAbort,
    /// A checkpoint marker: redo after crash recovery starts at
    /// `redo_start_lsn` (everything older is durable in the storage tier),
    /// and `meta` carries the engine's durable analysis state (active-txn
    /// list, the ADR aborted-transaction map, allocator counters).
    Checkpoint {
        /// Redo start point for crash recovery.
        redo_start_lsn: Lsn,
        /// Opaque engine checkpoint metadata.
        meta: Vec<u8>,
    },
    /// Page-id space allocation, so replicas reproduce the allocator state.
    AllocPages {
        /// First allocated page id.
        first: PageId,
        /// Number of pages allocated.
        count: u64,
    },
    /// System filler / annotations (lease renewals, progress markers).
    Noop {
        /// Free-form annotation bytes.
        info: Vec<u8>,
    },
}

/// One log record: the issuing transaction plus its payload.
#[derive(Clone, Debug, PartialEq)]
pub struct LogRecord {
    /// The transaction this record belongs to (`TxnId(0)` for system
    /// records like checkpoints).
    pub txn: TxnId,
    /// The record body.
    pub payload: LogPayload,
}

const TAG_PAGE_WRITE: u8 = 1;
const TAG_BEGIN: u8 = 2;
const TAG_COMMIT: u8 = 3;
const TAG_ABORT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_ALLOC: u8 = 6;
const TAG_NOOP: u8 = 7;

/// Fixed prefix of every encoded record: total_len(4) + tag(1) + txn(8).
pub const RECORD_PREFIX: usize = 13;

impl LogRecord {
    /// Construct a system record (no owning transaction).
    pub fn system(payload: LogPayload) -> LogRecord {
        LogRecord { txn: TxnId::new(0), payload }
    }

    /// The page this record touches, if it is a page write.
    pub fn page_id(&self) -> Option<PageId> {
        match &self.payload {
            LogPayload::PageWrite { page_id, .. } => Some(*page_id),
            _ => None,
        }
    }

    /// Serialized length in bytes (== the LSN space the record occupies).
    pub fn encoded_len(&self) -> usize {
        RECORD_PREFIX
            + match &self.payload {
                LogPayload::PageWrite { op, .. } => 8 + 4 + op.len(),
                LogPayload::TxnBegin => 0,
                LogPayload::TxnCommit { .. } => 8,
                LogPayload::TxnAbort => 0,
                LogPayload::Checkpoint { meta, .. } => 12 + meta.len(),
                LogPayload::AllocPages { .. } => 16,
                LogPayload::Noop { info } => 4 + info.len(),
            }
    }

    /// Append the serialized record to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let total = self.encoded_len() as u32;
        out.extend_from_slice(&total.to_le_bytes());
        let tag = match &self.payload {
            LogPayload::PageWrite { .. } => TAG_PAGE_WRITE,
            LogPayload::TxnBegin => TAG_BEGIN,
            LogPayload::TxnCommit { .. } => TAG_COMMIT,
            LogPayload::TxnAbort => TAG_ABORT,
            LogPayload::Checkpoint { .. } => TAG_CHECKPOINT,
            LogPayload::AllocPages { .. } => TAG_ALLOC,
            LogPayload::Noop { .. } => TAG_NOOP,
        };
        out.push(tag);
        out.extend_from_slice(&self.txn.raw().to_le_bytes());
        match &self.payload {
            LogPayload::PageWrite { page_id, op } => {
                out.extend_from_slice(&page_id.raw().to_le_bytes());
                out.extend_from_slice(&(op.len() as u32).to_le_bytes());
                out.extend_from_slice(op);
            }
            LogPayload::TxnBegin | LogPayload::TxnAbort => {}
            LogPayload::TxnCommit { commit_ts } => {
                out.extend_from_slice(&commit_ts.to_le_bytes());
            }
            LogPayload::Checkpoint { redo_start_lsn, meta } => {
                out.extend_from_slice(&redo_start_lsn.offset().to_le_bytes());
                out.extend_from_slice(&(meta.len() as u32).to_le_bytes());
                out.extend_from_slice(meta);
            }
            LogPayload::AllocPages { first, count } => {
                out.extend_from_slice(&first.raw().to_le_bytes());
                out.extend_from_slice(&count.to_le_bytes());
            }
            LogPayload::Noop { info } => {
                out.extend_from_slice(&(info.len() as u32).to_le_bytes());
                out.extend_from_slice(info);
            }
        }
    }

    /// Decode one record from the front of `data`; returns the record and
    /// the bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(LogRecord, usize)> {
        let err = || Error::Corruption("truncated log record".into());
        if data.len() < RECORD_PREFIX {
            return Err(err());
        }
        let total = u32::from_le_bytes(data[0..4].try_into().unwrap()) as usize;
        if total < RECORD_PREFIX || data.len() < total {
            return Err(err());
        }
        let tag = data[4];
        let txn = TxnId::new(u64::from_le_bytes(data[5..13].try_into().unwrap()));
        let body = &data[RECORD_PREFIX..total];
        let payload = match tag {
            TAG_PAGE_WRITE => {
                if body.len() < 12 {
                    return Err(err());
                }
                let page_id = PageId::new(u64::from_le_bytes(body[0..8].try_into().unwrap()));
                let len = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
                if body.len() != 12 + len {
                    return Err(err());
                }
                LogPayload::PageWrite { page_id, op: body[12..].to_vec() }
            }
            TAG_BEGIN => LogPayload::TxnBegin,
            TAG_COMMIT => {
                if body.len() != 8 {
                    return Err(err());
                }
                LogPayload::TxnCommit { commit_ts: u64::from_le_bytes(body.try_into().unwrap()) }
            }
            TAG_ABORT => LogPayload::TxnAbort,
            TAG_CHECKPOINT => {
                if body.len() < 12 {
                    return Err(err());
                }
                let redo = Lsn::new(u64::from_le_bytes(body[0..8].try_into().unwrap()));
                let mlen = u32::from_le_bytes(body[8..12].try_into().unwrap()) as usize;
                if body.len() != 12 + mlen {
                    return Err(err());
                }
                LogPayload::Checkpoint { redo_start_lsn: redo, meta: body[12..].to_vec() }
            }
            TAG_ALLOC => {
                if body.len() != 16 {
                    return Err(err());
                }
                LogPayload::AllocPages {
                    first: PageId::new(u64::from_le_bytes(body[0..8].try_into().unwrap())),
                    count: u64::from_le_bytes(body[8..16].try_into().unwrap()),
                }
            }
            TAG_NOOP => {
                if body.len() < 4 {
                    return Err(err());
                }
                let len = u32::from_le_bytes(body[0..4].try_into().unwrap()) as usize;
                if body.len() != 4 + len {
                    return Err(err());
                }
                LogPayload::Noop { info: body[4..].to_vec() }
            }
            other => return Err(Error::Corruption(format!("unknown log record tag {other}"))),
        };
        Ok((LogRecord { txn, payload }, total))
    }
}

/// A decoded record together with the LSN it occupies in the stream.
#[derive(Clone, Debug, PartialEq)]
pub struct SequencedRecord {
    /// The record's LSN (byte offset of its first byte).
    pub lsn: Lsn,
    /// The record.
    pub record: LogRecord,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_payloads() -> Vec<LogPayload> {
        vec![
            LogPayload::PageWrite { page_id: PageId::new(9), op: b"redo-bytes".to_vec() },
            LogPayload::PageWrite { page_id: PageId::new(0), op: vec![] },
            LogPayload::TxnBegin,
            LogPayload::TxnCommit { commit_ts: 777 },
            LogPayload::TxnAbort,
            LogPayload::Checkpoint { redo_start_lsn: Lsn::new(4096), meta: b"ckpt-meta".to_vec() },
            LogPayload::AllocPages { first: PageId::new(100), count: 32 },
            LogPayload::Noop { info: b"lease".to_vec() },
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for payload in all_payloads() {
            let rec = LogRecord { txn: TxnId::new(42), payload };
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            assert_eq!(buf.len(), rec.encoded_len());
            let (got, used) = LogRecord::decode(&buf).unwrap();
            assert_eq!(used, buf.len());
            assert_eq!(got, rec);
        }
    }

    #[test]
    fn decode_stream_of_records() {
        let mut buf = Vec::new();
        let records: Vec<LogRecord> = all_payloads()
            .into_iter()
            .enumerate()
            .map(|(i, p)| LogRecord { txn: TxnId::new(i as u64), payload: p })
            .collect();
        for r in &records {
            r.encode(&mut buf);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < buf.len() {
            let (r, used) = LogRecord::decode(&buf[off..]).unwrap();
            decoded.push(r);
            off += used;
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn truncation_rejected_at_every_cut() {
        let rec = LogRecord {
            txn: TxnId::new(1),
            payload: LogPayload::PageWrite { page_id: PageId::new(2), op: vec![7; 20] },
        };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        for cut in 0..buf.len() {
            assert!(LogRecord::decode(&buf[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn bad_tag_rejected() {
        let rec = LogRecord { txn: TxnId::new(1), payload: LogPayload::TxnBegin };
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        buf[4] = 99;
        assert!(LogRecord::decode(&buf).is_err());
    }

    #[test]
    fn page_id_extraction() {
        let r = LogRecord::system(LogPayload::PageWrite { page_id: PageId::new(5), op: vec![] });
        assert_eq!(r.page_id(), Some(PageId::new(5)));
        let r = LogRecord::system(LogPayload::TxnBegin);
        assert_eq!(r.page_id(), None);
    }
}

//! The primary's log pipeline: append → group commit → harden → disseminate.
//!
//! The paper's §4.3–4.4 behaviour, distilled:
//!
//! * Only the primary writes log. Appends are cheap: records accumulate in
//!   the current block.
//! * A committing transaction needs its commit record *hardened* — durable
//!   at write quorum in the landing zone. Group commit falls out of the
//!   flush lock: the first committer seals and hardens every buffered
//!   block; the committers queued behind it find their LSN already covered.
//! * Every hardened block is also *disseminated* — offered to XLOG for the
//!   page servers and secondaries. The offer is made before the harden
//!   completes (speculative logging); the hardened watermark is reported
//!   afterwards, and XLOG only releases blocks below it.
//!
//! The pipeline is generic over its durability device ([`BlockSink`]) and
//! consumers ([`LogDisseminator`]): Socrates plugs in the landing zone and
//! XLOG, the HADR baseline plugs in its replicated-state-machine quorum.

use crate::block::{BlockBuilder, LogBlock};
use crate::landing_zone::LandingZone;
use crate::record::{LogPayload, LogRecord};
use parking_lot::{Condvar, Mutex, RwLock};
use socrates_common::lsn::AtomicLsn;
use socrates_common::metrics::{Counter, Histogram};
use socrates_common::obs::{SpanKind, SpanRing, TraceCtx};
use socrates_common::{Lsn, NodeId, PageId, PartitionId, Result};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// A durability device for log blocks. `harden` returns once the block is
/// durable (e.g. at write quorum in the landing zone).
pub trait BlockSink: Send + Sync {
    /// Durably persist `block`.
    fn harden(&self, block: &LogBlock) -> Result<()>;
}

impl BlockSink for LandingZone {
    fn harden(&self, block: &LogBlock) -> Result<()> {
        self.write_block(block)
    }
}

/// A log consumer fed by the pipeline (XLOG, HADR secondaries).
pub trait LogDisseminator: Send + Sync {
    /// Offer a block, possibly before it is durable (speculative logging).
    /// Implementations may drop it (lossy transport).
    fn offer_block(&self, block: &LogBlock);
    /// Report that everything below `lsn` is durable.
    fn report_hardened(&self, lsn: Lsn);
}

/// Maps pages to partitions so blocks can carry their partition filter.
pub type PartitionMap = Arc<dyn Fn(PageId) -> PartitionId + Send + Sync>;

/// Pipeline tuning knobs.
#[derive(Clone, Debug)]
pub struct LogPipelineConfig {
    /// Cap on a block's record area; a seal happens at this size even
    /// without a commit.
    pub max_block_bytes: usize,
}

impl Default for LogPipelineConfig {
    fn default() -> Self {
        LogPipelineConfig { max_block_bytes: 64 << 10 }
    }
}

/// Pipeline throughput/latency metrics.
#[derive(Debug, Default)]
pub struct LogPipelineMetrics {
    /// Total record bytes appended.
    pub bytes_appended: Counter,
    /// Total block bytes hardened (the paper's "log MB/s" numerator).
    pub bytes_hardened: Counter,
    /// Blocks hardened.
    pub blocks_hardened: Counter,
    /// Wall time of each harden (sink write), µs.
    pub harden_latency: Histogram,
    /// Wall time from entering `commit_wait` to durability, µs — the
    /// paper's commit latency (Table 6).
    pub commit_latency: Histogram,
}

struct BufState {
    builder: Option<BlockBuilder>,
    sealed: VecDeque<LogBlock>,
    next_block_start: Lsn,
}

/// The log pipeline. One per primary.
pub struct LogPipeline {
    buf: Mutex<BufState>,
    /// Sealed blocks drained for flushing but not yet hardened (retained
    /// across transient sink failures so no block is ever lost or skipped).
    unflushed: Mutex<VecDeque<LogBlock>>,
    flush_lock: Mutex<()>,
    /// Group-commit wakeups: followers park here while a leader flushes,
    /// and are notified whenever the hardened watermark advances.
    wait_mutex: Mutex<()>,
    wait_cv: Condvar,
    sink: Arc<dyn BlockSink>,
    disseminators: RwLock<Vec<Arc<dyn LogDisseminator>>>,
    hardened: AtomicLsn,
    partition_of: PartitionMap,
    config: LogPipelineConfig,
    metrics: LogPipelineMetrics,
    /// Causal span sink + the node identity harden spans are attributed
    /// to. `None` until [`set_span_ring`](Self::set_span_ring); read once
    /// per flushed block, never on the append path.
    spans: RwLock<Option<(Arc<SpanRing>, NodeId)>>,
}

impl LogPipeline {
    /// Create a pipeline writing to `sink`, starting at LSN `start`
    /// (zero for a fresh database; the old tail after a restore).
    pub fn new(
        sink: Arc<dyn BlockSink>,
        partition_of: PartitionMap,
        config: LogPipelineConfig,
        start: Lsn,
    ) -> LogPipeline {
        LogPipeline {
            buf: Mutex::with_rank(
                BufState { builder: None, sealed: VecDeque::new(), next_block_start: start },
                socrates_common::lock_rank::WAL_BUF,
                "wal.buf",
            ),
            unflushed: Mutex::with_rank(
                VecDeque::new(),
                socrates_common::lock_rank::WAL_UNFLUSHED,
                "wal.unflushed",
            ),
            flush_lock: Mutex::with_rank(
                (),
                socrates_common::lock_rank::WAL_FLUSH_LOCK,
                "wal.flush_lock",
            ),
            wait_mutex: Mutex::with_rank(
                (),
                socrates_common::lock_rank::WAL_WAIT,
                "wal.wait_mutex",
            ),
            wait_cv: Condvar::new(),
            sink,
            disseminators: RwLock::with_rank(
                Vec::new(),
                socrates_common::lock_rank::WAL_DISSEMINATORS,
                "wal.disseminators",
            ),
            hardened: AtomicLsn::new(start),
            partition_of,
            config,
            metrics: LogPipelineMetrics::default(),
            spans: RwLock::with_rank(None, socrates_common::lock_rank::WAL_SPANS, "wal.spans"),
        }
    }

    /// Attach the causal span ring; harden spans are recorded against
    /// `node` (the primary that owns this pipeline).
    pub fn set_span_ring(&self, ring: Arc<SpanRing>, node: NodeId) {
        *self.spans.write() = Some((ring, node));
    }

    /// Attach a consumer. Consumers added later simply see later blocks;
    /// they catch up through XLOG's tiered reads.
    pub fn add_disseminator(&self, d: Arc<dyn LogDisseminator>) {
        self.disseminators.write().push(d);
    }

    /// Pipeline metrics.
    pub fn metrics(&self) -> &LogPipelineMetrics {
        &self.metrics
    }

    /// Register the pipeline's metrics into the hub under `node` (the
    /// compute node that owns this pipeline). Closures sample the existing
    /// counters/histograms, so the hot path is untouched.
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: socrates_common::NodeId,
    ) {
        let m = Arc::clone(self);
        hub.register_counter_fn(node, "log_bytes_appended", move || m.metrics.bytes_appended.get());
        let m = Arc::clone(self);
        hub.register_counter_fn(node, "log_bytes_hardened", move || m.metrics.bytes_hardened.get());
        let m = Arc::clone(self);
        hub.register_counter_fn(node, "log_blocks_hardened", move || {
            m.metrics.blocks_hardened.get()
        });
        let m = Arc::clone(self);
        hub.register_histogram_fn(node, "harden_latency_us", move || {
            m.metrics.harden_latency.snapshot()
        });
        let m = Arc::clone(self);
        hub.register_histogram_fn(node, "commit_latency_us", move || {
            m.metrics.commit_latency.snapshot()
        });
        let m = Arc::clone(self);
        hub.register_gauge_fn(node, "hardened_lsn", move || m.hardened.load().offset() as i64);
        // Saturation signal for the load observatory: bytes accepted by
        // append() but not yet hardened. A pipeline keeping up hovers near
        // one block; a saturated landing zone grows without bound.
        let m = Arc::clone(self);
        hub.register_gauge_fn(node, "log_append_backlog_bytes", move || {
            let appended = m.metrics.bytes_appended.get();
            let hardened = m.metrics.bytes_hardened.get();
            appended.saturating_sub(hardened) as i64
        });
    }

    /// Everything strictly below this LSN is durable.
    pub fn hardened_lsn(&self) -> Lsn {
        self.hardened.load()
    }

    /// Whether the record at `lsn` is durable. Exact because the hardened
    /// watermark only moves in whole blocks: if it is past a record's first
    /// byte, the record's whole block is durable.
    pub fn is_hardened(&self, lsn: Lsn) -> bool {
        self.hardened.load() > lsn
    }

    /// The LSN the next appended record will receive (the log's tail).
    pub fn tail_lsn(&self) -> Lsn {
        let buf = self.buf.lock();
        match &buf.builder {
            Some(b) => b.next_record_lsn(),
            None => buf.next_block_start + crate::block::BLOCK_HEADER as u64,
        }
    }

    /// Append `record`, returning its LSN. Does not wait for durability.
    pub fn append(&self, record: &LogRecord) -> Lsn {
        self.append_traced(record, TraceCtx::NONE)
    }

    /// [`append`](Self::append), tagging the record's block with a
    /// sampled commit's trace context so the harden and every downstream
    /// consumer (XLOG feed, page-server apply) parent their spans under
    /// it. A [`TraceCtx::NONE`] ctx makes this identical to `append`.
    pub fn append_traced(&self, record: &LogRecord, ctx: TraceCtx) -> Lsn {
        let partition = match &record.payload {
            LogPayload::PageWrite { page_id, .. } => Some((self.partition_of)(*page_id)),
            _ => None,
        };
        let len = record.encoded_len();
        self.metrics.bytes_appended.add(len as u64);
        let mut buf = self.buf.lock();
        if buf.builder.as_ref().is_some_and(|b| b.would_overflow(len)) {
            let b = buf.builder.take().expect("checked above");
            let block = b.seal();
            buf.next_block_start = block.end_lsn();
            buf.sealed.push_back(block);
        }
        if buf.builder.is_none() {
            buf.builder =
                Some(BlockBuilder::new(buf.next_block_start, self.config.max_block_bytes));
        }
        let builder = buf.builder.as_mut().expect("just created");
        if ctx.sampled() {
            builder.set_ctx(ctx);
        }
        builder.append(record, partition)
    }

    /// Harden everything appended so far; returns the new hardened LSN.
    ///
    /// Concurrent callers form a group commit: one does the sink writes,
    /// the rest find their records covered when they acquire the lock.
    pub fn flush(&self) -> Result<Lsn> {
        let guard = self.flush_lock.lock();
        self.flush_locked(guard)
    }

    fn flush_locked(&self, _guard: parking_lot::MutexGuard<'_, ()>) -> Result<Lsn> {
        // Move sealed + current blocks into the retry-safe queue.
        {
            let mut buf = self.buf.lock();
            if let Some(b) = buf.builder.take_if(|b| !b.is_empty()) {
                let block = b.seal();
                buf.next_block_start = block.end_lsn();
                buf.sealed.push_back(block);
            }
            let mut unflushed = self.unflushed.lock();
            while let Some(b) = buf.sealed.pop_front() {
                unflushed.push_back(b);
            }
        }
        loop {
            let block = {
                let mut unflushed = self.unflushed.lock();
                match unflushed.pop_front() {
                    Some(b) => b,
                    None => break,
                }
            };
            // Speculative dissemination: consumers get the block before it
            // is durable, but only act on it once `report_hardened` covers
            // it.
            for d in self.disseminators.read().iter() {
                d.offer_block(&block);
            }
            let t0 = Instant::now();
            // Resolve the span sink only for ctx-carrying blocks: the
            // untraced path never touches the lock.
            let span_sink = if block.ctx().sampled() { self.spans.read().clone() } else { None };
            let span_start = span_sink.as_ref().map(|(ring, _)| ring.now_ns());
            match self.sink.harden(&block) {
                Ok(()) => {
                    self.metrics.harden_latency.record_duration(t0.elapsed());
                    if let (Some((ring, node)), Some(start)) = (&span_sink, span_start) {
                        let dur = ring.now_ns().saturating_sub(start);
                        ring.record_child(block.ctx(), SpanKind::WalHarden, *node, start, dur);
                    }
                    self.metrics.bytes_hardened.add(block.len() as u64);
                    self.metrics.blocks_hardened.incr();
                    let end = block.end_lsn();
                    self.hardened.advance_to(end);
                    for d in self.disseminators.read().iter() {
                        d.report_hardened(end);
                    }
                    // Wake the group: their commits may now be covered.
                    let _g = self.wait_mutex.lock();
                    self.wait_cv.notify_all();
                }
                Err(e) => {
                    // Put it back for the next flush attempt; nothing after
                    // it was hardened either, so ordering is preserved.
                    self.unflushed.lock().push_front(block);
                    // Wake followers so one of them can retry leadership.
                    let _g = self.wait_mutex.lock();
                    self.wait_cv.notify_all();
                    return Err(e);
                }
            }
        }
        Ok(self.hardened.load())
    }

    /// Block until the record at `lsn` is durable (the commit path).
    ///
    /// Group commit: the first committer to arrive becomes the leader and
    /// drives the sink write; the rest park on a condvar and are woken when
    /// the hardened watermark covers them. One device write thus hardens
    /// every commit that arrived during the previous write.
    pub fn commit_wait(&self, lsn: Lsn) -> Result<()> {
        let t0 = Instant::now();
        let deadline = Instant::now() + std::time::Duration::from_secs(60);
        while !self.is_hardened(lsn) {
            match self.flush_lock.try_lock() {
                Some(guard) => {
                    match self.flush_locked(guard) {
                        Ok(_) => {}
                        Err(e) if e.is_transient() => {
                            // Landing-zone backpressure ("Socrates cannot
                            // process any update transactions once the LZ
                            // is full"): stall until destaging catches up.
                            if Instant::now() > deadline {
                                return Err(e);
                            }
                            std::thread::sleep(std::time::Duration::from_millis(5));
                        }
                        Err(e) => return Err(e),
                    }
                }
                None => {
                    // A leader is flushing; park until the watermark moves.
                    let mut g = self.wait_mutex.lock();
                    if !self.is_hardened(lsn) {
                        // Bounded wait guards against a leader that errored
                        // out between our check and the park.
                        self.wait_cv.wait_for(&mut g, std::time::Duration::from_millis(20));
                    }
                }
            }
        }
        self.metrics.commit_latency.record_duration(t0.elapsed());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socrates_common::{Error, TxnId};
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

    /// A sink recording hardened blocks, optionally failing or slow.
    #[derive(Default)]
    struct TestSink {
        hardened: Mutex<Vec<LogBlock>>,
        fail: AtomicBool,
        write_delay_us: AtomicU64,
    }

    impl BlockSink for TestSink {
        fn harden(&self, block: &LogBlock) -> Result<()> {
            if self.fail.load(Ordering::SeqCst) {
                return Err(Error::Unavailable("sink down".into()));
            }
            let d = self.write_delay_us.load(Ordering::Relaxed);
            if d > 0 {
                std::thread::sleep(std::time::Duration::from_micros(d));
            }
            let mut h = self.hardened.lock();
            if let Some(last) = h.last() {
                assert_eq!(last.end_lsn(), block.start_lsn(), "sink saw a gap");
            }
            h.push(block.clone());
            Ok(())
        }
    }

    struct TestDisseminator {
        offered: Mutex<Vec<Lsn>>,
        hardened_reports: AtomicU64,
    }

    impl LogDisseminator for TestDisseminator {
        fn offer_block(&self, block: &LogBlock) {
            self.offered.lock().push(block.start_lsn());
        }
        fn report_hardened(&self, lsn: Lsn) {
            self.hardened_reports.store(lsn.offset(), Ordering::SeqCst);
        }
    }

    fn record(page: u64, len: usize) -> LogRecord {
        LogRecord {
            txn: TxnId::new(1),
            payload: LogPayload::PageWrite { page_id: PageId::new(page), op: vec![7; len] },
        }
    }

    fn pipeline(sink: Arc<TestSink>, max_block: usize) -> LogPipeline {
        LogPipeline::new(
            sink,
            Arc::new(|p: PageId| PartitionId::new((p.raw() / 100) as u32)),
            LogPipelineConfig { max_block_bytes: max_block },
            Lsn::ZERO,
        )
    }

    #[test]
    fn append_assigns_increasing_lsns() {
        let p = pipeline(Arc::new(TestSink::default()), 1 << 16);
        let a = p.append(&record(1, 10));
        let b = p.append(&record(2, 10));
        assert!(b > a);
        assert!(!p.is_hardened(a));
    }

    #[test]
    fn commit_wait_hardens_and_measures() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 1 << 16);
        let lsn = p.append(&record(1, 10));
        p.commit_wait(lsn).unwrap();
        assert!(p.is_hardened(lsn));
        assert_eq!(sink.hardened.lock().len(), 1);
        assert_eq!(p.metrics().commit_latency.count(), 1);
        assert_eq!(p.metrics().blocks_hardened.get(), 1);
        // Idempotent: already hardened returns without more sink writes.
        p.commit_wait(lsn).unwrap();
        assert_eq!(sink.hardened.lock().len(), 1);
    }

    #[test]
    fn block_overflow_seals_and_chains() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 100);
        let mut last = Lsn::ZERO;
        for i in 0..20 {
            last = p.append(&record(i, 40));
        }
        p.commit_wait(last).unwrap();
        let blocks = sink.hardened.lock();
        assert!(blocks.len() > 5, "small cap must produce many blocks");
        // Contiguity was asserted inside the sink.
        assert_eq!(blocks.last().unwrap().end_lsn(), p.hardened_lsn());
    }

    #[test]
    fn transient_sink_failure_loses_nothing() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 1 << 16);
        let lsn1 = p.append(&record(1, 10));
        sink.fail.store(true, Ordering::SeqCst);
        assert!(p.flush().is_err());
        assert!(!p.is_hardened(lsn1));
        // More appends while the sink is down.
        let lsn2 = p.append(&record(2, 10));
        sink.fail.store(false, Ordering::SeqCst);
        p.commit_wait(lsn2).unwrap();
        assert!(p.is_hardened(lsn1));
        assert!(p.is_hardened(lsn2));
        let blocks = sink.hardened.lock();
        let total_records: u32 = blocks.iter().map(|b| b.record_count()).sum();
        assert_eq!(total_records, 2);
    }

    #[test]
    fn dissemination_offer_precedes_hardened_report() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 1 << 16);
        let d = Arc::new(TestDisseminator {
            offered: Mutex::new(vec![]),
            hardened_reports: AtomicU64::new(0),
        });
        p.add_disseminator(Arc::clone(&d) as Arc<dyn LogDisseminator>);
        let lsn = p.append(&record(1, 10));
        p.commit_wait(lsn).unwrap();
        assert_eq!(d.offered.lock().len(), 1);
        assert_eq!(Lsn::new(d.hardened_reports.load(Ordering::SeqCst)), p.hardened_lsn());
    }

    #[test]
    fn partition_filter_flows_from_page_ids() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 1 << 16);
        p.append(&record(50, 4)); // partition 0
        let lsn = p.append(&record(250, 4)); // partition 2
        p.commit_wait(lsn).unwrap();
        let blocks = sink.hardened.lock();
        assert_eq!(blocks[0].partitions(), &[PartitionId::new(0), PartitionId::new(2)]);
    }

    #[test]
    fn group_commit_under_concurrency() {
        let sink = Arc::new(TestSink::default());
        // A slow device is what makes group commit pay off: committers pile
        // up behind the flush lock while the leader writes.
        sink.write_delay_us.store(500, Ordering::Relaxed);
        let p = Arc::new(pipeline(Arc::clone(&sink), 1 << 16));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let lsn = p.append(&record(t * 100 + i, 16));
                        p.commit_wait(lsn).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let blocks = sink.hardened.lock();
        let total_records: u32 = blocks.iter().map(|b| b.record_count()).sum();
        assert_eq!(total_records, 400);
        // Group commit: far fewer sink writes than commits.
        assert!(blocks.len() < 400, "group commit should batch ({} blocks)", blocks.len());
        // All commits observed durability.
        assert_eq!(p.metrics().commit_latency.count(), 400);
    }

    #[test]
    fn traced_append_records_a_harden_span() {
        let sink = Arc::new(TestSink::default());
        let p = pipeline(Arc::clone(&sink), 1 << 16);
        let ring = Arc::new(SpanRing::new(16, 1));
        p.set_span_ring(Arc::clone(&ring), NodeId::PRIMARY);
        let ctx = ring.try_sample().expect("1-in-1 sampling");
        let lsn = p.append_traced(&record(1, 10), ctx);
        p.commit_wait(lsn).unwrap();
        let spans = ring.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].kind, SpanKind::WalHarden);
        assert_eq!(spans[0].trace_id, ctx.trace_id);
        assert_eq!(spans[0].parent_id, ctx.span_id);
        assert_eq!(spans[0].node, NodeId::PRIMARY);
        // The ctx reached the hardened block for downstream consumers.
        assert_eq!(sink.hardened.lock()[0].ctx(), ctx);
        // Untraced appends stay untraced.
        let lsn = p.append(&record(2, 10));
        p.commit_wait(lsn).unwrap();
        assert_eq!(ring.spans().len(), 1);
    }

    #[test]
    fn tail_lsn_tracks_appends() {
        let p = pipeline(Arc::new(TestSink::default()), 1 << 16);
        let t0 = p.tail_lsn();
        let lsn = p.append(&record(1, 10));
        assert_eq!(lsn, t0);
        assert_eq!(p.tail_lsn(), t0 + record(1, 10).encoded_len() as u64);
    }
}

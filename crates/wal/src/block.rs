//! Log blocks — the unit of log I/O and dissemination.
//!
//! Records are grouped into blocks for group commit: one landing-zone write
//! hardens every record in the block. A block also carries the out-of-band
//! partition annotations from the paper (§4.6): the set of partitions its
//! page writes touch, so XLOG can disseminate each block only to the page
//! servers that need it without parsing record contents.
//!
//! Blocks live in a single byte-addressed LSN space: a block's `start_lsn`
//! is the address of its header byte, records follow the fixed header, and
//! `end_lsn` (= start + total length) is the next block's `start_lsn`. This
//! makes landing-zone wraparound and destage bookkeeping pure arithmetic.

use crate::record::{LogRecord, SequencedRecord};
use socrates_common::checksum::crc32;
use socrates_common::obs::TraceCtx;
use socrates_common::{Error, Lsn, PartitionId, Result};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Fixed size of the block header:
/// magic(4) + crc(4) + start_lsn(8) + total_len(4) + record_count(4) +
/// partition_count(2) + reserved(6).
pub const BLOCK_HEADER: usize = 32;

const MAGIC: [u8; 4] = *b"SLB1";

/// An immutable, checksummed group of log records.
///
/// Cheap to clone (the encoded image is shared); blocks flow from the
/// primary through the landing zone, XLOG, page servers, and secondaries.
#[derive(Clone, Debug)]
pub struct LogBlock {
    start_lsn: Lsn,
    bytes: Arc<Vec<u8>>,
    partitions: Arc<Vec<PartitionId>>,
    record_count: u32,
    /// Causal trace context of the sampled commit (if any) grouped into
    /// this block. In-memory only — not part of the encoded image, so a
    /// block recovered from the landing zone decodes to
    /// [`TraceCtx::NONE`] (the trace ends where durability begins).
    ctx: TraceCtx,
}

impl PartialEq for LogBlock {
    fn eq(&self, other: &Self) -> bool {
        self.start_lsn == other.start_lsn && *self.bytes == *other.bytes
    }
}

impl LogBlock {
    /// LSN of the first byte of this block (its header).
    pub fn start_lsn(&self) -> Lsn {
        self.start_lsn
    }

    /// LSN one past the last byte; the next block starts here.
    pub fn end_lsn(&self) -> Lsn {
        self.start_lsn + self.bytes.len() as u64
    }

    /// Total encoded length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// A block always contains its header; never "empty" as a byte string.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Number of records in the block.
    pub fn record_count(&self) -> u32 {
        self.record_count
    }

    /// The full encoded image (header + records + partition trailer).
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Partitions whose pages are modified by records in this block.
    pub fn partitions(&self) -> &[PartitionId] {
        &self.partitions
    }

    /// The causal trace context riding on this block ([`TraceCtx::NONE`]
    /// when no grouped commit was sampled).
    pub fn ctx(&self) -> TraceCtx {
        self.ctx
    }

    /// Whether this block contains any record relevant to `p`.
    ///
    /// Blocks with no page writes (pure commit/system blocks) are relevant
    /// to everyone: they advance applied-LSN watermarks.
    pub fn affects_partition(&self, p: PartitionId) -> bool {
        self.partitions.is_empty() || self.partitions.contains(&p)
    }

    /// Decode the records with their LSNs.
    pub fn records(&self) -> Result<Vec<SequencedRecord>> {
        let trailer = self.partitions.len() * 4;
        let records_end = self.bytes.len() - trailer;
        let mut out = Vec::with_capacity(self.record_count as usize);
        let mut off = BLOCK_HEADER;
        while off < records_end {
            let (record, used) = LogRecord::decode(&self.bytes[off..records_end])?;
            out.push(SequencedRecord { lsn: self.start_lsn + off as u64, record });
            off += used;
        }
        if out.len() != self.record_count as usize {
            return Err(Error::Corruption(format!(
                "block at {} decodes {} records, header says {}",
                self.start_lsn,
                out.len(),
                self.record_count
            )));
        }
        Ok(out)
    }

    /// Parse a block's total length from its (possibly partial) header.
    /// Needs at least [`BLOCK_HEADER`] bytes. Used by the landing zone to
    /// size the second read.
    pub fn peek(header: &[u8]) -> Result<BlockInfo> {
        if header.len() < BLOCK_HEADER {
            return Err(Error::Corruption("short block header".into()));
        }
        if header[0..4] != MAGIC {
            return Err(Error::Corruption("bad block magic".into()));
        }
        let start_lsn = Lsn::new(u64::from_le_bytes(header[8..16].try_into().unwrap()));
        let total_len = u32::from_le_bytes(header[16..20].try_into().unwrap()) as usize;
        if total_len < BLOCK_HEADER {
            return Err(Error::Corruption(format!("block total_len {total_len} too small")));
        }
        Ok(BlockInfo { start_lsn, total_len })
    }

    /// Validate and adopt a full encoded block image.
    pub fn decode(bytes: Vec<u8>) -> Result<LogBlock> {
        let info = Self::peek(&bytes)?;
        if bytes.len() != info.total_len {
            return Err(Error::Corruption(format!(
                "block image {} bytes, header says {}",
                bytes.len(),
                info.total_len
            )));
        }
        let stored_crc = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
        let crc = crc32(&bytes[8..]);
        if stored_crc != crc {
            return Err(Error::Corruption(format!(
                "block crc mismatch at {}: stored {stored_crc:#x} computed {crc:#x}",
                info.start_lsn
            )));
        }
        let record_count = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
        let partition_count = u16::from_le_bytes(bytes[24..26].try_into().unwrap()) as usize;
        let trailer = partition_count * 4;
        if BLOCK_HEADER + trailer > bytes.len() {
            return Err(Error::Corruption("block partition trailer overruns image".into()));
        }
        let tstart = bytes.len() - trailer;
        let partitions: Vec<PartitionId> = (0..partition_count)
            .map(|i| {
                PartitionId::new(u32::from_le_bytes(
                    bytes[tstart + i * 4..tstart + i * 4 + 4].try_into().unwrap(),
                ))
            })
            .collect();
        Ok(LogBlock {
            start_lsn: info.start_lsn,
            bytes: Arc::new(bytes),
            partitions: Arc::new(partitions),
            record_count,
            ctx: TraceCtx::NONE,
        })
    }
}

/// Parsed header essentials of a block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BlockInfo {
    /// The block's start LSN as recorded in its header.
    pub start_lsn: Lsn,
    /// Total encoded length including header and trailer.
    pub total_len: usize,
}

/// Incrementally builds one block, handing out record LSNs as they are
/// appended.
pub struct BlockBuilder {
    start_lsn: Lsn,
    buf: Vec<u8>,
    record_count: u32,
    partitions: BTreeSet<PartitionId>,
    max_record_bytes: usize,
    ctx: TraceCtx,
}

impl BlockBuilder {
    /// Start a block at `start_lsn` whose record area is capped at
    /// `max_record_bytes` (a single oversized record is still admitted).
    pub fn new(start_lsn: Lsn, max_record_bytes: usize) -> BlockBuilder {
        BlockBuilder {
            start_lsn,
            buf: Vec::with_capacity(BLOCK_HEADER + max_record_bytes.min(1 << 16)),
            record_count: 0,
            partitions: BTreeSet::new(),
            max_record_bytes,
            ctx: TraceCtx::NONE,
        }
    }

    /// Attach a sampled commit's trace context. One ctx per block: the
    /// first sampled commit wins (group commit batches many commits into
    /// one harden; tracing follows the one that triggered sampling).
    pub fn set_ctx(&mut self, ctx: TraceCtx) {
        if !self.ctx.sampled() {
            self.ctx = ctx;
        }
    }

    /// The LSN the next appended record will receive.
    pub fn next_record_lsn(&self) -> Lsn {
        self.start_lsn + (BLOCK_HEADER + self.record_area_len()) as u64
    }

    fn record_area_len(&self) -> usize {
        self.buf.len().saturating_sub(BLOCK_HEADER)
    }

    /// Whether any record has been appended.
    pub fn is_empty(&self) -> bool {
        self.record_count == 0
    }

    /// Whether appending `len` more record bytes would exceed the cap.
    pub fn would_overflow(&self, len: usize) -> bool {
        !self.is_empty() && self.record_area_len() + len > self.max_record_bytes
    }

    /// Append `record`, tagging the block for `partition` when the record
    /// is a page write. Returns the record's LSN.
    pub fn append(&mut self, record: &LogRecord, partition: Option<PartitionId>) -> Lsn {
        if self.buf.is_empty() {
            self.buf.resize(BLOCK_HEADER, 0);
        }
        let lsn = self.next_record_lsn();
        record.encode(&mut self.buf);
        self.record_count += 1;
        if let Some(p) = partition {
            self.partitions.insert(p);
        }
        lsn
    }

    /// Seal into an immutable block. Must not be called on an empty builder.
    pub fn seal(mut self) -> LogBlock {
        assert!(!self.is_empty(), "sealing an empty block");
        let partitions: Vec<PartitionId> = self.partitions.iter().copied().collect();
        for p in &partitions {
            self.buf.extend_from_slice(&p.raw().to_le_bytes());
        }
        let total_len = self.buf.len() as u32;
        self.buf[0..4].copy_from_slice(&MAGIC);
        self.buf[8..16].copy_from_slice(&self.start_lsn.offset().to_le_bytes());
        self.buf[16..20].copy_from_slice(&total_len.to_le_bytes());
        self.buf[20..24].copy_from_slice(&self.record_count.to_le_bytes());
        self.buf[24..26].copy_from_slice(&(partitions.len() as u16).to_le_bytes());
        let crc = crc32(&self.buf[8..]);
        self.buf[4..8].copy_from_slice(&crc.to_le_bytes());
        LogBlock {
            start_lsn: self.start_lsn,
            bytes: Arc::new(self.buf),
            partitions: Arc::new(partitions),
            record_count: self.record_count,
            ctx: self.ctx,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogPayload;
    use socrates_common::{PageId, TxnId};

    fn page_write(page: u64, data: &[u8]) -> LogRecord {
        LogRecord {
            txn: TxnId::new(1),
            payload: LogPayload::PageWrite { page_id: PageId::new(page), op: data.to_vec() },
        }
    }

    #[test]
    fn build_seal_decode_roundtrip() {
        let mut b = BlockBuilder::new(Lsn::new(1000), 1 << 16);
        let r1 = page_write(1, b"aa");
        let r2 = LogRecord { txn: TxnId::new(1), payload: LogPayload::TxnCommit { commit_ts: 5 } };
        let lsn1 = b.append(&r1, Some(PartitionId::new(0)));
        let lsn2 = b.append(&r2, None);
        assert_eq!(lsn1, Lsn::new(1000 + BLOCK_HEADER as u64));
        assert_eq!(lsn2, lsn1 + r1.encoded_len() as u64);
        let block = b.seal();
        assert_eq!(block.start_lsn(), Lsn::new(1000));
        assert_eq!(block.record_count(), 2);
        assert_eq!(block.partitions(), &[PartitionId::new(0)]);

        let decoded = LogBlock::decode(block.as_bytes().to_vec()).unwrap();
        assert_eq!(decoded, block);
        let recs = decoded.records().unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].lsn, lsn1);
        assert_eq!(recs[0].record, r1);
        assert_eq!(recs[1].lsn, lsn2);
        assert_eq!(recs[1].record, r2);
    }

    #[test]
    fn trace_ctx_rides_in_memory_only() {
        let mut b = BlockBuilder::new(Lsn::ZERO, 1 << 16);
        b.append(&page_write(1, b"x"), None);
        b.set_ctx(TraceCtx { trace_id: 5, span_id: 5 });
        // First sampled ctx wins across a group-commit batch.
        b.set_ctx(TraceCtx { trace_id: 9, span_id: 9 });
        let block = b.seal();
        assert_eq!(block.ctx().trace_id, 5);
        // Clones share it; decoding the image does not resurrect it.
        assert_eq!(block.clone().ctx().trace_id, 5);
        let decoded = LogBlock::decode(block.as_bytes().to_vec()).unwrap();
        assert!(!decoded.ctx().sampled());
    }

    #[test]
    fn end_lsn_chains_blocks() {
        let mut b1 = BlockBuilder::new(Lsn::ZERO, 1 << 16);
        b1.append(&page_write(1, b"x"), Some(PartitionId::new(0)));
        let block1 = b1.seal();
        let mut b2 = BlockBuilder::new(block1.end_lsn(), 1 << 16);
        let lsn = b2.append(&page_write(2, b"y"), Some(PartitionId::new(1)));
        assert_eq!(lsn, block1.end_lsn() + BLOCK_HEADER as u64);
    }

    #[test]
    fn partition_annotations_deduplicate_and_sort() {
        let mut b = BlockBuilder::new(Lsn::ZERO, 1 << 16);
        b.append(&page_write(1, b"x"), Some(PartitionId::new(3)));
        b.append(&page_write(2, b"y"), Some(PartitionId::new(1)));
        b.append(&page_write(3, b"z"), Some(PartitionId::new(3)));
        let block = b.seal();
        assert_eq!(block.partitions(), &[PartitionId::new(1), PartitionId::new(3)]);
        assert!(block.affects_partition(PartitionId::new(1)));
        assert!(!block.affects_partition(PartitionId::new(2)));
    }

    #[test]
    fn pure_system_block_affects_everyone() {
        let mut b = BlockBuilder::new(Lsn::ZERO, 1 << 16);
        b.append(
            &LogRecord::system(LogPayload::Checkpoint { redo_start_lsn: Lsn::ZERO, meta: vec![] }),
            None,
        );
        let block = b.seal();
        assert!(block.affects_partition(PartitionId::new(7)));
    }

    #[test]
    fn corruption_detected_on_decode() {
        let mut b = BlockBuilder::new(Lsn::new(64), 1 << 16);
        b.append(&page_write(1, b"payload"), Some(PartitionId::new(0)));
        let block = b.seal();
        let mut img = block.as_bytes().to_vec();
        img[BLOCK_HEADER + 2] ^= 0x01;
        assert!(LogBlock::decode(img).is_err());
        // Truncated image
        assert!(LogBlock::decode(block.as_bytes()[..block.len() - 1].to_vec()).is_err());
        // Bad magic
        let mut img2 = block.as_bytes().to_vec();
        img2[0] = b'X';
        assert!(LogBlock::decode(img2).is_err());
    }

    #[test]
    fn overflow_policy() {
        let mut b = BlockBuilder::new(Lsn::ZERO, 200);
        assert!(!b.would_overflow(1000), "first record always admitted");
        let rec = page_write(1, &[0; 50]);
        let len = rec.encoded_len(); // 50 bytes of op + record framing
        b.append(&rec, None);
        assert!(b.would_overflow(201 - len));
        assert!(!b.would_overflow(200 - len));
    }

    #[test]
    fn peek_reports_length() {
        let mut b = BlockBuilder::new(Lsn::new(512), 1 << 16);
        b.append(&page_write(1, b"abc"), Some(PartitionId::new(2)));
        let block = b.seal();
        let info = LogBlock::peek(&block.as_bytes()[..BLOCK_HEADER]).unwrap();
        assert_eq!(info.start_lsn, Lsn::new(512));
        assert_eq!(info.total_len, block.len());
        assert!(LogBlock::peek(&block.as_bytes()[..10]).is_err());
    }
}

//! The Socrates log substrate: records, blocks, the landing zone, and the
//! primary's log pipeline.
//!
//! Socrates treats the log as a first-class citizen, separate from both
//! compute and page storage (paper §4.1.4): durability is the log's job,
//! and the log alone decides how to be fast (landing zone on premium
//! storage), cheap (destaged to XStore), and scalable (disseminated by
//! XLOG). This crate provides the mechanisms; the `socrates-xlog` crate
//! provides the XLOG service that serves and destages the log.

pub mod block;
pub mod landing_zone;
pub mod pipeline;
pub mod quorum;
pub mod record;
pub mod store;

pub use block::{BlockBuilder, BlockInfo, LogBlock, BLOCK_HEADER};
pub use landing_zone::{LandingZone, LandingZoneConfig};
pub use pipeline::{BlockSink, LogDisseminator, LogPipeline, LogPipelineConfig, PartitionMap};
pub use quorum::{Acceptor, QuorumConfig, QuorumLog};
pub use record::{LogPayload, LogRecord, SequencedRecord};
pub use store::LogStore;

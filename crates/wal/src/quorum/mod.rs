//! The quorum log tier: safekeeper-style replicated WAL acceptors.
//!
//! The landing zone (paper §4.1.4) hardens blocks through a fixed write
//! quorum of passive devices behind a single designated writer. This
//! module replaces that single point with an *acceptance protocol*: three
//! (or more) acceptor nodes each hold their own copy of the log tail,
//! vote on proposer leadership by term, and a block counts as durable
//! once a majority has flushed it. A restarted primary campaigns for a
//! new term instead of assuming it still owns the log, so a deposed
//! writer can never split the stream.
//!
//! Layout:
//! * [`protocol`] — the pure decision core (terms, votes, truncation,
//!   append verdicts). No I/O, no threads, no clock.
//! * [`sim`] — a deterministic step-function simulator that drives
//!   protocol cores through seeded message interleavings and checks the
//!   safety invariants after every step.
//! * this file — the live tier: [`Acceptor`] (a protocol core married to
//!   real block storage and a latency model) and [`QuorumLog`] (the
//!   proposer: fan-out workers, commit watermark, campaigns, catch-up).
//!
//! [`QuorumLog`] implements [`LogStore`], so the fabric can mount it
//! where the landing zone normally sits; `quorum_acceptors = 1` degrades
//! to the classic single-writer behaviour (one acceptor, quorum of one).

pub mod protocol;
pub mod sim;

use crate::block::LogBlock;
use crate::pipeline::BlockSink;
use crate::store::LogStore;
use parking_lot::{Mutex, RwLock};
use protocol::{
    choose_donor, AcceptorCore, AppendVerdict, ElectedResp, Entry, Term, TermHistory, VoteResp,
};
use socrates_common::fault::{sites, FaultOutcome, FaultRegistry};
use socrates_common::latency::{precise_sleep, LatencyInjector};
use socrates_common::lock_rank;
use socrates_common::lsn::AtomicLsn;
use socrates_common::metrics::Counter;
use socrates_common::obs::MetricsHub;
use socrates_common::{Error, Lsn, NodeId, Result};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

/// Shape of the quorum tier.
#[derive(Clone, Debug)]
pub struct QuorumConfig {
    /// Number of acceptors (1 = single-writer back-compat mode).
    pub acceptors: usize,
    /// Acks required to commit; 0 means majority (`n/2 + 1`).
    pub ack_required: usize,
    /// Logical capacity of each acceptor's retained window, bytes.
    /// Appends beyond it get destage backpressure like the landing zone.
    pub capacity: u64,
}

impl QuorumConfig {
    /// The effective ack count (resolving `0` to majority).
    pub fn required(&self) -> usize {
        if self.ack_required == 0 {
            self.acceptors / 2 + 1
        } else {
            self.ack_required
        }
    }
}

/// What one acceptor holds under its lock: the protocol core plus the
/// actual block images for its retained entries.
struct AcceptorState {
    core: AcceptorCore,
    /// Retained block images keyed by start LSN; always mirrors
    /// `core.entries()` exactly.
    blocks: BTreeMap<Lsn, LogBlock>,
}

/// One live acceptor node: durable protocol state (survives `kill`), a
/// latency model for its device, and lock-free mirrors of the metrics
/// the hub samples.
pub struct Acceptor {
    id: usize,
    state: Mutex<AcceptorState>,
    /// Whether the node is responding. A killed acceptor refuses every
    /// message but keeps its state (crash, not disk loss).
    up: AtomicBool,
    latency: Option<LatencyInjector>,
    // Hub snapshot closures may only read atomics (see lock_rank.rs), so
    // the lock-guarded truth is mirrored here after every mutation.
    flush_pub: AtomicU64,
    term_pub: AtomicU64,
    elected_pub: AtomicU64,
}

impl Acceptor {
    /// A fresh acceptor whose log starts at `start`.
    pub fn new(id: usize, start: Lsn, latency: Option<LatencyInjector>) -> Acceptor {
        Acceptor {
            id,
            state: Mutex::with_rank(
                AcceptorState { core: AcceptorCore::new(start), blocks: BTreeMap::new() },
                lock_rank::WAL_ACCEPTOR_STATE,
                "quorum.acceptor",
            ),
            up: AtomicBool::new(true),
            latency,
            flush_pub: AtomicU64::new(start.offset()),
            term_pub: AtomicU64::new(0),
            elected_pub: AtomicU64::new(0),
        }
    }

    /// The acceptor's index within the quorum.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Whether the node is responding.
    pub fn is_up(&self) -> bool {
        // ordering: relaxed — liveness flag; messages to a just-killed
        // node failing later is indistinguishable from network delay
        self.up.load(Ordering::Relaxed)
    }

    /// Stop responding (crash). State is kept.
    pub fn kill(&self) {
        // ordering: relaxed — see is_up
        self.up.store(false, Ordering::Relaxed);
    }

    /// Resume responding with the pre-crash durable state.
    pub fn restart(&self) {
        // ordering: relaxed — see is_up
        self.up.store(true, Ordering::Relaxed);
    }

    /// The flushed-to LSN (atomic mirror; safe from hub closures).
    pub fn flush_lsn(&self) -> Lsn {
        // ordering: relaxed — monitoring mirror of the lock-guarded truth
        Lsn::new(self.flush_pub.load(Ordering::Relaxed))
    }

    /// The promised term (atomic mirror).
    pub fn term(&self) -> Term {
        // ordering: relaxed — monitoring mirror
        self.term_pub.load(Ordering::Relaxed)
    }

    /// The highest term whose election announcement was processed.
    pub fn elected_term(&self) -> Term {
        // ordering: relaxed — monitoring mirror
        self.elected_pub.load(Ordering::Relaxed)
    }

    fn sync_pub(&self, st: &AcceptorState) {
        // ordering: relaxed — mirrors are monitoring-only; the lock is
        // the synchronisation point for protocol state
        self.flush_pub.store(st.core.flush().offset(), Ordering::Relaxed);
        // ordering: relaxed — monitoring mirror, lock carries the data
        self.term_pub.store(st.core.term(), Ordering::Relaxed);
        // ordering: relaxed — monitoring mirror, lock carries the data
        self.elected_pub.store(st.core.elected_term(), Ordering::Relaxed);
    }

    /// Handle a campaign vote request. `None` when the node is down.
    pub fn vote(&self, term: Term) -> Option<VoteResp> {
        if !self.is_up() {
            return None;
        }
        let mut st = self.state.lock();
        let resp = st.core.handle_vote(term);
        self.sync_pub(&st);
        Some(resp)
    }

    /// Handle a `ProposerElected` announcement, truncating any divergent
    /// tail (and its block images). `None` when the node is down.
    pub fn elected(&self, term: Term, history: &TermHistory) -> Option<ElectedResp> {
        if !self.is_up() {
            return None;
        }
        let mut st = self.state.lock();
        let resp = st.core.handle_elected(term, history);
        if resp.accepted {
            let flush = resp.flush;
            st.blocks.retain(|start, _| *start < flush);
        }
        self.sync_pub(&st);
        Some(resp)
    }

    /// Offer one block for flushing. `entry_term` is the term that
    /// originally wrote the block (differs from `proposer_term` during
    /// catch-up backfill). `None` when the node is down.
    pub fn append(
        &self,
        proposer_term: Term,
        entry_term: Term,
        block: &LogBlock,
    ) -> Option<AppendVerdict> {
        if !self.is_up() {
            return None;
        }
        if let Some(inj) = &self.latency {
            // Model the device flush before taking the lock, so one slow
            // acceptor delays its own ack, not the whole quorum.
            precise_sleep(inj.write_delay());
        }
        let entry = Entry {
            start: block.start_lsn(),
            end: block.end_lsn(),
            term: entry_term,
            payload: fingerprint(block.as_bytes()),
        };
        let mut st = self.state.lock();
        let verdict = st.core.handle_append(proposer_term, entry);
        if verdict == AppendVerdict::Appended {
            st.blocks.insert(block.start_lsn(), block.clone());
        }
        self.sync_pub(&st);
        Some(verdict)
    }

    /// Read the retained block starting at `lsn`. `None` when down or
    /// not held.
    pub fn read_block(&self, lsn: Lsn) -> Option<LogBlock> {
        self.read_block_with_term(lsn).map(|(b, _)| b)
    }

    /// Read a retained block plus the term that originally wrote it —
    /// what catch-up needs to keep the laggard's term history accurate.
    pub fn read_block_with_term(&self, lsn: Lsn) -> Option<(LogBlock, Term)> {
        if !self.is_up() {
            return None;
        }
        if let Some(inj) = &self.latency {
            precise_sleep(inj.read_delay());
        }
        let st = self.state.lock();
        let block = st.blocks.get(&lsn)?.clone();
        let term = st.core.entry_at(lsn)?.term;
        Some((block, term))
    }

    /// Oldest retained LSN (the destage horizon).
    pub fn base(&self) -> Lsn {
        self.state.lock().core.base()
    }

    /// Destage trim: drop blocks wholly below `lsn`. Skipped while down
    /// (a crashed node cannot receive the message; rejoin catch-up will
    /// fast-forward it past ranges destaged in its absence).
    pub fn truncate_to(&self, lsn: Lsn) {
        if !self.is_up() {
            return;
        }
        let mut st = self.state.lock();
        st.core.truncate_base(lsn);
        let base = st.core.base();
        st.blocks.retain(|_, b| b.end_lsn() > base);
        self.sync_pub(&st);
    }

    /// Reseed past a range destaged out of every peer (see
    /// [`AcceptorCore::fast_forward`]).
    pub fn fast_forward(&self, to: Lsn, history: &TermHistory) {
        if !self.is_up() {
            return;
        }
        let mut st = self.state.lock();
        st.core.fast_forward(to, history);
        st.blocks.clear();
        self.sync_pub(&st);
    }
}

/// FNV-1a over the block image — the content fingerprint stored in each
/// protocol entry so divergent payloads are detectable.
fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One append fanned out to an acceptor worker.
struct Job {
    proposer_term: Term,
    entry_term: Term,
    history: Arc<TermHistory>,
    block: LogBlock,
    ack: mpsc::Sender<Ack>,
}

/// One acceptor's answer to a fanned-out append.
struct Ack {
    ok: bool,
    flush: Lsn,
    /// A newer term the acceptor reported (0 = none) — the proposer has
    /// been deposed and must stop writing.
    observed_term: Term,
}

/// State shared between the proposer front and its acceptor workers.
struct Shared {
    acceptors: Vec<Arc<Acceptor>>,
    faults: RwLock<FaultRegistry>,
    /// Blocks replicated during catch-up (straggler backfill volume).
    catchup_blocks: Counter,
}

impl Shared {
    fn check_fault(&self, site: &str, lsn: Option<Lsn>) -> Option<FaultOutcome> {
        self.faults.read().check_at(site, lsn)
    }

    /// Stream the laggard `idx` forward until its flush reaches `target`,
    /// reading each missing block from whichever peer still retains it.
    /// Falls back to [`Acceptor::fast_forward`] when the missing range was
    /// destaged out of every peer. Returns the final flush LSN.
    fn catch_up(&self, idx: usize, target: Lsn, term: Term, history: &TermHistory) -> Result<Lsn> {
        let acc = &self.acceptors[idx];
        loop {
            let flush = match acc.elected(term, history) {
                Some(resp) if resp.accepted => resp.flush,
                Some(_) => {
                    return Err(Error::Unavailable(format!(
                        "acceptor {idx} is ahead of term {term}; catch-up abandoned"
                    )))
                }
                None => {
                    return Err(Error::Unavailable(format!(
                        "acceptor {idx} went down during catch-up"
                    )))
                }
            };
            if flush >= target {
                return Ok(flush);
            }
            match self.check_fault(sites::LZ_QUORUM_APPEND, Some(flush)) {
                Some(FaultOutcome::Crash) => {
                    acc.kill();
                    return Err(Error::Unavailable(format!(
                        "fault: acceptor {idx} crashed during catch-up"
                    )));
                }
                Some(_) => {
                    return Err(Error::Unavailable(format!(
                        "fault: catch-up append to acceptor {idx} failed"
                    )));
                }
                None => {}
            }
            // Find a peer that still retains the block at `flush`.
            let served = self.peers_up(idx).find_map(|p| p.read_block_with_term(flush));
            match served {
                Some((block, entry_term)) => match acc.append(term, entry_term, &block) {
                    Some(AppendVerdict::Appended) | Some(AppendVerdict::Duplicate) => {
                        self.catchup_blocks.incr();
                    }
                    Some(v) => {
                        return Err(Error::Unavailable(format!(
                            "catch-up append to acceptor {idx} at {flush} rejected: {v:?}"
                        )))
                    }
                    None => {
                        return Err(Error::Unavailable(format!(
                            "acceptor {idx} went down during catch-up"
                        )))
                    }
                },
                None => {
                    // Nobody can serve `flush` — the range was destaged.
                    // Resume at the oldest LSN a live peer still retains.
                    let resume = self
                        .peers_up(idx)
                        .filter(|p| p.flush_lsn() > flush)
                        .map(|p| p.base())
                        .min();
                    match resume {
                        Some(r) if r > flush => acc.fast_forward(r, history),
                        _ => {
                            return Err(Error::Unavailable(format!(
                                "no peer can serve catch-up for acceptor {idx} from {flush}"
                            )))
                        }
                    }
                }
            }
        }
    }

    fn peers_up(&self, idx: usize) -> impl Iterator<Item = &Arc<Acceptor>> {
        self.acceptors
            .iter()
            .enumerate()
            .filter(move |(j, p)| *j != idx && p.is_up())
            .map(|(_, p)| p)
    }
}

/// The proposer-side term state: what the current leader knows.
struct ProposerState {
    term: Term,
    history: Arc<TermHistory>,
    /// Append cursor — equals the commit watermark between writes
    /// (a block is only admitted once its predecessor committed).
    head: Lsn,
    /// Destage horizon.
    tail: Lsn,
    /// Whether a campaign has been won at all.
    elected: bool,
}

/// Commit-path counters, registered with the hub by the fabric.
pub struct QuorumMetrics {
    /// Campaigns won.
    pub elections: Counter,
    /// Blocks committed through the quorum.
    pub appends: Counter,
    /// Writes that failed to reach a quorum of acks.
    pub commit_stalls: Counter,
}

/// The quorum WAL: a [`LogStore`] whose durability comes from majority
/// acceptance instead of a fixed device quorum.
pub struct QuorumLog {
    shared: Arc<Shared>,
    config: QuorumConfig,
    /// Serialises writers (appends and campaigns). Held across the whole
    /// fan-out/ack cycle so blocks enter the stream in LSN order.
    write_gate: Mutex<()>,
    state: Mutex<ProposerState>,
    workers: Vec<mpsc::Sender<Job>>,
    worker_handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Durable commit watermark mirror (monotone; hub-safe).
    commit: AtomicLsn,
    tail_pub: AtomicU64,
    term_pub: AtomicU64,
    /// Set when an acceptor reported a newer term: this proposer has been
    /// superseded and refuses writes until it campaigns again.
    deposed: AtomicBool,
    metrics: QuorumMetrics,
}

impl QuorumLog {
    /// Build the tier and its acceptors, logs starting at [`Lsn::ZERO`].
    /// `latency(i)` supplies each acceptor's device model.
    pub fn new(
        config: QuorumConfig,
        latency: impl Fn(usize) -> Option<LatencyInjector>,
    ) -> QuorumLog {
        let acceptors = (0..config.acceptors)
            .map(|i| Arc::new(Acceptor::new(i, Lsn::ZERO, latency(i))))
            .collect();
        QuorumLog::with_acceptors(acceptors, config)
    }

    /// Mount a proposer over existing acceptors — how a restarted primary
    /// reattaches to the surviving quorum (it must [`LogStore::recover`]
    /// before writing).
    pub fn with_acceptors(acceptors: Vec<Arc<Acceptor>>, config: QuorumConfig) -> QuorumLog {
        assert_eq!(acceptors.len(), config.acceptors, "acceptor count mismatch");
        assert!(config.acceptors >= 1, "quorum log needs at least one acceptor");
        assert!(
            config.required() <= config.acceptors,
            "ack_required {} out of range for {} acceptors",
            config.required(),
            config.acceptors
        );
        let shared = Arc::new(Shared {
            acceptors,
            faults: RwLock::with_rank(
                FaultRegistry::disabled(),
                lock_rank::WAL_QUORUM_FAULTS,
                "quorum.faults",
            ),
            catchup_blocks: Counter::new(),
        });
        let mut workers = Vec::with_capacity(config.acceptors);
        let mut handles = Vec::with_capacity(config.acceptors);
        for i in 0..config.acceptors {
            let (tx, rx) = mpsc::channel::<Job>();
            let sh = Arc::clone(&shared);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("wal-acceptor-{i}"))
                    .spawn(move || acceptor_worker(&sh, i, &rx))
                    .expect("spawn acceptor worker"),
            );
            workers.push(tx);
        }
        QuorumLog {
            shared,
            config,
            write_gate: Mutex::with_rank((), lock_rank::WAL_QUORUM_WRITE, "quorum.write_gate"),
            state: Mutex::with_rank(
                ProposerState {
                    term: 0,
                    history: Arc::new(TermHistory::new()),
                    head: Lsn::ZERO,
                    tail: Lsn::ZERO,
                    elected: false,
                },
                lock_rank::WAL_QUORUM_STATE,
                "quorum.state",
            ),
            workers,
            worker_handles: Mutex::with_rank(
                handles,
                lock_rank::WAL_QUORUM_WORKERS,
                "quorum.worker_handles",
            ),
            commit: AtomicLsn::new(Lsn::ZERO),
            tail_pub: AtomicU64::new(0),
            term_pub: AtomicU64::new(0),
            deposed: AtomicBool::new(false),
            metrics: QuorumMetrics {
                elections: Counter::new(),
                appends: Counter::new(),
                commit_stalls: Counter::new(),
            },
        }
    }

    /// The acceptor nodes (tests and the fabric kill/restart through
    /// these).
    pub fn acceptors(&self) -> &[Arc<Acceptor>] {
        &self.shared.acceptors
    }

    /// Attach a fault registry; the append/ack/vote paths consult the
    /// `lz.quorum.*` sites.
    pub fn set_fault_registry(&self, faults: FaultRegistry) {
        *self.shared.faults.write() = faults;
    }

    /// The current proposer term (0 until the first campaign).
    pub fn term(&self) -> Term {
        // ordering: relaxed — monitoring mirror of the lock-guarded term
        self.term_pub.load(Ordering::Relaxed)
    }

    /// The durable commit watermark: every LSN below it is flushed on at
    /// least `ack_required` acceptors. Monotone.
    pub fn commit_lsn(&self) -> Lsn {
        self.commit.load()
    }

    /// Whether this proposer has been superseded by a newer term.
    pub fn is_deposed(&self) -> bool {
        // ordering: relaxed — advisory flag; the acceptors' term checks
        // are the actual fencing
        self.deposed.load(Ordering::Relaxed)
    }

    /// Commit-path counters.
    pub fn metrics(&self) -> &QuorumMetrics {
        &self.metrics
    }

    /// Blocks replicated by straggler catch-up.
    pub fn catchup_blocks(&self) -> u64 {
        self.shared.catchup_blocks.get()
    }

    /// Crash acceptor `idx`: it stops responding but keeps its state.
    pub fn kill_acceptor(&self, idx: usize) {
        self.shared.acceptors[idx].kill();
    }

    /// Restart acceptor `idx` and synchronously stream it forward to the
    /// current head (holding the write gate so the head stands still).
    /// Requires an elected proposer.
    pub fn reconnect_acceptor(&self, idx: usize) -> Result<Lsn> {
        let _gate = self.write_gate.lock();
        let (term, history, head, elected) = {
            let st = self.state.lock();
            (st.term, Arc::clone(&st.history), st.head, st.elected)
        };
        if !elected {
            return Err(Error::InvalidState("reconnect before any campaign".into()));
        }
        self.shared.acceptors[idx].restart();
        self.shared.catch_up(idx, head, term, &history)
    }

    /// Campaign for leadership: bump the term past everything observed,
    /// collect a majority of votes, adopt the donor's position, announce
    /// the election, and catch stragglers up to the start LSN. Returns
    /// the LSN new appends must start at.
    pub fn campaign(&self) -> Result<Lsn> {
        let _gate = self.write_gate.lock();
        let mut st = self.state.lock();
        let n = self.config.acceptors;
        let need = self.config.required();
        // Start above both our own last term and anything ever observed.
        let mut seen: Term = st.term;
        for attempt in 0..8 {
            let term = seen + 1 + attempt as Term;
            let mut votes: Vec<(usize, VoteResp)> = Vec::with_capacity(n);
            for (i, acc) in self.shared.acceptors.iter().enumerate() {
                match self.shared.check_fault(sites::LZ_QUORUM_VOTE, None) {
                    Some(FaultOutcome::Crash) => {
                        acc.kill();
                        continue;
                    }
                    Some(_) => continue, // vote request or reply lost
                    None => {}
                }
                if let Some(v) = acc.vote(term) {
                    seen = seen.max(v.term);
                    if v.granted {
                        votes.push((i, v));
                    }
                }
            }
            if votes.len() < need {
                continue;
            }
            let donor = &votes[choose_donor(&votes)].1;
            let start = donor.flush;
            let history = Arc::new(donor.history.with_switch(term, start));
            // Announce; count acceptors already at (or truncated back to
            // at most) the start position, catching up any straggler.
            let mut synced = 0usize;
            for (i, acc) in self.shared.acceptors.iter().enumerate() {
                let flush = match acc.elected(term, &history) {
                    Some(resp) if resp.accepted => resp.flush,
                    _ => continue,
                };
                if flush >= start || self.shared.catch_up(i, start, term, &history).is_ok() {
                    synced += 1;
                }
            }
            if synced < need {
                continue;
            }
            st.term = term;
            st.history = history;
            st.head = start;
            st.elected = true;
            // Adopt the readable window floor: the oldest LSN a live
            // acceptor still retains. Matters when the proposer mounts
            // existing acceptors mid-stream (tail would otherwise sit at
            // zero and the capacity window would look exhausted). Never
            // regresses — destage is monotone.
            let floor = self
                .shared
                .acceptors
                .iter()
                .filter(|a| a.is_up())
                .map(|a| a.base())
                .min()
                .unwrap_or(start);
            st.tail = st.tail.max(floor.min(start));
            // ordering: relaxed — monitoring mirror
            self.tail_pub.store(st.tail.offset(), Ordering::Relaxed);
            // Quorum intersection guarantees start >= every committed
            // LSN; advance (never regress) the public watermark.
            self.commit.advance_to(start);
            // ordering: relaxed — monitoring mirror
            self.term_pub.store(term, Ordering::Relaxed);
            self.deposed.store(false, Ordering::Relaxed); // ordering: relaxed — see is_deposed
            self.metrics.elections.incr();
            return Ok(start);
        }
        Err(Error::Unavailable("campaign failed: no quorum of votes after 8 attempts".into()))
    }

    /// Durably append `block`, which must start exactly at the head.
    /// Returns once `ack_required` acceptors have flushed it.
    pub fn write_block(&self, block: &LogBlock) -> Result<()> {
        if self.is_deposed() {
            return Err(Error::InvalidState(
                "quorum log deposed by a newer term; recover() to re-campaign".into(),
            ));
        }
        let _gate = self.write_gate.lock();
        let (term, history) = {
            let st = self.state.lock();
            if !st.elected {
                return Err(Error::InvalidState(
                    "quorum log has no elected proposer; recover() first".into(),
                ));
            }
            if block.start_lsn() != st.head {
                return Err(Error::InvalidArgument(format!(
                    "block starts at {} but quorum head is {}",
                    block.start_lsn(),
                    st.head
                )));
            }
            let len = block.len() as u64;
            if len > self.config.capacity {
                return Err(Error::InvalidArgument(format!(
                    "block of {len} bytes exceeds quorum capacity {}",
                    self.config.capacity
                )));
            }
            if (st.head - st.tail) + len > self.config.capacity {
                return Err(Error::Unavailable(
                    "quorum log full; destaging has not caught up".into(),
                ));
            }
            (st.term, Arc::clone(&st.history))
        };
        let end = block.end_lsn();
        let (ack_tx, ack_rx) = mpsc::channel();
        for w in &self.workers {
            let _ = w.send(Job {
                proposer_term: term,
                entry_term: term,
                history: Arc::clone(&history),
                block: block.clone(),
                ack: ack_tx.clone(),
            });
        }
        drop(ack_tx);
        let n = self.config.acceptors;
        let need = self.config.required();
        let mut acks = 0usize;
        let mut failures = 0usize;
        let mut newer: Term = 0;
        while acks < need && failures <= n - need {
            match ack_rx.recv() {
                Ok(ack) => {
                    // An ack lost on the way back: the acceptor flushed,
                    // but the proposer cannot count it.
                    if self.shared.check_fault(sites::LZ_QUORUM_ACK, Some(end)).is_some() {
                        failures += 1;
                        continue;
                    }
                    if ack.ok && ack.flush >= end {
                        acks += 1;
                    } else {
                        failures += 1;
                        newer = newer.max(ack.observed_term);
                    }
                }
                Err(_) => break, // all workers reported
            }
        }
        if acks < need {
            self.metrics.commit_stalls.incr();
            if newer > term {
                // ordering: relaxed — see is_deposed
                self.deposed.store(true, Ordering::Relaxed);
                return Err(Error::InvalidState(format!(
                    "quorum log deposed: acceptor reported term {newer} > ours {term}"
                )));
            }
            return Err(Error::Unavailable(format!(
                "quorum append failed: {acks}/{need} acks ({failures} acceptors failed)"
            )));
        }
        let mut st = self.state.lock();
        st.head = end;
        self.commit.advance_to(end);
        self.metrics.appends.incr();
        Ok(())
    }

    /// Read the block at `lsn` from whichever acceptor retains it.
    pub fn read_block(&self, lsn: Lsn) -> Result<LogBlock> {
        {
            let st = self.state.lock();
            if lsn < st.tail || lsn >= st.head {
                return Err(Error::NotFound(format!(
                    "LSN {lsn} outside quorum window [{}, {})",
                    st.tail, st.head
                )));
            }
        }
        for acc in &self.shared.acceptors {
            if let Some(b) = acc.read_block(lsn) {
                return Ok(b);
            }
        }
        Err(Error::Unavailable(format!("no live acceptor retains the block at {lsn}")))
    }

    /// Register the tier's metrics: per-acceptor gauges under
    /// `NodeId::acceptor(i)` and quorum-wide series under `owner` (the
    /// node that owns the log — XLOG in the fabric wiring, which
    /// conveniently survives compute failover).
    pub fn register_metrics(self: &Arc<Self>, hub: &MetricsHub, owner: NodeId) {
        for acc in &self.shared.acceptors {
            let node = NodeId::acceptor(acc.id() as u32);
            let a = Arc::clone(acc);
            hub.register_gauge_fn(node, "acceptor_flush_lsn", move || {
                a.flush_lsn().offset() as i64
            });
            let a = Arc::clone(acc);
            hub.register_gauge_fn(node, "acceptor_term", move || a.term() as i64);
            let a = Arc::clone(acc);
            hub.register_gauge_fn(node, "acceptor_up", move || a.is_up() as i64);
            let a = Arc::clone(acc);
            let log = Arc::clone(self);
            hub.register_gauge_fn(node, "acceptor_flush_lag_bytes", move || {
                let commit = log.commit_lsn().offset();
                commit.saturating_sub(a.flush_lsn().offset()) as i64
            });
        }
        let log = Arc::clone(self);
        hub.register_gauge_fn(owner, "quorum_commit_lsn", move || log.commit_lsn().offset() as i64);
        let log = Arc::clone(self);
        hub.register_gauge_fn(owner, "quorum_term", move || log.term() as i64);
        let log = Arc::clone(self);
        hub.register_counter_fn(owner, "quorum_elections_total", move || {
            log.metrics.elections.get()
        });
        let log = Arc::clone(self);
        hub.register_counter_fn(owner, "quorum_commit_stalls_total", move || {
            log.metrics.commit_stalls.get()
        });
        let log = Arc::clone(self);
        hub.register_counter_fn(owner, "quorum_catchup_blocks_total", move || {
            log.shared.catchup_blocks.get()
        });
    }
}

impl BlockSink for QuorumLog {
    fn harden(&self, block: &LogBlock) -> Result<()> {
        self.write_block(block)
    }
}

impl LogStore for QuorumLog {
    fn head(&self) -> Lsn {
        self.state.lock().head
    }

    fn tail(&self) -> Lsn {
        self.state.lock().tail
    }

    fn free_bytes(&self) -> u64 {
        let st = self.state.lock();
        self.config.capacity - (st.head - st.tail)
    }

    fn read_block(&self, lsn: Lsn) -> Result<LogBlock> {
        QuorumLog::read_block(self, lsn)
    }

    fn truncate_to(&self, lsn: Lsn) {
        let mut st = self.state.lock();
        let to = lsn.min(st.head).max(st.tail);
        st.tail = to;
        // ordering: relaxed — monitoring mirror
        self.tail_pub.store(to.offset(), Ordering::Relaxed);
        drop(st);
        for acc in &self.shared.acceptors {
            acc.truncate_to(to);
        }
    }

    fn scan_from(&self, from: Lsn, f: &mut dyn FnMut(LogBlock) -> bool) -> Result<()> {
        let (mut cur, head) = {
            let st = self.state.lock();
            (from.max(st.tail), st.head)
        };
        while cur < head {
            let block = QuorumLog::read_block(self, cur)?;
            let end = block.end_lsn();
            if !f(block) {
                break;
            }
            cur = end;
        }
        Ok(())
    }

    fn set_fault_registry(&self, faults: FaultRegistry) {
        QuorumLog::set_fault_registry(self, faults)
    }

    fn recover(&self) -> Result<Lsn> {
        self.campaign()
    }
}

impl Drop for QuorumLog {
    fn drop(&mut self) {
        // Closing the job channels lets the workers drain and exit.
        self.workers.clear();
        for h in self.worker_handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// The per-acceptor worker: applies `lz.quorum.append` faults, retries
/// around election announcements, and runs catch-up on gap rejections.
fn acceptor_worker(shared: &Shared, idx: usize, rx: &mpsc::Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        let acc = &shared.acceptors[idx];
        let fault = shared.check_fault(sites::LZ_QUORUM_APPEND, Some(job.block.start_lsn()));
        let ack = match fault {
            Some(FaultOutcome::Crash) => {
                acc.kill();
                Ack { ok: false, flush: acc.flush_lsn(), observed_term: 0 }
            }
            Some(_) => Ack { ok: false, flush: acc.flush_lsn(), observed_term: 0 },
            None => run_append(shared, idx, &job),
        };
        let _ = job.ack.send(ack);
    }
}

fn run_append(shared: &Shared, idx: usize, job: &Job) -> Ack {
    let acc = &shared.acceptors[idx];
    // Bounded retry: each pass either succeeds, makes progress (election
    // processed, gap backfilled), or fails for good.
    for _ in 0..6 {
        match acc.append(job.proposer_term, job.entry_term, &job.block) {
            None => break, // down
            Some(AppendVerdict::Appended) | Some(AppendVerdict::Duplicate) => {
                return Ack { ok: true, flush: acc.flush_lsn(), observed_term: 0 };
            }
            Some(AppendVerdict::NotElected) => {
                // The acceptor missed (or restarted past) the election
                // announcement; re-send it and retry.
                if acc.elected(job.proposer_term, &job.history).is_none() {
                    break;
                }
            }
            Some(AppendVerdict::Gap { flush }) => {
                match shared.catch_up(idx, job.block.start_lsn(), job.proposer_term, &job.history) {
                    Ok(f) if f > flush => {} // progress; retry the append
                    _ => break,
                }
            }
            Some(AppendVerdict::Stale { term }) => {
                return Ack { ok: false, flush: acc.flush_lsn(), observed_term: term };
            }
        }
    }
    Ack { ok: false, flush: acc.flush_lsn(), observed_term: 0 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockBuilder;
    use crate::record::{LogPayload, LogRecord};
    use socrates_common::fault::{FaultAction, FaultRule, FaultSchedule};
    use socrates_common::latency::LatencyModel;
    use socrates_common::{PageId, PartitionId, TxnId};

    fn block_at(start: Lsn, payload_len: usize) -> LogBlock {
        let mut b = BlockBuilder::new(start, 1 << 16);
        b.append(
            &LogRecord {
                txn: TxnId::new(1),
                payload: LogPayload::PageWrite {
                    page_id: PageId::new(1),
                    op: vec![0xAB; payload_len],
                },
            },
            Some(PartitionId::new(0)),
        );
        b.seal()
    }

    fn quorum(n: usize, ack: usize) -> Arc<QuorumLog> {
        Arc::new(QuorumLog::new(
            QuorumConfig { acceptors: n, ack_required: ack, capacity: 1 << 20 },
            |_| None,
        ))
    }

    fn fill(q: &QuorumLog, mut start: Lsn, blocks: usize) -> Lsn {
        for _ in 0..blocks {
            let b = block_at(start, 120);
            q.write_block(&b).unwrap();
            start = b.end_lsn();
        }
        start
    }

    #[test]
    fn three_acceptor_write_read_chain() {
        let q = quorum(3, 0);
        let start = q.recover().unwrap();
        assert_eq!(start, Lsn::ZERO);
        assert_eq!(q.term(), 1);
        let b1 = block_at(Lsn::ZERO, 100);
        q.write_block(&b1).unwrap();
        let b2 = block_at(b1.end_lsn(), 200);
        q.write_block(&b2).unwrap();
        assert_eq!(LogStore::head(&*q), b2.end_lsn());
        assert_eq!(q.commit_lsn(), b2.end_lsn());
        assert_eq!(QuorumLog::read_block(&q, Lsn::ZERO).unwrap(), b1);
        assert_eq!(QuorumLog::read_block(&q, b1.end_lsn()).unwrap(), b2);
        // All three acceptors converge (no faults in play). The write
        // returns at quorum — two acks — so the third acceptor's worker
        // may still be flushing; give it a bounded moment.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        for acc in q.acceptors() {
            while acc.flush_lsn() < b2.end_lsn() && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
            assert_eq!(acc.flush_lsn(), b2.end_lsn());
        }
    }

    #[test]
    fn writes_require_election() {
        let q = quorum(3, 0);
        let err = q.write_block(&block_at(Lsn::ZERO, 10)).unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)), "unexpected: {err}");
    }

    #[test]
    fn single_acceptor_mode_is_classic_lz() {
        let q = quorum(1, 0);
        q.recover().unwrap();
        let end = fill(&q, Lsn::ZERO, 3);
        assert_eq!(q.commit_lsn(), end);
        // Gap and duplicate rejection as before.
        assert!(q.write_block(&block_at(end + 500, 10)).is_err());
    }

    #[test]
    fn kill_one_acceptor_keeps_committing_then_rejoin_catches_up() {
        let q = quorum(3, 0);
        q.recover().unwrap();
        let mid = fill(&q, Lsn::ZERO, 2);
        q.kill_acceptor(2);
        let end = fill(&q, mid, 4);
        assert_eq!(q.commit_lsn(), end, "majority keeps committing through single loss");
        assert!(q.acceptors()[2].flush_lsn() < end);
        // Rejoin: streamed forward block by block from the survivors.
        let flushed = q.reconnect_acceptor(2).unwrap();
        assert_eq!(flushed, end);
        assert_eq!(q.acceptors()[2].flush_lsn(), end);
        assert!(q.catchup_blocks() >= 4);
        // The recovered range is served by the rejoined acceptor itself.
        assert!(q.acceptors()[2].read_block(mid).is_some());
        // And the quorum keeps writing.
        fill(&q, end, 1);
    }

    #[test]
    fn catch_up_converges_under_append_latency_fault() {
        // Satellite: a lagging acceptor must converge to the quorum flush
        // LSN even when every (re)append is slowed by an injected
        // lz.quorum.append latency fault, and must then serve reads for
        // its recovered range.
        let q = quorum(3, 0);
        q.recover().unwrap();
        q.kill_acceptor(1);
        let end = fill(&q, Lsn::ZERO, 5);
        let faults = FaultRegistry::new(7);
        faults.install(FaultRule {
            site: sites::LZ_QUORUM_APPEND.into(),
            schedule: FaultSchedule::Always,
            action: FaultAction::Latency(LatencyModel::fixed(200)),
        });
        q.set_fault_registry(faults);
        let flushed = q.reconnect_acceptor(1).unwrap();
        assert_eq!(flushed, end);
        assert_eq!(q.acceptors()[1].flush_lsn(), end);
        assert!(q.acceptors()[1].read_block(Lsn::ZERO).is_some());
        // Latency-only faults never cost correctness: writes still work.
        fill(&q, end, 1);
    }

    #[test]
    fn rejoin_fast_forwards_past_destaged_range() {
        let q = quorum(3, 0);
        q.recover().unwrap();
        q.kill_acceptor(0);
        let mid = fill(&q, Lsn::ZERO, 3);
        // Destage everything the laggard is missing out of the survivors.
        LogStore::truncate_to(&*q, mid);
        let end = fill(&q, mid, 2);
        let flushed = q.reconnect_acceptor(0).unwrap();
        assert_eq!(flushed, end);
        // The laggard skipped the destaged range: its base moved forward.
        assert!(q.acceptors()[0].base() >= mid);
        assert_eq!(q.acceptors()[0].flush_lsn(), end);
    }

    #[test]
    fn losing_quorum_stalls_then_rejoin_restores_service() {
        let q = quorum(3, 0);
        q.recover().unwrap();
        let end = fill(&q, Lsn::ZERO, 1);
        q.kill_acceptor(0);
        q.kill_acceptor(1);
        let stalled = block_at(end, 50);
        let err = q.write_block(&stalled).unwrap_err();
        assert!(err.is_transient(), "quorum loss must be retryable: {err}");
        assert_eq!(q.commit_lsn(), end, "watermark holds through the stall");
        q.reconnect_acceptor(0).unwrap();
        // The surviving acceptor flushed the stalled block, so the retry
        // must offer the same bytes (the pipeline retries blocks as-is);
        // it dedups there and completes the quorum via the rejoined node.
        q.write_block(&stalled).unwrap();
        assert_eq!(q.commit_lsn(), stalled.end_lsn());
    }

    #[test]
    fn restarted_proposer_campaigns_at_higher_term_and_deposes_old() {
        let q1 = quorum(3, 0);
        q1.recover().unwrap();
        assert_eq!(q1.term(), 1);
        let end = fill(&q1, Lsn::ZERO, 3);
        // "Restart": a second proposer mounts the same acceptors.
        let acceptors = q1.acceptors().to_vec();
        let q2 = Arc::new(QuorumLog::with_acceptors(
            acceptors,
            QuorumConfig { acceptors: 3, ack_required: 0, capacity: 1 << 20 },
        ));
        let start = q2.recover().unwrap();
        assert_eq!(start, end, "new term starts at the donor's flush LSN");
        assert!(q2.term() > q1.term());
        // The old proposer is fenced out on its next write.
        let err = q1.write_block(&block_at(end, 50)).unwrap_err();
        assert!(matches!(err, Error::InvalidState(_)), "unexpected: {err}");
        assert!(q1.is_deposed());
        // The new proposer owns the stream.
        fill(&q2, start, 2);
    }

    #[test]
    fn dropped_votes_fail_campaign_until_cleared() {
        let q = quorum(3, 0);
        let faults = FaultRegistry::new(3);
        faults.install(FaultRule {
            site: sites::LZ_QUORUM_VOTE.into(),
            schedule: FaultSchedule::Always,
            action: FaultAction::Drop,
        });
        q.set_fault_registry(faults);
        let err = q.recover().unwrap_err();
        assert!(err.is_transient(), "vote loss must be retryable: {err}");
        q.set_fault_registry(FaultRegistry::disabled());
        q.recover().unwrap();
        fill(&q, Lsn::ZERO, 1);
    }

    #[test]
    fn lost_acks_stall_commit_but_acceptors_flushed() {
        let q = quorum(3, 0);
        q.recover().unwrap();
        let faults = FaultRegistry::new(5);
        faults.install(FaultRule {
            site: sites::LZ_QUORUM_ACK.into(),
            schedule: FaultSchedule::Always,
            action: FaultAction::Drop,
        });
        q.set_fault_registry(faults);
        let b = block_at(Lsn::ZERO, 80);
        let err = q.write_block(&b).unwrap_err();
        assert!(err.is_transient(), "ack loss must be retryable: {err}");
        // The acceptors flushed it; only the proposer could not count it.
        assert!(q.acceptors().iter().filter(|a| a.flush_lsn() >= b.end_lsn()).count() >= 2);
        // Retrying with acks flowing again commits idempotently.
        q.set_fault_registry(FaultRegistry::disabled());
        q.write_block(&b).unwrap();
        assert_eq!(q.commit_lsn(), b.end_lsn());
    }

    #[test]
    fn scan_from_walks_the_window() {
        let q = quorum(3, 0);
        q.recover().unwrap();
        let end = fill(&q, Lsn::ZERO, 4);
        let mut seen = 0;
        let mut cursor = Lsn::ZERO;
        LogStore::scan_from(&*q, Lsn::ZERO, &mut |b| {
            assert_eq!(b.start_lsn(), cursor);
            cursor = b.end_lsn();
            seen += 1;
            true
        })
        .unwrap();
        assert_eq!(cursor, end);
        assert_eq!(seen, 4);
    }

    #[test]
    fn backpressure_when_capacity_exhausted() {
        let q = Arc::new(QuorumLog::new(
            QuorumConfig { acceptors: 3, ack_required: 0, capacity: 600 },
            |_| None,
        ));
        q.recover().unwrap();
        let b1 = block_at(Lsn::ZERO, 300);
        q.write_block(&b1).unwrap();
        let b2 = block_at(b1.end_lsn(), 300);
        let err = q.write_block(&b2).unwrap_err();
        assert!(err.is_transient(), "full log must be retryable: {err}");
        LogStore::truncate_to(&*q, b1.end_lsn());
        q.write_block(&b2).unwrap();
    }
}

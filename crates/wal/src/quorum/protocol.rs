//! The pure quorum-acceptance protocol core (no I/O, no threads, no clock).
//!
//! This module holds the *decision logic* of the safekeeper-style WAL
//! acceptance protocol — terms, vote grants, divergent-tail truncation,
//! and the append accept/duplicate/gap verdicts — as plain state machines
//! over `(term, history, entries)`. Both halves of the tier are built on
//! it:
//!
//! * the live [`crate::quorum::Acceptor`] wraps an [`AcceptorCore`] and
//!   mirrors accepted entries into real block storage;
//! * the deterministic simulator ([`crate::quorum::sim`]) drives the same
//!   cores through randomized message interleavings and checks the
//!   protocol invariants after every step.
//!
//! Keeping the decisions pure is what makes the simulator's coverage
//! meaningful: an interleaving the simulator proves safe is exercising
//! the identical accept/reject/truncate code the live tier runs.
//!
//! ## The protocol in five rules
//!
//! 1. **Terms.** A proposer campaigns with a term strictly greater than
//!    any it has seen; an acceptor grants a vote iff the requested term
//!    is strictly greater than its own (so two proposers can never both
//!    win the same term), and adopts the term when granting.
//! 2. **Commit rule.** The proposer appends each block to every acceptor
//!    and declares it committed once `ack_required` acceptors (majority
//!    by default) report it flushed. The committed watermark never
//!    regresses.
//! 3. **Election start.** A new proposer collects votes from a majority
//!    and picks the *donor*: the voter with the greatest
//!    `(last_log_term, flush)`. The donor's flush LSN becomes the new
//!    term's start position. Because the donor is drawn from a majority,
//!    quorum intersection guarantees `start >= ` every previously
//!    committed LSN.
//! 4. **Truncation.** Each acceptor keeps a [`TermHistory`] — which term
//!    owns which LSN range. On `ProposerElected` it compares its history
//!    with the proposer's, finds the divergence point, and truncates any
//!    flushed entries beyond it. Only uncommitted bytes can diverge
//!    (rule 3), so truncation never loses committed data.
//! 5. **Catch-up.** An acceptor whose flush trails the stream gap-rejects
//!    appends with its flush LSN; the proposer backfills the missing
//!    range from a peer that has it, tagging each entry with the term
//!    that originally wrote it (so histories stay accurate).

use socrates_common::Lsn;

/// A proposer term (the protocol's ballot/epoch number). Term 0 is
/// reserved for "never voted".
pub type Term = u64;

/// One term switch: `term` owns the log from `start` until the next
/// switch (or the end of the log).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TermSwitch {
    /// The term that owns the range.
    pub term: Term,
    /// First LSN the term wrote.
    pub start: Lsn,
}

/// Which term wrote which part of the log — the acceptor-side record
/// that makes divergent-tail truncation precise (rule 4 above).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct TermHistory {
    switches: Vec<TermSwitch>,
}

impl TermHistory {
    /// An empty history (nothing flushed yet).
    pub fn new() -> TermHistory {
        TermHistory { switches: Vec::new() }
    }

    /// The recorded switches, in increasing `(term, start)` order.
    pub fn switches(&self) -> &[TermSwitch] {
        &self.switches
    }

    /// The term owning the log tail (0 when nothing was ever flushed).
    pub fn last_term(&self) -> Term {
        self.switches.last().map(|s| s.term).unwrap_or(0)
    }

    /// Record that `term` owns the log from `start` onward. Terms must
    /// arrive in increasing order; a repeat of the current term is a
    /// no-op.
    pub fn note(&mut self, term: Term, start: Lsn) {
        if let Some(last) = self.switches.last() {
            if term == last.term {
                return;
            }
            assert!(
                term > last.term && start >= last.start,
                "term history must be monotone: ({term},{start}) after ({},{})",
                last.term,
                last.start
            );
        }
        self.switches.push(TermSwitch { term, start });
    }

    /// Drop ownership records for `lsn` and beyond (the log was truncated
    /// back to `lsn`). The switch *covering* `lsn` survives.
    pub fn rewind_to(&mut self, lsn: Lsn) {
        self.switches.retain(|s| s.start < lsn);
    }

    /// A copy of this history with ownership beyond `lsn` dropped.
    pub fn up_to(&self, lsn: Lsn) -> TermHistory {
        let mut h = self.clone();
        h.rewind_to(lsn);
        h
    }

    /// A copy of this history extended with a new term starting at
    /// `start` — what a freshly elected proposer announces (rule 3).
    pub fn with_switch(&self, term: Term, start: Lsn) -> TermHistory {
        let mut h = self.up_to(start);
        h.note(term, start);
        h
    }

    /// The first LSN where `self` and `other` disagree about term
    /// ownership, or `None` when they agree everywhere both are defined.
    ///
    /// Log contents below the divergence point are guaranteed identical
    /// (same term wrote them, and a term has a single proposer writing a
    /// single sequence); contents at or beyond it may conflict and must
    /// be truncated by whichever side defers (rule 4).
    pub fn divergence_from(&self, other: &TermHistory) -> Option<Lsn> {
        let a = &self.switches;
        let b = &other.switches;
        let mut i = 0;
        while i < a.len() && i < b.len() && a[i] == b[i] {
            i += 1;
        }
        match (a.get(i), b.get(i)) {
            (None, None) => None,
            (Some(s), None) | (None, Some(s)) => Some(s.start),
            (Some(sa), Some(sb)) => Some(sa.start.min(sb.start)),
        }
    }
}

/// One flushed log entry as the protocol core sees it: an LSN range, the
/// term that wrote it, and an opaque payload fingerprint (the live tier
/// stores a block checksum; the simulator stores a unique record id so
/// invariant checks can detect conflicting contents).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Entry {
    /// First LSN of the entry.
    pub start: Lsn,
    /// One past the last LSN of the entry.
    pub end: Lsn,
    /// The term whose proposer originally wrote the entry.
    pub term: Term,
    /// Content fingerprint (checksum or simulator record id).
    pub payload: u64,
}

/// Outcome of an acceptor voting on a campaign (rule 1 + the donor
/// inputs for rule 3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VoteResp {
    /// The acceptor's term after processing the request.
    pub term: Term,
    /// Whether the vote was granted (requested term was newer).
    pub granted: bool,
    /// The acceptor's flush LSN (donor candidate position).
    pub flush: Lsn,
    /// Term owning the acceptor's log tail.
    pub last_log_term: Term,
    /// The acceptor's full term history (for divergence checks).
    pub history: TermHistory,
}

/// Outcome of delivering a `ProposerElected` announcement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElectedResp {
    /// The acceptor's term after processing.
    pub term: Term,
    /// Whether the announcement was accepted (term was current).
    pub accepted: bool,
    /// The acceptor's flush LSN after any divergent-tail truncation.
    pub flush: Lsn,
}

/// Outcome of offering one entry to an acceptor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppendVerdict {
    /// Accepted and flushed at the tail.
    Appended,
    /// Entirely at or below the flush LSN — already flushed, idempotent.
    Duplicate,
    /// The entry does not start at the flush LSN; the acceptor needs
    /// catch-up from `flush` (rule 5).
    Gap {
        /// The acceptor's flush LSN (where backfill must start).
        flush: Lsn,
    },
    /// The acceptor has not processed this term's `ProposerElected`
    /// announcement (it may hold an untruncated divergent tail), so it
    /// refuses the append until the proposer re-sends the announcement.
    NotElected,
    /// The proposing term is older than the acceptor's — the proposer
    /// has been superseded and must stop.
    Stale {
        /// The acceptor's (newer) term.
        term: Term,
    },
}

/// The pure per-acceptor protocol state: promised term, term history,
/// and the flushed entry sequence. Durable across crashes (a crashed
/// acceptor stops responding but does not forget).
#[derive(Clone, Debug)]
pub struct AcceptorCore {
    term: Term,
    /// The highest term whose `ProposerElected` this acceptor processed
    /// (the "epoch"). Appends are only accepted from that exact term:
    /// granting a vote adopts `term` but does *not* truncate divergence,
    /// so an acceptor must see the election announcement before it may
    /// extend its log for the new proposer.
    elected_term: Term,
    history: TermHistory,
    /// Flushed entries, contiguous: `entries[i].end == entries[i+1].start`.
    entries: Vec<Entry>,
    /// Oldest retained LSN (the truncate horizon). Entries below it have
    /// been destaged and dropped; `entries[0].start == base` when any
    /// entries remain.
    base: Lsn,
}

impl AcceptorCore {
    /// A fresh acceptor whose log starts at `base`.
    pub fn new(base: Lsn) -> AcceptorCore {
        AcceptorCore {
            term: 0,
            elected_term: 0,
            history: TermHistory::new(),
            entries: Vec::new(),
            base,
        }
    }

    /// The acceptor's promised term.
    pub fn term(&self) -> Term {
        self.term
    }

    /// The highest term whose election announcement was processed.
    pub fn elected_term(&self) -> Term {
        self.elected_term
    }

    /// The flush LSN: everything below it is durably held (or destaged).
    pub fn flush(&self) -> Lsn {
        self.entries.last().map(|e| e.end).unwrap_or(self.base)
    }

    /// The truncate horizon (oldest retained LSN).
    pub fn base(&self) -> Lsn {
        self.base
    }

    /// Term owning the log tail (0 for an empty log).
    pub fn last_log_term(&self) -> Term {
        self.history.last_term()
    }

    /// The acceptor's term-ownership record.
    pub fn history(&self) -> &TermHistory {
        &self.history
    }

    /// Retained flushed entries in LSN order.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The retained entry starting at exactly `lsn`, if present.
    pub fn entry_at(&self, lsn: Lsn) -> Option<&Entry> {
        self.entries.binary_search_by(|e| e.start.cmp(&lsn)).ok().map(|i| &self.entries[i])
    }

    /// Rule 1: grant iff the requested term is strictly newer, adopting
    /// it so no other proposer can win the same term from this acceptor.
    pub fn handle_vote(&mut self, req_term: Term) -> VoteResp {
        let granted = req_term > self.term;
        if granted {
            self.term = req_term;
        }
        VoteResp {
            term: self.term,
            granted,
            flush: self.flush(),
            last_log_term: self.last_log_term(),
            history: self.history.clone(),
        }
    }

    /// Rule 4: adopt the elected proposer's term and truncate any flushed
    /// tail that diverges from the announced term history.
    pub fn handle_elected(&mut self, req_term: Term, history: &TermHistory) -> ElectedResp {
        if req_term < self.term {
            return ElectedResp { term: self.term, accepted: false, flush: self.flush() };
        }
        self.term = req_term;
        self.elected_term = req_term;
        if let Some(d) = self.history.divergence_from(history) {
            if d < self.flush() {
                // Drop every entry extending past the divergence point.
                // `d` is always an entry boundary of the shared prefix
                // (term switches start on block boundaries), so no entry
                // straddles it; retain-by-end is exact. The ownership
                // record is rewound to the surviving flush LSN — no
                // switch may claim bytes that are no longer flushed.
                self.entries.retain(|e| e.end <= d);
                self.history.rewind_to(self.flush().max(self.base));
            }
        }
        ElectedResp { term: self.term, accepted: true, flush: self.flush() }
    }

    /// Rules 2/5: accept an entry at the flush LSN, treat fully-flushed
    /// ranges as idempotent duplicates, and gap-reject anything else with
    /// the flush LSN so the proposer can backfill.
    pub fn handle_append(&mut self, proposer_term: Term, entry: Entry) -> AppendVerdict {
        if proposer_term < self.term {
            return AppendVerdict::Stale { term: self.term };
        }
        if proposer_term != self.elected_term {
            // The proposer is current (or newer than anything we have
            // promised) but we have not processed its election: our tail
            // may diverge from its history, so appending would splice
            // onto garbage. Make it announce itself first.
            return AppendVerdict::NotElected;
        }
        let flush = self.flush();
        if entry.end <= flush {
            return AppendVerdict::Duplicate;
        }
        if entry.start != flush {
            return AppendVerdict::Gap { flush };
        }
        debug_assert!(
            entry.term >= self.history.last_term(),
            "entry term {} regresses below log tail term {}",
            entry.term,
            self.history.last_term()
        );
        self.history.note(entry.term, entry.start);
        self.entries.push(entry);
        AppendVerdict::Appended
    }

    /// Destage trim: drop retained entries wholly below `lsn` and raise
    /// the base. Never moves backward or past the flush LSN.
    pub fn truncate_base(&mut self, lsn: Lsn) {
        let new_base = lsn.min(self.flush()).max(self.base);
        self.entries.retain(|e| e.end > new_base);
        self.base = new_base;
    }

    /// Reseed an acceptor so far behind that its missing range was
    /// already destaged out of every peer: drop the stale log and restart
    /// at `to`, adopting the proposer's term history for the skipped
    /// range (the bytes below `to` are durable in long-term storage, not
    /// here).
    pub fn fast_forward(&mut self, to: Lsn, history: &TermHistory) {
        if to <= self.flush() {
            return;
        }
        self.entries.clear();
        self.base = to;
        self.history = history.up_to(to);
    }
}

/// Rule 3: pick the donor among granted votes — greatest
/// `(last_log_term, flush)` — returning an index into `votes`.
/// Panics if `votes` is empty.
pub fn choose_donor(votes: &[(usize, VoteResp)]) -> usize {
    assert!(!votes.is_empty(), "choose_donor needs at least one granted vote");
    let mut best = 0;
    for (i, (_, v)) in votes.iter().enumerate() {
        let b = &votes[best].1;
        if (v.last_log_term, v.flush) > (b.last_log_term, b.flush) {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lsn(v: u64) -> Lsn {
        Lsn::new(v)
    }

    fn entry(start: u64, end: u64, term: Term, payload: u64) -> Entry {
        Entry { start: lsn(start), end: lsn(end), term, payload }
    }

    #[test]
    fn votes_grant_strictly_newer_terms_once() {
        let mut a = AcceptorCore::new(Lsn::ZERO);
        assert!(a.handle_vote(1).granted);
        // Same term again: somebody else campaigning at 1 must lose.
        assert!(!a.handle_vote(1).granted);
        assert!(!a.handle_vote(0).granted);
        assert!(a.handle_vote(3).granted);
        assert_eq!(a.term(), 3);
    }

    #[test]
    fn appends_require_the_election_announcement() {
        let mut a = AcceptorCore::new(Lsn::ZERO);
        a.handle_vote(1);
        // Voting adopts the term but does not authorize appends: the
        // divergence check only happens in handle_elected.
        assert_eq!(a.handle_append(1, entry(0, 10, 1, 7)), AppendVerdict::NotElected);
        a.handle_elected(1, &TermHistory::new().with_switch(1, Lsn::ZERO));
        assert_eq!(a.handle_append(1, entry(0, 10, 1, 7)), AppendVerdict::Appended);
    }

    #[test]
    fn appends_advance_flush_and_history() {
        let mut a = AcceptorCore::new(Lsn::ZERO);
        a.handle_vote(1);
        a.handle_elected(1, &TermHistory::new().with_switch(1, Lsn::ZERO));
        assert_eq!(a.handle_append(1, entry(0, 10, 1, 7)), AppendVerdict::Appended);
        assert_eq!(a.handle_append(1, entry(10, 30, 1, 8)), AppendVerdict::Appended);
        assert_eq!(a.flush(), lsn(30));
        assert_eq!(a.last_log_term(), 1);
        assert_eq!(a.history().switches(), &[TermSwitch { term: 1, start: Lsn::ZERO }]);
        // Duplicate is idempotent; gap reports the flush LSN.
        assert_eq!(a.handle_append(1, entry(10, 30, 1, 8)), AppendVerdict::Duplicate);
        assert_eq!(a.handle_append(1, entry(50, 60, 1, 9)), AppendVerdict::Gap { flush: lsn(30) });
        // A deposed proposer is told the newer term.
        a.handle_vote(5);
        assert_eq!(a.handle_append(1, entry(30, 40, 1, 10)), AppendVerdict::Stale { term: 5 });
    }

    #[test]
    fn elected_truncates_divergent_tail_only() {
        // Acceptor flushed [0,10) in term 1 then a divergent [10,40) in
        // term 2 that never committed. The term-3 proposer's history says
        // term 2 never happened here: term 1 owned up to 10 and term 3
        // starts at 10.
        let mut a = AcceptorCore::new(Lsn::ZERO);
        a.handle_elected(1, &TermHistory::new().with_switch(1, Lsn::ZERO));
        a.handle_append(1, entry(0, 10, 1, 1));
        a.handle_elected(2, &a.history().clone().with_switch(2, lsn(10)));
        a.handle_append(2, entry(10, 40, 2, 2));
        assert_eq!(a.flush(), lsn(40));

        let mut theirs = TermHistory::new();
        theirs.note(1, Lsn::ZERO);
        let theirs = theirs.with_switch(3, lsn(10));
        let resp = a.handle_elected(3, &theirs);
        assert!(resp.accepted);
        assert_eq!(resp.flush, lsn(10), "divergent [10,40) must be dropped");
        assert_eq!(a.last_log_term(), 1);
        assert_eq!(a.term(), 3);
        // The shared prefix survives.
        assert_eq!(a.entries(), &[entry(0, 10, 1, 1)]);
    }

    #[test]
    fn elected_keeps_compatible_log_intact() {
        let mut a = AcceptorCore::new(Lsn::ZERO);
        a.handle_elected(1, &TermHistory::new().with_switch(1, Lsn::ZERO));
        a.handle_append(1, entry(0, 10, 1, 1));
        // Proposer elected at term 2 with start == our flush: we are the
        // donor; nothing is truncated.
        let theirs = a.history().with_switch(2, lsn(10));
        let resp = a.handle_elected(2, &theirs);
        assert_eq!(resp.flush, lsn(10));
        assert_eq!(a.entries().len(), 1);
        // Older-term announcements are rejected outright.
        let stale = a.history().with_switch(1, lsn(10));
        assert!(!a.handle_elected(1, &stale).accepted);
    }

    #[test]
    fn divergence_point_cases() {
        let mut a = TermHistory::new();
        a.note(1, lsn(0));
        a.note(3, lsn(20));
        let mut b = TermHistory::new();
        b.note(1, lsn(0));
        b.note(3, lsn(20));
        assert_eq!(a.divergence_from(&b), None);
        // b extends a with a later switch: divergence at that switch.
        b.note(5, lsn(50));
        assert_eq!(a.divergence_from(&b), Some(lsn(50)));
        assert_eq!(b.divergence_from(&a), Some(lsn(50)));
        // Different term at the same position: divergence at its start.
        let mut c = TermHistory::new();
        c.note(1, lsn(0));
        c.note(4, lsn(30));
        assert_eq!(a.divergence_from(&c), Some(lsn(20)));
    }

    #[test]
    fn truncate_base_and_fast_forward() {
        let mut a = AcceptorCore::new(Lsn::ZERO);
        a.handle_elected(1, &TermHistory::new().with_switch(1, Lsn::ZERO));
        a.handle_append(1, entry(0, 10, 1, 1));
        a.handle_append(1, entry(10, 30, 1, 2));
        a.truncate_base(lsn(10));
        assert_eq!(a.base(), lsn(10));
        assert_eq!(a.entries().len(), 1);
        assert!(a.entry_at(lsn(10)).is_some());
        // Fast-forward past a destaged range: log restarts at `to` with
        // the proposer's ownership record for what was skipped.
        let mut donor = TermHistory::new();
        donor.note(1, lsn(0));
        donor.note(4, lsn(100));
        a.fast_forward(lsn(120), &donor);
        assert_eq!(a.flush(), lsn(120));
        assert_eq!(a.base(), lsn(120));
        assert_eq!(a.last_log_term(), 4);
        assert!(a.entries().is_empty());
    }

    #[test]
    fn donor_is_max_by_term_then_flush() {
        let v = |llt, flush| VoteResp {
            term: 9,
            granted: true,
            flush: lsn(flush),
            last_log_term: llt,
            history: TermHistory::new(),
        };
        let votes = vec![(0, v(1, 100)), (1, v(2, 40)), (2, v(2, 60))];
        assert_eq!(choose_donor(&votes), 2, "higher term beats longer log");
    }
}

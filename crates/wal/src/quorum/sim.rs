//! Deterministic step-function simulator for the quorum log protocol.
//!
//! No threads, no wall clock: the entire distributed system — proposers,
//! acceptors, and the network between them — is a single state machine
//! advanced one event at a time by a seeded [`Rng`]. Every message is an
//! element of an in-flight pool; delivery order, drops, duplicates,
//! crashes, restarts, and partitions are all schedule events, so any
//! interleaving the real tier could experience (and many it practically
//! never will) is reachable by some seed.
//!
//! After **every** step the simulator checks the protocol's safety
//! invariants:
//!
//! 1. the global committed watermark never regresses — in particular, a
//!    newly elected proposer's start position is at or beyond it;
//! 2. no two proposers ever commit conflicting entries for the same LSN
//!    range (checked against a global record of committed content);
//! 3. a write quorum of acceptors always holds every committed LSN in
//!    its flushed prefix, with matching content.
//!
//! A run ends with a *quiesce* phase — all acceptors healed, a fresh
//! proposer started, messages delivered in order — that asserts
//! liveness: the system must elect, catch up, and commit new entries
//! once chaos stops. The step trace is kept for replay artifacts.

use super::protocol::{
    choose_donor, AcceptorCore, AppendVerdict, ElectedResp, Entry, Term, TermHistory, VoteResp,
};
use socrates_common::rng::Rng;
use socrates_common::Lsn;
use std::collections::BTreeMap;

/// Simulator shape knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Number of acceptors.
    pub acceptors: usize,
    /// Acks required to commit (the write quorum).
    pub ack_required: usize,
    /// Random schedule steps before the quiesce phase.
    pub steps: usize,
    /// Maximum entry length in bytes (lengths are 1..=this).
    pub max_entry_len: u64,
}

impl SimConfig {
    /// The default 3-acceptor majority-commit shape.
    pub fn small(steps: usize) -> SimConfig {
        SimConfig { acceptors: 3, ack_required: 2, steps, max_entry_len: 64 }
    }

    /// A 5-acceptor shape (tolerates two losses).
    pub fn five(steps: usize) -> SimConfig {
        SimConfig { acceptors: 5, ack_required: 3, steps, max_entry_len: 64 }
    }
}

/// What a run produced: counters for the fixed-seed tests, violations
/// (must be empty), and the replayable step trace.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// The schedule seed.
    pub seed: u64,
    /// Random steps executed.
    pub steps: usize,
    /// Elections completed (a proposer reached Leading).
    pub elections: usize,
    /// Committed entries recorded in the global content map.
    pub commits: usize,
    /// Final global committed watermark.
    pub watermark: Lsn,
    /// Invariant violations (empty on a correct protocol).
    pub violations: Vec<String>,
    /// Human-readable step trace for replay artifacts.
    pub trace: Vec<String>,
    /// Whether the quiesce phase committed fresh entries.
    pub quiesce_converged: bool,
}

impl SimReport {
    /// Render the trace (plus violations) for a replay artifact file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# quorum-sim seed={} steps={} elections={} commits={} watermark={} converged={}\n",
            self.seed,
            self.steps,
            self.elections,
            self.commits,
            self.watermark,
            self.quiesce_converged
        ));
        for v in &self.violations {
            out.push_str(&format!("VIOLATION: {v}\n"));
        }
        for line in &self.trace {
            out.push_str(line);
            out.push('\n');
        }
        out
    }
}

#[derive(Clone, Debug)]
enum Req {
    Vote { term: Term },
    Elected { term: Term, history: TermHistory },
    Append { term: Term, entry: Entry },
    Fetch { from: Lsn },
}

#[derive(Clone, Debug)]
enum Resp {
    Vote(VoteResp),
    Elected(ElectedResp),
    Append { term: Term, verdict: AppendVerdict, flush: Lsn },
    Fetch { elected_term: Term, entries: Vec<Entry> },
}

#[derive(Clone, Debug)]
enum Body {
    Req(Req),
    Resp(Resp),
}

#[derive(Clone, Debug)]
struct Msg {
    proposer: usize,
    acceptor: usize,
    body: Body,
}

struct SimAcceptor {
    core: AcceptorCore,
    /// Crashed acceptors keep their durable core but process nothing.
    up: bool,
    /// Partitioned acceptors are up but unreachable.
    reachable: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Phase {
    Campaigning,
    Leading,
    Stopped,
}

struct SimProposer {
    term: Term,
    phase: Phase,
    votes: Vec<(usize, VoteResp)>,
    history: TermHistory,
    /// Election start position (donor flush).
    start: Lsn,
    /// Next append position.
    head: Lsn,
    /// This proposer's committed watermark.
    commit: Lsn,
    /// Entries this proposer can stream: its own appends plus backfill
    /// fetched from peers, keyed by start LSN.
    log: BTreeMap<Lsn, Entry>,
    /// Which acceptors acknowledged this term's election announcement.
    synced: Vec<bool>,
    /// Highest flush LSN each acceptor reported *in this term*.
    known_flush: Vec<Lsn>,
}

/// The simulated deployment.
pub struct Sim {
    cfg: SimConfig,
    rng: Rng,
    seed: u64,
    acceptors: Vec<SimAcceptor>,
    proposers: Vec<SimProposer>,
    flight: Vec<Msg>,
    /// Global record of committed content, keyed by entry start.
    committed: BTreeMap<Lsn, Entry>,
    /// Global committed watermark (max over all proposers, monotone).
    watermark: Lsn,
    /// Highest term observed anywhere (a new proposer's campaign hint).
    term_hint: Term,
    next_payload: u64,
    elections: usize,
    violations: Vec<String>,
    trace: Vec<String>,
    step_no: usize,
}

impl Sim {
    /// A fresh deployment with one campaigning proposer.
    pub fn new(seed: u64, cfg: SimConfig) -> Sim {
        assert!(cfg.acceptors >= 1 && cfg.ack_required >= 1 && cfg.ack_required <= cfg.acceptors);
        let acceptors = (0..cfg.acceptors)
            .map(|_| SimAcceptor { core: AcceptorCore::new(Lsn::ZERO), up: true, reachable: true })
            .collect();
        let mut sim = Sim {
            cfg,
            rng: Rng::new(seed ^ 0x51_6d_u64),
            seed,
            acceptors,
            proposers: Vec::new(),
            flight: Vec::new(),
            committed: BTreeMap::new(),
            watermark: Lsn::ZERO,
            term_hint: 0,
            next_payload: 1,
            elections: 0,
            violations: Vec::new(),
            trace: Vec::new(),
            step_no: 0,
        };
        sim.start_proposer();
        sim
    }

    /// Run the full schedule plus quiesce and return the report.
    pub fn run(mut self) -> SimReport {
        for _ in 0..self.cfg.steps {
            self.step();
        }
        let converged = self.quiesce();
        SimReport {
            seed: self.seed,
            steps: self.step_no,
            elections: self.elections,
            commits: self.committed.len(),
            watermark: self.watermark,
            violations: self.violations,
            trace: self.trace,
            quiesce_converged: converged,
        }
    }

    fn note(&mut self, line: String) {
        let n = self.step_no;
        self.trace.push(format!("{n:>5}: {line}"));
    }

    fn violation(&mut self, what: String) {
        let n = self.step_no;
        self.violations.push(format!("step {n}: {what}"));
        self.trace.push(format!("{n:>5}: VIOLATION {what}"));
    }

    // --- schedule ------------------------------------------------------

    fn step(&mut self) {
        self.step_no += 1;
        // Candidate actions with weights; availability depends on state.
        let mut acts: Vec<(u8, f64)> = Vec::with_capacity(11);
        let alive = self.proposers.iter().filter(|p| p.phase != Phase::Stopped).count();
        if !self.flight.is_empty() {
            acts.push((0, 55.0)); // deliver
            acts.push((1, 4.0)); // drop
            acts.push((2, 3.0)); // duplicate
        }
        if self.proposers.iter().any(|p| p.phase == Phase::Leading) {
            acts.push((3, 16.0)); // propose
        }
        if alive > 0 {
            acts.push((4, 8.0)); // pump
        }
        if self.acceptors.iter().any(|a| a.up) {
            acts.push((5, 3.0)); // crash acceptor
        }
        if self.acceptors.iter().any(|a| !a.up) {
            acts.push((6, 7.0)); // restart acceptor
        }
        if self.acceptors.iter().any(|a| a.reachable) {
            acts.push((7, 2.0)); // partition acceptor
        }
        if self.acceptors.iter().any(|a| !a.reachable) {
            acts.push((8, 6.0)); // heal acceptor
        }
        if alive > 0 {
            acts.push((9, 2.0)); // crash proposer
        }
        if alive < 2 {
            acts.push((10, if alive == 0 { 30.0 } else { 4.0 })); // start proposer
        }
        let weights: Vec<f64> = acts.iter().map(|(_, w)| *w).collect();
        let pick = acts[self.rng.pick_weighted(&weights)].0;
        match pick {
            0 => {
                let i = self.rng.gen_range(self.flight.len() as u64) as usize;
                self.deliver(i);
            }
            1 => {
                let i = self.rng.gen_range(self.flight.len() as u64) as usize;
                let m = self.flight.swap_remove(i);
                self.note(format!("drop {}", describe(&m)));
            }
            2 => {
                let i = self.rng.gen_range(self.flight.len() as u64) as usize;
                let m = self.flight[i].clone();
                self.note(format!("dup {}", describe(&m)));
                self.flight.push(m);
            }
            3 => {
                let leaders: Vec<usize> = self
                    .proposers
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.phase == Phase::Leading)
                    .map(|(i, _)| i)
                    .collect();
                let p = leaders[self.rng.gen_range(leaders.len() as u64) as usize];
                self.propose(p);
            }
            4 => {
                let live: Vec<usize> = self
                    .proposers
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.phase != Phase::Stopped)
                    .map(|(i, _)| i)
                    .collect();
                let p = live[self.rng.gen_range(live.len() as u64) as usize];
                self.pump(p);
            }
            5 => {
                let ups: Vec<usize> = self
                    .acceptors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.up)
                    .map(|(i, _)| i)
                    .collect();
                let a = ups[self.rng.gen_range(ups.len() as u64) as usize];
                self.acceptors[a].up = false;
                self.note(format!("crash acceptor {a}"));
            }
            6 => {
                let downs: Vec<usize> = self
                    .acceptors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.up)
                    .map(|(i, _)| i)
                    .collect();
                let a = downs[self.rng.gen_range(downs.len() as u64) as usize];
                self.acceptors[a].up = true;
                self.note(format!("restart acceptor {a}"));
            }
            7 => {
                let r: Vec<usize> = self
                    .acceptors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| a.reachable)
                    .map(|(i, _)| i)
                    .collect();
                let a = r[self.rng.gen_range(r.len() as u64) as usize];
                self.acceptors[a].reachable = false;
                self.note(format!("partition acceptor {a}"));
            }
            8 => {
                let r: Vec<usize> = self
                    .acceptors
                    .iter()
                    .enumerate()
                    .filter(|(_, a)| !a.reachable)
                    .map(|(i, _)| i)
                    .collect();
                let a = r[self.rng.gen_range(r.len() as u64) as usize];
                self.acceptors[a].reachable = true;
                self.note(format!("heal acceptor {a}"));
            }
            9 => {
                let live: Vec<usize> = self
                    .proposers
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.phase != Phase::Stopped)
                    .map(|(i, _)| i)
                    .collect();
                let p = live[self.rng.gen_range(live.len() as u64) as usize];
                self.proposers[p].phase = Phase::Stopped;
                self.note(format!("crash proposer {p}"));
            }
            _ => {
                self.start_proposer();
            }
        }
        self.check_invariants();
    }

    fn start_proposer(&mut self) -> usize {
        let id = self.proposers.len();
        let term = self.term_hint + 1;
        self.term_hint = term;
        let n = self.cfg.acceptors;
        self.proposers.push(SimProposer {
            term,
            phase: Phase::Campaigning,
            votes: Vec::new(),
            history: TermHistory::new(),
            start: Lsn::ZERO,
            head: Lsn::ZERO,
            commit: Lsn::ZERO,
            log: BTreeMap::new(),
            synced: vec![false; n],
            known_flush: vec![Lsn::ZERO; n],
        });
        self.note(format!("start proposer {id} campaigning at term {term}"));
        for a in 0..n {
            self.flight.push(Msg {
                proposer: id,
                acceptor: a,
                body: Body::Req(Req::Vote { term }),
            });
        }
        id
    }

    fn propose(&mut self, p: usize) {
        let len = 1 + self.rng.gen_range(self.cfg.max_entry_len);
        let payload = self.next_payload;
        self.next_payload += 1;
        let (entry, term) = {
            let pr = &mut self.proposers[p];
            let entry = Entry { start: pr.head, end: pr.head + len, term: pr.term, payload };
            pr.log.insert(entry.start, entry);
            pr.head = entry.end;
            (entry, pr.term)
        };
        self.note(format!(
            "proposer {p} proposes [{},{}) term {term} payload {payload}",
            entry.start, entry.end
        ));
        for a in 0..self.cfg.acceptors {
            self.flight.push(Msg {
                proposer: p,
                acceptor: a,
                body: Body::Req(Req::Append { term, entry }),
            });
        }
    }

    /// Re-drive whatever the proposer is waiting on (covers dropped
    /// messages; the live tier's equivalent is retry + resync).
    fn pump(&mut self, p: usize) {
        let mut sends: Vec<(usize, Req)> = Vec::new();
        {
            let pr = &self.proposers[p];
            match pr.phase {
                Phase::Stopped => return,
                Phase::Campaigning => {
                    for a in 0..self.cfg.acceptors {
                        sends.push((a, Req::Vote { term: pr.term }));
                    }
                }
                Phase::Leading => {
                    for a in 0..self.cfg.acceptors {
                        if !pr.synced[a] {
                            sends.push((
                                a,
                                Req::Elected { term: pr.term, history: pr.history.clone() },
                            ));
                        } else if pr.known_flush[a] < pr.head {
                            let f = pr.known_flush[a];
                            if let Some(e) = pr.log.get(&f) {
                                sends.push((a, Req::Append { term: pr.term, entry: *e }));
                            } else if let Some(src) = self.fetch_source(p, f, a) {
                                sends.push((src, Req::Fetch { from: f }));
                            }
                        }
                    }
                }
            }
        }
        if !sends.is_empty() {
            self.note(format!("pump proposer {p} ({} sends)", sends.len()));
        }
        for (a, req) in sends {
            self.flight.push(Msg { proposer: p, acceptor: a, body: Body::Req(req) });
        }
    }

    /// A peer that can serve backfill at `from` for proposer `p`
    /// (synced into this term, flushed past `from`, not the laggard).
    fn fetch_source(&self, p: usize, from: Lsn, laggard: usize) -> Option<usize> {
        let pr = &self.proposers[p];
        (0..self.cfg.acceptors).find(|&j| j != laggard && pr.synced[j] && pr.known_flush[j] > from)
    }

    // --- delivery ------------------------------------------------------

    fn deliver(&mut self, i: usize) {
        let m = self.flight.swap_remove(i);
        match &m.body {
            Body::Req(_) => {
                let a = &self.acceptors[m.acceptor];
                if !(a.up && a.reachable) {
                    self.note(format!("lost (acceptor down) {}", describe(&m)));
                    return;
                }
                self.deliver_req(m);
            }
            Body::Resp(_) => {
                if self.proposers[m.proposer].phase == Phase::Stopped {
                    self.note(format!("lost (proposer stopped) {}", describe(&m)));
                    return;
                }
                self.deliver_resp(m);
            }
        }
    }

    fn deliver_req(&mut self, m: Msg) {
        let desc = describe(&m);
        let Body::Req(req) = m.body else { unreachable!() };
        let resp = {
            let core = &mut self.acceptors[m.acceptor].core;
            match req {
                Req::Vote { term } => Resp::Vote(core.handle_vote(term)),
                Req::Elected { term, history } => {
                    Resp::Elected(core.handle_elected(term, &history))
                }
                Req::Append { term, entry } => {
                    let verdict = core.handle_append(term, entry);
                    Resp::Append { term: core.term(), verdict, flush: core.flush() }
                }
                Req::Fetch { from } => {
                    // Serve a bounded batch so catch-up spans several
                    // rounds (more interleavings to explore).
                    let entries: Vec<Entry> = core
                        .entries()
                        .iter()
                        .filter(|e| e.start >= from)
                        .take(4)
                        .copied()
                        .collect();
                    Resp::Fetch { elected_term: core.elected_term(), entries }
                }
            }
        };
        self.note(format!("deliver {desc} -> {}", describe_resp(&resp)));
        self.flight.push(Msg {
            proposer: m.proposer,
            acceptor: m.acceptor,
            body: Body::Resp(resp),
        });
    }

    fn deliver_resp(&mut self, m: Msg) {
        let desc = describe(&m);
        self.note(format!("deliver {desc}"));
        let Body::Resp(resp) = m.body else { unreachable!() };
        let (p, a) = (m.proposer, m.acceptor);
        match resp {
            Resp::Vote(v) => self.on_vote(p, a, v),
            Resp::Elected(e) => self.on_elected_resp(p, a, e),
            Resp::Append { term, verdict, flush } => {
                self.on_append_resp(p, a, term, verdict, flush)
            }
            Resp::Fetch { elected_term, entries } => self.on_fetch_resp(p, elected_term, entries),
        }
    }

    fn on_vote(&mut self, p: usize, a: usize, v: VoteResp) {
        let quorum = self.cfg.ack_required;
        let recamp = {
            let pr = &mut self.proposers[p];
            if pr.phase != Phase::Campaigning {
                return;
            }
            if v.granted && v.term == pr.term {
                if !pr.votes.iter().any(|(i, _)| *i == a) {
                    pr.votes.push((a, v));
                }
                false
            } else if !v.granted && v.term >= pr.term {
                // Outvoted: bump past the observed term and start over.
                pr.term = v.term + 1;
                pr.votes.clear();
                true
            } else {
                false
            }
        };
        if recamp {
            let term = self.proposers[p].term;
            self.term_hint = self.term_hint.max(term);
            self.note(format!("proposer {p} re-campaigns at term {term}"));
            for i in 0..self.cfg.acceptors {
                self.flight.push(Msg {
                    proposer: p,
                    acceptor: i,
                    body: Body::Req(Req::Vote { term }),
                });
            }
            return;
        }
        if self.proposers[p].votes.len() >= quorum && self.proposers[p].phase == Phase::Campaigning
        {
            self.finish_election(p);
        }
    }

    fn finish_election(&mut self, p: usize) {
        let (term, start, history) = {
            let pr = &mut self.proposers[p];
            let donor = choose_donor(&pr.votes);
            let (_, dv) = &pr.votes[donor];
            let start = dv.flush;
            let history = dv.history.with_switch(pr.term, start);
            pr.phase = Phase::Leading;
            pr.history = history.clone();
            pr.start = start;
            pr.head = start;
            pr.synced = vec![false; self.cfg.acceptors];
            pr.known_flush = vec![Lsn::ZERO; self.cfg.acceptors];
            pr.log.clear();
            (pr.term, start, history)
        };
        self.elections += 1;
        self.note(format!("proposer {p} elected at term {term}, start {start}"));
        // Invariant 1 (the sharp half): quorum intersection must place
        // the new stream at or beyond everything ever committed.
        if start < self.watermark {
            self.violation(format!(
                "election start {start} regresses below committed watermark {}",
                self.watermark
            ));
        }
        for a in 0..self.cfg.acceptors {
            self.flight.push(Msg {
                proposer: p,
                acceptor: a,
                body: Body::Req(Req::Elected { term, history: history.clone() }),
            });
        }
    }

    fn on_elected_resp(&mut self, p: usize, a: usize, e: ElectedResp) {
        if e.term > self.proposers[p].term {
            self.depose(p, e.term);
            return;
        }
        let pr = &mut self.proposers[p];
        if pr.phase != Phase::Leading || !e.accepted || e.term != pr.term {
            return;
        }
        pr.synced[a] = true;
        pr.known_flush[a] = pr.known_flush[a].max(e.flush);
        self.advance_commit(p);
        self.stream_next(p, a);
    }

    fn on_append_resp(
        &mut self,
        p: usize,
        a: usize,
        term: Term,
        verdict: AppendVerdict,
        flush: Lsn,
    ) {
        if term > self.proposers[p].term {
            self.depose(p, term);
            return;
        }
        if self.proposers[p].phase != Phase::Leading {
            return;
        }
        match verdict {
            AppendVerdict::Stale { term: t } => {
                if t > self.proposers[p].term {
                    self.depose(p, t);
                }
            }
            AppendVerdict::NotElected => {
                let (term, history) = {
                    let pr = &self.proposers[p];
                    (pr.term, pr.history.clone())
                };
                self.flight.push(Msg {
                    proposer: p,
                    acceptor: a,
                    body: Body::Req(Req::Elected { term, history }),
                });
            }
            AppendVerdict::Appended | AppendVerdict::Duplicate => {
                let pr = &mut self.proposers[p];
                pr.known_flush[a] = pr.known_flush[a].max(flush);
                self.advance_commit(p);
                self.stream_next(p, a);
            }
            AppendVerdict::Gap { flush: f } => {
                let pr = &mut self.proposers[p];
                if pr.synced[a] {
                    pr.known_flush[a] = pr.known_flush[a].max(f);
                }
                self.stream_next(p, a);
            }
        }
    }

    fn on_fetch_resp(&mut self, p: usize, elected_term: Term, entries: Vec<Entry>) {
        let merged = {
            let pr = &mut self.proposers[p];
            if pr.phase != Phase::Leading || elected_term != pr.term {
                return;
            }
            // The source acknowledged this term's election, so its
            // retained log lies on our announced history: safe backfill.
            let mut n = 0;
            for e in entries {
                if e.end <= pr.head && !pr.log.contains_key(&e.start) {
                    pr.log.insert(e.start, e);
                    n += 1;
                }
            }
            n
        };
        if merged > 0 {
            self.note(format!("proposer {p} merged {merged} backfill entries"));
            for a in 0..self.cfg.acceptors {
                if self.proposers[p].synced[a] {
                    self.stream_next(p, a);
                }
            }
        }
    }

    /// Send acceptor `a` the next entry it is missing, or a fetch for
    /// backfill the proposer itself does not hold.
    fn stream_next(&mut self, p: usize, a: usize) {
        let send: Option<(usize, Req)> = {
            let pr = &self.proposers[p];
            if pr.phase != Phase::Leading || !pr.synced[a] || pr.known_flush[a] >= pr.head {
                None
            } else {
                let f = pr.known_flush[a];
                if let Some(e) = pr.log.get(&f) {
                    Some((a, Req::Append { term: pr.term, entry: *e }))
                } else {
                    self.fetch_source(p, f, a).map(|src| (src, Req::Fetch { from: f }))
                }
            }
        };
        if let Some((to, req)) = send {
            self.flight.push(Msg { proposer: p, acceptor: to, body: Body::Req(req) });
        }
    }

    fn depose(&mut self, p: usize, newer: Term) {
        self.term_hint = self.term_hint.max(newer);
        self.proposers[p].phase = Phase::Stopped;
        self.note(format!("proposer {p} deposed by term {newer}"));
    }

    /// Recompute proposer `p`'s committed watermark from per-acceptor
    /// flush positions (rule 2) and record newly committed content.
    fn advance_commit(&mut self, p: usize) {
        let (new_commit, term) = {
            let pr = &self.proposers[p];
            let mut points: Vec<Lsn> = vec![pr.start];
            points.extend(pr.log.values().map(|e| e.end).filter(|e| *e <= pr.head));
            points.sort();
            let mut best = pr.commit;
            for &e in points.iter().rev() {
                if e <= best {
                    break;
                }
                let acks = pr.known_flush.iter().filter(|f| **f >= e).count();
                if acks >= self.cfg.ack_required {
                    best = e;
                    break;
                }
            }
            (best, pr.term)
        };
        if new_commit <= self.proposers[p].commit {
            return;
        }
        self.proposers[p].commit = new_commit;
        self.note(format!("proposer {p} commit -> {new_commit} (term {term})"));
        // Record newly committed entries in the global content map and
        // check invariant 2 (no conflicting commits).
        let newly: Vec<Entry> = self.proposers[p]
            .log
            .values()
            .filter(|e| e.end <= new_commit && !self.committed.contains_key(&e.start))
            .copied()
            .collect();
        for e in newly {
            // Conflict: any previously committed entry overlapping this
            // range must be the identical entry.
            let overlap = self
                .committed
                .range(..e.end)
                .next_back()
                .map(|(_, o)| o.end > e.start && *o != e)
                .unwrap_or(false);
            if overlap {
                self.violation(format!(
                    "conflicting commit at [{},{}) term {} payload {}",
                    e.start, e.end, e.term, e.payload
                ));
            }
            self.committed.insert(e.start, e);
        }
        if new_commit > self.watermark {
            self.watermark = new_commit;
        }
    }

    // --- invariants ----------------------------------------------------

    fn check_invariants(&mut self) {
        // Invariant 1: per-proposer watermarks are monotone by
        // construction (advance_commit only raises them); the global
        // watermark is their running max, and elections are checked at
        // finish_election. What remains: committed coverage.
        //
        // Invariant 3: a write quorum of acceptors holds every committed
        // LSN flushed, with matching content.
        if self.watermark > Lsn::ZERO {
            let covered =
                self.acceptors.iter().filter(|a| a.core.flush() >= self.watermark).count();
            if covered < self.cfg.ack_required {
                self.violation(format!(
                    "only {covered} acceptors flush >= watermark {} (need {})",
                    self.watermark, self.cfg.ack_required
                ));
            }
        }
        let mut bad: Vec<String> = Vec::new();
        for e in self.committed.values() {
            let holders = self
                .acceptors
                .iter()
                .filter(|a| a.core.entry_at(e.start).map(|h| h == e).unwrap_or(false))
                .count();
            if holders < self.cfg.ack_required {
                bad.push(format!(
                    "committed [{},{}) payload {} held by only {holders} acceptors",
                    e.start, e.end, e.payload
                ));
            }
        }
        for b in bad {
            self.violation(b);
        }
    }

    // --- quiesce (liveness) --------------------------------------------

    /// Heal everything, start a fresh proposer, drain the network in
    /// order, and require the system to elect, catch up, and commit new
    /// entries. Returns whether it converged.
    fn quiesce(&mut self) -> bool {
        for a in &mut self.acceptors {
            a.up = true;
            a.reachable = true;
        }
        // Only one proposer process survives into quiesce — a lingering
        // campaigner could otherwise outbid the fresh proposer forever.
        for pr in &mut self.proposers {
            pr.phase = Phase::Stopped;
        }
        self.note("quiesce: heal all, start fresh proposer".to_string());
        let p = self.start_proposer();
        let mut proposed = false;
        for _ in 0..800 {
            self.step_no += 1;
            if self.flight.is_empty() {
                self.pump(p);
            } else {
                self.deliver(0);
            }
            if self.proposers[p].phase == Phase::Leading && !proposed {
                self.propose(p);
                self.propose(p);
                proposed = true;
            }
            if self.proposers[p].phase == Phase::Stopped {
                self.violation("quiesce: fresh proposer was deposed".to_string());
                return false;
            }
            self.check_invariants();
            let pr = &self.proposers[p];
            if proposed && pr.commit >= pr.head && pr.head > pr.start {
                self.note(format!("quiesce: converged at commit {}", pr.commit));
                return true;
            }
        }
        let pr = &self.proposers[p];
        let state = format!(
            "quiesce: failed to converge (phase {:?}, commit {}, head {}, {} in flight)",
            pr.phase,
            pr.commit,
            pr.head,
            self.flight.len()
        );
        self.violation(state);
        false
    }
}

fn describe(m: &Msg) -> String {
    let (p, a) = (m.proposer, m.acceptor);
    match &m.body {
        Body::Req(r) => match r {
            Req::Vote { term } => format!("vote-req p{p}->a{a} term {term}"),
            Req::Elected { term, .. } => format!("elected p{p}->a{a} term {term}"),
            Req::Append { term, entry } => {
                format!("append p{p}->a{a} term {term} [{},{})", entry.start, entry.end)
            }
            Req::Fetch { from } => format!("fetch p{p}->a{a} from {from}"),
        },
        Body::Resp(r) => format!("{} a{a}->p{p}", describe_resp(r)),
    }
}

fn describe_resp(r: &Resp) -> String {
    match r {
        Resp::Vote(v) => format!(
            "vote-resp granted={} term {} flush {} llt {}",
            v.granted, v.term, v.flush, v.last_log_term
        ),
        Resp::Elected(e) => {
            format!("elected-resp accepted={} term {} flush {}", e.accepted, e.term, e.flush)
        }
        Resp::Append { verdict, flush, .. } => format!("append-resp {verdict:?} flush {flush}"),
        Resp::Fetch { entries, .. } => format!("fetch-resp {} entries", entries.len()),
    }
}

/// Run one simulation to completion.
pub fn run_sim(seed: u64, cfg: SimConfig) -> SimReport {
    Sim::new(seed, cfg).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_clean(r: &SimReport) {
        assert!(
            r.violations.is_empty(),
            "seed {} violated invariants:\n{}",
            r.seed,
            r.violations.join("\n")
        );
        assert!(r.quiesce_converged, "seed {} did not converge in quiesce", r.seed);
    }

    #[test]
    fn fixed_seeds_run_clean() {
        let steps = if cfg!(miri) { 60 } else { 400 };
        for seed in [1, 2, 3] {
            let r = run_sim(seed, SimConfig::small(steps));
            assert_clean(&r);
            assert!(r.elections >= 1, "seed {seed} never elected a proposer");
        }
    }

    #[test]
    fn chaotic_seeds_still_commit_something() {
        // Longer schedules on a couple of seeds: progress (commits) is
        // schedule-dependent, but quiesce must always converge.
        let steps = if cfg!(miri) { 80 } else { 1000 };
        for seed in [11, 29] {
            let r = run_sim(seed, SimConfig::small(steps));
            assert_clean(&r);
            assert!(r.commits >= 1, "seed {seed} committed nothing even after quiesce");
        }
    }

    #[test]
    fn five_acceptor_shape_runs_clean() {
        let steps = if cfg!(miri) { 60 } else { 500 };
        let r = run_sim(7, SimConfig::five(steps));
        assert_clean(&r);
    }

    #[test]
    fn identical_seeds_produce_identical_traces() {
        let a = run_sim(42, SimConfig::small(if cfg!(miri) { 40 } else { 200 }));
        let b = run_sim(42, SimConfig::small(if cfg!(miri) { 40 } else { 200 }));
        assert_eq!(a.trace, b.trace, "simulator must be deterministic");
        assert_eq!(a.watermark, b.watermark);
    }
}

//! Property tests for the HDR log-linear histogram (`obs::hdr`): the
//! bucket-layout invariants every percentile read depends on, merge
//! algebra, percentile monotonicity, and a Miri-sized concurrent-shard
//! merge exercising the lock-free recording path under real threads.

use proptest::prelude::*;
use socrates_common::obs::hdr::{
    bucket_floor, bucket_index, num_buckets, HdrHistogram, HdrShards, HdrSnapshot,
};
use socrates_common::rng::Rng;
use std::sync::Arc;

fn snapshot_of(sub_bits: u32, vals: &[u64]) -> HdrSnapshot {
    let h = HdrHistogram::new(sub_bits);
    for &v in vals {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// value → bucket → floor round-trip: the floor never exceeds the
    /// value and is within the documented relative-error bound of it.
    #[test]
    fn round_trip_floor_bounds_value(v in any::<u64>(), sub_bits in 1u32..=8) {
        let i = bucket_index(sub_bits, v);
        prop_assert!(i < num_buckets(sub_bits), "index {i} out of table");
        let floor = bucket_floor(sub_bits, i);
        prop_assert!(floor <= v, "floor {floor} above value {v}");
        // Relative error bound: v - floor < 2^-sub_bits * 2^(pow+1), i.e.
        // floor >= v - (v >> sub_bits) up to one sub-bucket of rounding.
        let max_err = (v >> sub_bits).max(1);
        prop_assert!(
            v - floor <= max_err,
            "v={v} floor={floor} err={} bound={max_err}",
            v - floor
        );
    }

    /// The floor of every reachable bucket maps back to the same bucket
    /// (the fixed point that makes repeated quantisation stable).
    #[test]
    fn floor_is_fixed_point(v in any::<u64>(), sub_bits in 1u32..=8) {
        let i = bucket_index(sub_bits, v);
        let floor = bucket_floor(sub_bits, i);
        prop_assert_eq!(bucket_index(sub_bits, floor), i);
    }

    /// Bucket index is monotone in the value.
    #[test]
    fn index_monotone(a in any::<u64>(), b in any::<u64>(), sub_bits in 1u32..=8) {
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(bucket_index(sub_bits, lo) <= bucket_index(sub_bits, hi));
    }

    /// Merge is associative and commutative: any grouping of the same
    /// shard snapshots yields identical buckets and side-stats.
    #[test]
    fn merge_associative_commutative(
        xs in proptest::collection::vec(any::<u64>(), 0..40),
        ys in proptest::collection::vec(any::<u64>(), 0..40),
        zs in proptest::collection::vec(any::<u64>(), 0..40),
    ) {
        let (a, b, c) = (snapshot_of(5, &xs), snapshot_of(5, &ys), snapshot_of(5, &zs));

        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        // c ⊕ b ⊕ a (commuted)
        let mut comm = c.clone();
        comm.merge(&b);
        comm.merge(&a);

        for other in [&right, &comm] {
            prop_assert_eq!(left.count(), other.count());
            prop_assert_eq!(left.min(), other.min());
            prop_assert_eq!(left.max(), other.max());
            for q in [0.0, 0.5, 0.99, 1.0] {
                prop_assert_eq!(left.percentile(q), other.percentile(q));
            }
        }
        // And the merge equals recording the concatenation directly.
        let mut all = xs.clone();
        all.extend(&ys);
        all.extend(&zs);
        let direct = snapshot_of(5, &all);
        prop_assert_eq!(left.count(), direct.count());
        for q in [0.0, 0.25, 0.5, 0.9, 0.999, 1.0] {
            prop_assert_eq!(left.percentile(q), direct.percentile(q));
        }
    }

    /// Percentiles are monotone in the quantile and bracketed by min/max.
    #[test]
    fn percentiles_monotone_and_bracketed(
        vals in proptest::collection::vec(0u64..1_000_000_000, 1..200),
        seed in any::<u64>(),
    ) {
        let snap = snapshot_of(5, &vals);
        let mut rng = Rng::new(seed);
        let mut qs: Vec<f64> = (0..16).map(|_| rng.gen_f64()).collect();
        qs.extend([0.0, 1.0]);
        qs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut last = snap.percentile(qs[0]);
        prop_assert!(last >= snap.min() || qs[0] > 0.0);
        for &q in &qs[1..] {
            let p = snap.percentile(q);
            prop_assert!(p >= last, "p({q}) = {p} < previous {last}");
            prop_assert!(p <= snap.max());
            last = p;
        }
        let curve = snap.curve();
        for w in curve.windows(2) {
            prop_assert!(w[0].us <= w[1].us, "curve not monotone");
        }
    }
}

/// Concurrent recorders on independent shards lose no samples and the
/// merged snapshot equals the sequential reference. Sized to run under
/// Miri (few threads, few records).
#[test]
fn concurrent_shard_merge_loses_nothing() {
    let threads = 4usize;
    let per_thread = if cfg!(miri) { 50u64 } else { 5_000 };
    let shards = Arc::new(HdrShards::new(threads, 5));

    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let shards = Arc::clone(&shards);
            std::thread::spawn(move || {
                let mut rng = Rng::new(0xC0FFEE + t as u64);
                for _ in 0..per_thread {
                    // Spread over 6 decades so many buckets are hit.
                    let v = 1u64 << rng.gen_range(20);
                    shards.record(v + rng.gen_range(v.max(1)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let merged = shards.snapshot();
    assert_eq!(merged.count(), threads as u64 * per_thread, "samples lost in shard merge");

    // Sequential reference with the same per-thread streams.
    let reference = HdrHistogram::new(5);
    for t in 0..threads {
        let mut rng = Rng::new(0xC0FFEE + t as u64);
        for _ in 0..per_thread {
            let v = 1u64 << rng.gen_range(20);
            reference.record(v + rng.gen_range(v.max(1)));
        }
    }
    let ref_snap = reference.snapshot();
    assert_eq!(merged.min(), ref_snap.min());
    assert_eq!(merged.max(), ref_snap.max());
    for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
        assert_eq!(merged.percentile(q), ref_snap.percentile(q), "divergence at q={q}");
    }
}

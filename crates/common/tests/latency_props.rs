//! Property tests for the latency model: every sample respects the
//! configured bounds, degenerate models are exact, and sampling is a pure
//! function of the seed (the determinism the fault-injection layer and
//! benchmark reproducibility both build on).

use proptest::prelude::*;
use socrates_common::latency::LatencyModel;
use socrates_common::rng::Rng;
use std::time::Duration;

fn model_strategy() -> impl Strategy<Value = LatencyModel> {
    // min <= median <= max by construction; sigma and spike_p over their
    // whole useful ranges, including the degenerate zeros.
    (0u64..2_000, 0u64..2_000, 0u64..20_000, 0.0f64..2.5, 0.0f64..1.0).prop_map(
        |(min, body, tail, sigma, spike_p)| LatencyModel {
            min_us: min,
            median_us: min + body,
            sigma,
            max_us: min + body + tail,
            spike_p,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn sample_stays_within_bounds(
        model in model_strategy(),
        seed in any::<u64>(),
        draws in 1usize..64,
    ) {
        let mut rng = Rng::new(seed);
        for _ in 0..draws {
            let d = model.sample(&mut rng);
            prop_assert!(
                d >= Duration::from_micros(model.min_us) || model.max_us == 0,
                "sample {d:?} below min_us {}",
                model.min_us
            );
            prop_assert!(
                d <= Duration::from_micros(model.max_us),
                "sample {d:?} above max_us {}",
                model.max_us
            );
        }
    }

    #[test]
    fn zero_model_is_exactly_zero(seed in any::<u64>(), draws in 1usize..32) {
        let mut rng = Rng::new(seed);
        for _ in 0..draws {
            prop_assert_eq!(LatencyModel::zero().sample(&mut rng), Duration::ZERO);
        }
    }

    #[test]
    fn fixed_model_is_exact(us in 0u64..1_000_000, seed in any::<u64>(), draws in 1usize..32) {
        let mut rng = Rng::new(seed);
        for _ in 0..draws {
            prop_assert_eq!(LatencyModel::fixed(us).sample(&mut rng), Duration::from_micros(us));
        }
    }

    #[test]
    fn same_seed_same_sequence(model in model_strategy(), seed in any::<u64>()) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        let sa: Vec<Duration> = (0..32).map(|_| model.sample(&mut a)).collect();
        let sb: Vec<Duration> = (0..32).map(|_| model.sample(&mut b)).collect();
        prop_assert_eq!(sa, sb);
    }
}

//! Concurrency invariants of the lock-free observability rings, written
//! to run under Miri (`cargo +nightly miri test -p socrates-common
//! --test ring_invariants`) as well as natively. Miri executes these
//! with real threads and checks every atomic access against the memory
//! model, so a missing fence or a torn seqlock read shows up as UB, not
//! as a once-a-month flake.
//!
//! The payloads are self-checking: every recorded span/commit stores the
//! same value in all of its cells, so any torn read (mixing two
//! generations of one slot) breaks an equality the assertions check.

use socrates_common::metrics::{Counter, Histogram};
use socrates_common::obs::span::{HedgeOutcome, ReadTrace, ReadTraceRecorder, SLOW_OP_CAPACITY};
use socrates_common::obs::trace::{Stage, TraceRecorder};
use socrates_common::obs::{SpanKind, SpanRing};
use socrates_common::{Lsn, NodeId, PageId, TxnId};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

/// Iteration scale: Miri is ~two orders of magnitude slower than native,
/// so keep the schedules short there — the interleavings it explores are
/// what matter, not the volume.
const fn per_thread() -> u64 {
    if cfg!(miri) {
        12
    } else {
        200
    }
}

const WRITERS: u64 = 4;

/// A span whose cells all encode the same tag, so readers can detect
/// generation mixing.
fn tagged_span(tag: u64) -> ReadTrace {
    ReadTrace {
        page: PageId::new(tag),
        min_lsn: Lsn::new(tag),
        stage_ns: [tag; 6],
        hedge: HedgeOutcome::None,
        range_width: 1,
        range_fallback: false,
    }
}

/// Check one snapshot for generation mixing: every cell of every span
/// must carry the span's own tag.
fn assert_untorn(traces: &[ReadTrace]) {
    for t in traces {
        let tag = t.page.raw();
        assert_eq!(t.min_lsn.offset(), tag, "page/lsn cells from different generations");
        assert!(
            t.stage_ns.iter().all(|&ns| ns == tag),
            "stage cells from different generations: tag {tag}, stages {:?}",
            t.stage_ns
        );
    }
}

#[test]
fn span_ring_readers_never_observe_torn_slots() {
    let rec = Arc::new(ReadTraceRecorder::new(8));
    let done = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        for w in 0..WRITERS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..per_thread() {
                    // Tags start at 1: a zero tag would be clamped to 1ns
                    // by the recorder and break the equality check.
                    rec.record(tagged_span(w * 1_000_000 + i + 1));
                }
            });
        }
        let reader_rec = Arc::clone(&rec);
        let reader_done = Arc::clone(&done);
        let reader = s.spawn(move || {
            let mut snapshots = 0u64;
            // Always snapshot at least once, even if the writers finish
            // before this thread is first scheduled.
            loop {
                assert_untorn(&reader_rec.traces());
                snapshots += 1;
                if reader_done.load(Ordering::Acquire) {
                    break;
                }
            }
            snapshots
        });
        // Scope exit joins every thread, including the reader — so stop
        // the reader once all writers have published their last span.
        while rec.spans_recorded() < WRITERS * per_thread() {
            thread::yield_now();
        }
        done.store(true, Ordering::Release);
        assert!(reader.join().unwrap() > 0, "reader never snapshotted");
    });

    // Quiescent state: full ring, everything consistent and complete.
    let traces = rec.traces();
    assert_eq!(traces.len(), 8, "ring retains exactly its capacity once full");
    assert_untorn(&traces);
    assert!(traces.iter().all(ReadTrace::is_complete));
    assert_eq!(rec.spans_recorded(), WRITERS * per_thread());
    assert_eq!(rec.completed_traces().len(), traces.len());
}

#[test]
fn slow_ring_keeps_the_exact_global_top_k() {
    // Totals are distinct across all writers (w*per_thread + i + 1 in
    // nanoseconds per stage), so the top-K retained set is unique and
    // the admission-floor heuristic must converge on exactly it: the
    // floor only ever rises to the smallest retained total, so it can
    // admit a doomed span early but can never reject a top-K span.
    let rec = Arc::new(ReadTraceRecorder::new(64));
    thread::scope(|s| {
        for w in 0..WRITERS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..per_thread() {
                    rec.record(tagged_span(w * per_thread() + i + 1));
                }
            });
        }
    });
    let total = WRITERS * per_thread();
    let slow = rec.slow_ops();
    assert_eq!(slow.len(), SLOW_OP_CAPACITY.min(total as usize));
    // Slowest first, and exactly the top-K tags: total_ns = 6 * tag.
    let expected: Vec<u64> = (0..slow.len() as u64).map(|k| (total - k) * 6).collect();
    let got: Vec<u64> = slow.iter().map(ReadTrace::total_ns).collect();
    assert_eq!(got, expected, "slow ring must retain exactly the global top-K");
}

#[test]
fn commit_ring_frontier_completion_is_consistent() {
    let rec = Arc::new(TraceRecorder::new(8));
    let done = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        for w in 0..WRITERS {
            let rec = Arc::clone(&rec);
            s.spawn(move || {
                for i in 0..per_thread() {
                    let tag = w * 1_000_000 + i + 1;
                    rec.record_commit(TxnId::new(tag), Lsn::new(tag), 10, 10);
                }
            });
        }
        // A frontier watcher racing the writers: completes async stages
        // on whatever commits it catches; seqlock re-checks must keep it
        // from stamping recycled slots.
        let watcher_rec = Arc::clone(&rec);
        let watcher_done = Arc::clone(&done);
        let watcher = s.spawn(move || {
            while !watcher_done.load(Ordering::Acquire) {
                for stage in Stage::ASYNC {
                    watcher_rec.note_frontier(stage, Lsn::new(u64::MAX / 2));
                }
                thread::yield_now();
            }
        });
        while rec.commits_recorded() < WRITERS * per_thread() {
            thread::yield_now();
        }
        done.store(true, Ordering::Release);
        watcher.join().unwrap();
    });

    // Drain: one more frontier pass completes every retained trace.
    for stage in Stage::ASYNC {
        rec.note_frontier(stage, Lsn::new(u64::MAX / 2));
    }
    let traces = rec.traces();
    assert_eq!(traces.len(), 8);
    for t in &traces {
        assert_eq!(t.txn.raw(), t.lsn.offset(), "txn/lsn cells from different generations");
        assert!(t.is_complete(), "post-drain trace missing a stage: {t:?}");
    }
    assert_eq!(rec.commits_recorded(), WRITERS * per_thread());
}

/// Record a cross-tier span whose every cell carries `tag`, so readers
/// can detect generation mixing the same way `tagged_span` does for the
/// read-trace ring. Tags must be ≥ 1 (0 is the "unsampled" sentinel).
fn record_tagged(ring: &SpanRing, tag: u64) {
    ring.record(tag, tag, tag, SpanKind::WalHarden, NodeId::XLOG, tag, tag);
}

fn assert_spans_untorn(spans: &[socrates_common::obs::SpanEvent]) {
    for s in spans {
        let tag = s.trace_id;
        assert!(tag != 0, "unsampled span leaked into the ring");
        assert!(
            s.span_id == tag && s.parent_id == tag && s.start_ns == tag && s.dur_ns == tag,
            "span cells from different generations: {s:?}"
        );
        assert_eq!(s.kind, SpanKind::WalHarden);
        assert_eq!(s.node, NodeId::XLOG);
    }
}

#[test]
fn cross_tier_span_ring_wraps_at_exact_capacity_boundaries() {
    const CAP: u64 = 8;
    let ring = SpanRing::new(CAP as usize, 1);

    // Exactly one capacity's worth: every span retained, oldest first.
    for tag in 1..=CAP {
        record_tagged(&ring, tag);
    }
    let tags: Vec<u64> = ring.spans().iter().map(|s| s.trace_id).collect();
    assert_eq!(tags, (1..=CAP).collect::<Vec<_>>());
    assert_eq!(ring.spans_recorded(), CAP);

    // Exactly one more capacity's worth: the first generation is fully
    // evicted, order still oldest-first across the wrap seam.
    for tag in CAP + 1..=2 * CAP {
        record_tagged(&ring, tag);
    }
    let tags: Vec<u64> = ring.spans().iter().map(|s| s.trace_id).collect();
    assert_eq!(tags, (CAP + 1..=2 * CAP).collect::<Vec<_>>());
    assert_eq!(ring.spans_recorded(), 2 * CAP);

    // One past the boundary evicts exactly the oldest survivor.
    record_tagged(&ring, 2 * CAP + 1);
    let tags: Vec<u64> = ring.spans().iter().map(|s| s.trace_id).collect();
    assert_eq!(tags, (CAP + 2..=2 * CAP + 1).collect::<Vec<_>>());

    // Degenerate capacities: a one-slot ring holds the latest span; a
    // zero-slot ring records nothing and never panics on the modulus.
    let one = SpanRing::new(1, 1);
    for tag in 1..=5 {
        record_tagged(&one, tag);
    }
    assert_eq!(one.spans().len(), 1);
    assert_eq!(one.spans()[0].trace_id, 5);
    let zero = SpanRing::new(0, 1);
    record_tagged(&zero, 1);
    assert!(zero.spans().is_empty());
    assert!(!zero.is_enabled(), "capacity 0 forces sampling off");
}

#[test]
fn cross_tier_span_ring_survives_concurrent_writers_at_capacity() {
    // Capacity equals the total write count divided evenly, so the ring
    // wraps many times and writers collide on slots while a reader races
    // them (the seqlock must make it skip, never mix, a mid-write slot).
    let ring = Arc::new(SpanRing::new(16, 1));
    let done = Arc::new(AtomicBool::new(false));

    thread::scope(|s| {
        for w in 0..WRITERS {
            let ring = Arc::clone(&ring);
            s.spawn(move || {
                for i in 0..per_thread() {
                    record_tagged(&ring, w * 1_000_000 + i + 1);
                }
            });
        }
        let reader_ring = Arc::clone(&ring);
        let reader_done = Arc::clone(&done);
        let reader = s.spawn(move || {
            let mut snapshots = 0u64;
            loop {
                let spans = reader_ring.spans();
                assert!(spans.len() <= 16, "snapshot larger than the ring");
                assert_spans_untorn(&spans);
                snapshots += 1;
                if reader_done.load(Ordering::Acquire) {
                    break;
                }
            }
            snapshots
        });
        while ring.spans_recorded() < WRITERS * per_thread() {
            thread::yield_now();
        }
        done.store(true, Ordering::Release);
        assert!(reader.join().unwrap() > 0, "reader never snapshotted");
    });

    // Quiescent: full ring, every survivor consistent and distinct.
    let spans = ring.spans();
    assert_eq!(spans.len(), 16, "ring retains exactly its capacity once full");
    assert_spans_untorn(&spans);
    let mut tags: Vec<u64> = spans.iter().map(|s| s.trace_id).collect();
    tags.sort_unstable();
    tags.dedup();
    assert_eq!(tags.len(), 16, "a slot published two copies of one span");
    assert_eq!(ring.spans_recorded(), WRITERS * per_thread());
}

#[test]
fn span_id_minting_is_unique_under_contention() {
    // Ids parent causal links across tiers; a duplicate id would splice
    // two unrelated spans into one trace. Mint from all writers at once
    // and check global uniqueness (and that sampled mints interleaved
    // with explicit mints never collide either).
    let ring = Arc::new(SpanRing::new(8, 1));
    let ids = thread::scope(|s| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    let mut got = Vec::new();
                    for i in 0..per_thread() {
                        if (w + i) % 2 == 0 {
                            got.push(ring.next_span_id());
                        } else {
                            got.push(ring.try_sample().expect("1-in-1 always mints").span_id);
                        }
                    }
                    got
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().unwrap()).collect::<Vec<u64>>()
    });
    let mut sorted = ids.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ids.len(), "span id allocator produced a duplicate");
    assert!(!sorted.contains(&0), "id 0 is the unsampled sentinel and must never be minted");
}

#[test]
fn counters_and_histograms_lose_no_updates_under_contention() {
    let counter = Arc::new(Counter::default());
    let hist = Arc::new(Histogram::new());
    thread::scope(|s| {
        for _ in 0..WRITERS {
            let counter = Arc::clone(&counter);
            let hist = Arc::clone(&hist);
            s.spawn(move || {
                for i in 0..per_thread() {
                    counter.incr();
                    counter.add(2);
                    hist.record(i);
                }
            });
        }
    });
    assert_eq!(counter.get(), WRITERS * per_thread() * 3);
    assert_eq!(hist.count(), WRITERS * per_thread());
    assert_eq!(hist.snapshot().count, WRITERS * per_thread());
}

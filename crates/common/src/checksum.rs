//! CRC32 (IEEE 802.3 polynomial) used for page and log-block checksums.
//!
//! Implemented here rather than pulled in as a dependency to keep the
//! workspace's dependency footprint to the pre-approved set. The slice-by-4
//! table variant is fast enough that checksumming is never the bottleneck
//! for 8 KiB pages or log blocks.

/// The CRC32 lookup tables (slice-by-4), built at first use.
struct Tables([[u32; 256]; 4]);

impl Tables {
    const fn build() -> Tables {
        let mut t = [[0u32; 256]; 4];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut j = 0;
            while j < 8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                j += 1;
            }
            t[0][i] = crc;
            i += 1;
        }
        let mut k = 1;
        while k < 4 {
            let mut i = 0;
            while i < 256 {
                t[k][i] = (t[k - 1][i] >> 8) ^ t[0][(t[k - 1][i] & 0xFF) as usize];
                i += 1;
            }
            k += 1;
        }
        Tables(t)
    }
}

static TABLES: Tables = Tables::build();

/// Compute the CRC32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    crc32_with_seed(0, data)
}

/// Compute the CRC32 of `data`, chaining from a previous checksum.
///
/// `crc32_with_seed(crc32(a), b) == crc32(a ++ b)` does *not* hold for plain
/// concatenation with this API (the finalisation xor is applied each call);
/// use this only to checksum logically-separate regions with a distinguishing
/// seed, e.g. a page id, so identical bytes at different addresses produce
/// different checksums.
pub fn crc32_with_seed(seed: u32, data: &[u8]) -> u32 {
    let t = &TABLES.0;
    let mut crc = !seed;
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        crc ^= u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        crc = t[3][(crc & 0xFF) as usize]
            ^ t[2][((crc >> 8) & 0xFF) as usize]
            ^ t[1][((crc >> 16) & 0xFF) as usize]
            ^ t[0][((crc >> 24) & 0xFF) as usize];
    }
    for &b in chunks.remainder() {
        crc = t[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"abc"), 0x3524_41C2);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn seed_distinguishes_location() {
        let payload = vec![0xAB; 512];
        let a = crc32_with_seed(1, &payload);
        let b = crc32_with_seed(2, &payload);
        assert_ne!(a, b);
    }

    #[test]
    fn detects_single_bit_flip() {
        let mut data = vec![0u8; 8192];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        let good = crc32(&data);
        for bit in [0usize, 1, 7, 8 * 4096 + 3, 8 * 8191 + 7] {
            data[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(crc32(&data), good, "flip at bit {bit} undetected");
            data[bit / 8] ^= 1 << (bit % 8);
        }
        assert_eq!(crc32(&data), good);
    }

    #[test]
    fn unaligned_tails_match_bytewise() {
        // The slice-by-4 fast path and the byte tail must agree for every
        // length mod 4.
        let data: Vec<u8> = (0..=255u8).cycle().take(1027).collect();
        for len in [0, 1, 2, 3, 4, 5, 1023, 1024, 1025, 1026, 1027] {
            let fast = crc32(&data[..len]);
            // Reference: bit-by-bit implementation.
            let mut crc = !0u32;
            for &b in &data[..len] {
                crc ^= b as u32;
                for _ in 0..8 {
                    crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
                }
            }
            assert_eq!(fast, !crc, "mismatch at len {len}");
        }
    }
}

//! The workspace lock-rank table.
//!
//! Every long-lived lock is constructed with
//! `parking_lot::Mutex::with_rank` / `RwLock::with_rank` using a constant
//! from this module. In debug builds the shim panics when a thread's
//! blocking acquisitions do not strictly increase in rank — the runtime
//! enforcement of the acquisition order that `soclint`'s `lock-order`
//! rule checks statically (run `soclint --edges` for the live graph).
//!
//! Rank bands follow the **call graph by acquisition depth**: a tier may
//! call into any band with a *higher* rank while holding its own locks,
//! never the reverse. Note this is not the paper's tier order — it is
//! who-holds-while-calling-whom, measured by running the suites with the
//! checker on. The load-bearing chains:
//!
//! ```text
//! deployment → fabric → engine → cache.mem → wal flush → xlog → LZ/xstore
//! pageserver.mem → rbpex / xlog                 (apply + checkpoint)
//! wal.disseminators → hadr shipper              (log dissemination)
//! sched.sink → cache.mem                        (prefetch completion)
//! ```
//!
//! | band | locks |
//! |------|------------------------------------------|
//! | 100s | core (deployment slots, fabric, secondaries) |
//! | 200s | engine (catalog, txn, io, version, btree)    |
//! | 300s | pageserver (apply, checkpoint, handles)      |
//! | 500s | storage (scheduler, cache, rbpex)            |
//! | 600s | wal pipeline, then hadr (660s, shipped to from the pipeline) |
//! | 700s | xlog (710s), then the landing zone (750s, written from xlog) |
//! | 800s | rbio (replication transport)                 |
//! | 900s | xstore (page store service)                  |
//! | 1000s| common leaves (fault registry, obs)          |
//!
//! Fine-grained, dynamically created locks — per-page latches
//! (`PageRef`), per-fetch pendings, per-rule RNGs, per-blob FCBs — stay
//! *unranked* (rank 0, the `new()` default): they are never nested
//! against each other and ranking them would impose a global order on
//! objects whose population changes at runtime. The `MetricsHub`
//! registry lock is also deliberately unranked: `snapshot()` runs
//! caller-supplied sampling closures under its read guard, so its
//! effective position in the order depends on what those closures lock;
//! it is kept a leaf by review (closures must only read atomics).

// --- core (100s) ------------------------------------------------------
// Deployment-level slots are the *outermost* acquisitions (failover and
// restart paths hold them while driving the whole stack), so they sit at
// the bottom of the band.
/// `core::deployment::Socrates.primary` — the primary slot.
pub const CORE_DEPLOYMENT_PRIMARY: u32 = 101;
/// `core::deployment` secondary list (shared `SecondaryList`).
pub const CORE_DEPLOYMENT_SECONDARIES: u32 = 102;
/// `core::fabric::ApplySignal.lock` — the apply-watermark condvar mutex.
pub const CORE_APPLY_SIGNAL: u32 = 110;
/// `core::obs::LagWatcher.handle` — watcher join handle.
pub const CORE_LAG_WATCHER_HANDLE: u32 = 150;
/// `core::secondary` apply-loop join handle.
pub const CORE_SECONDARY_APPLY_HANDLE: u32 = 165;

// --- engine (200s) ----------------------------------------------------
/// `engine::db::Database.catalog` — table catalog. Held across table
/// create/open, which allocates pages (hence below the io hooks).
pub const ENGINE_CATALOG: u32 = 205;
/// `engine::txn::TxnManager.prepare_mutex` — commit-prepare serializer.
pub const ENGINE_TXN_PREPARE: u32 = 210;
/// `engine::txn::TxnManager.table` — live transaction table.
pub const ENGINE_TXN_TABLE: u32 = 220;
/// `engine::txn::TxnManager.aborted_map` — aborted-txn set.
pub const ENGINE_TXN_ABORTED: u32 = 230;
/// `engine::btree::BTree.lock` — tree structure latch. Held across node
/// splits, which allocate pages (hence below the io hook slots).
pub const ENGINE_BTREE: u32 = 235;
/// `engine::version::VersionStore.current` — current version slot. Held
/// across version-page allocation (hence below the io hook slots).
pub const ENGINE_VERSION_CURRENT: u32 = 238;
/// `engine::io::LoggedPageIo.trace` — commit-trace sink.
pub const ENGINE_IO_TRACE: u32 = 240;
/// `engine::io::LoggedPageIo.txn_begun` — begun-txn dedup map.
pub const ENGINE_IO_TXN_BEGUN: u32 = 250;
/// `engine::io::LoggedPageIo.on_allocate` — allocation hook slot.
pub const ENGINE_IO_ON_ALLOCATE: u32 = 255;
/// `engine::io::MemIo.pages` — in-memory page store map.
pub const ENGINE_MEM_PAGES: u32 = 290;

// --- fabric partition directory (300s, below pageserver) --------------
// These live in `core` but are acquired *beneath* engine locks: the
// engine's allocate hook upcalls into `Fabric::ensure_partition` while
// the caller holds `db.catalog`. They stay below the pageserver band
// because ensure/kill/restart hold them while starting and stopping
// page servers.
/// `core::fabric::Fabric.partitions` — partition handle map.
pub const CORE_FABRIC_PARTITIONS: u32 = 300;
/// `core::fabric::Fabric.partition_blobs` — partition blob directory.
pub const CORE_FABRIC_PARTITION_BLOBS: u32 = 304;
/// `core::fabric::Fabric.degraded_index` — degraded-secondary marker.
pub const CORE_FABRIC_DEGRADED: u32 = 308;
/// `core::fabric::Fabric.branches` — copy-on-write branch directory.
pub const CORE_FABRIC_BRANCHES: u32 = 306;

// --- pageserver (300s) ------------------------------------------------
// Below storage and xlog: the apply and checkpoint paths hold `mem` /
// `checkpoint_lock` while writing to the rbpex cache and reading xlog.
/// `pageserver::PageServer.checkpoint_lock` — single-checkpointer gate.
pub const PS_CHECKPOINT: u32 = 310;
/// `pageserver::PageServer.compact_lock` — single-compactor gate (held
/// while materializing pages through the layer map, hence below it).
pub const PS_COMPACT: u32 = 312;
/// `pageserver::PageServer.apply_mutex` — apply-loop serializer.
pub const PS_APPLY: u32 = 315;
/// `pageserver::PageServer.mem` — applied-page memory map.
pub const PS_MEM: u32 = 320;
/// `pageserver::PageServer.dirty` — dirty-page set.
pub const PS_DIRTY: u32 = 330;
/// `pageserver::PageServer.open` — the open (unsealed) L0 delta layer.
pub const PS_OPEN_LAYER: u32 = 335;
/// `pageserver::PageServer.apply_listener` — apply-progress listener.
pub const PS_APPLY_LISTENER: u32 = 340;
/// `pageserver::PageServer.apply_handle` — apply worker handle.
pub const PS_APPLY_HANDLE: u32 = 350;
/// `pageserver::PageServer.ckpt_handle` — checkpoint worker handle.
pub const PS_CKPT_HANDLE: u32 = 360;
/// `pageserver::PageServer.seed_handle` — seeding worker handle.
pub const PS_SEED_HANDLE: u32 = 370;

// --- secondary fetch dedup (400s, below storage) ----------------------
/// `core::secondary::PendingFetches.map` — in-flight page fetches.
/// Lives in `core` but is consulted on the secondary read path *under*
/// engine locks (btree descent → cache miss → fetch dedup), so it ranks
/// between the engine and storage bands.
pub const CORE_SECONDARY_PENDING: u32 = 450;

// --- storage (500s) ---------------------------------------------------
/// `storage::sched::IoScheduler.inflight` — in-flight request map.
pub const STORAGE_SCHED_INFLIGHT: u32 = 510;
/// `storage::sched::IoScheduler.q` — request queue.
pub const STORAGE_SCHED_QUEUE: u32 = 520;
/// `storage::sched::IoScheduler.sink` — completion sink (held while
/// installing completed prefetches into the cache, hence below `mem`).
pub const STORAGE_SCHED_SINK: u32 = 530;
/// `storage::sched::IoScheduler.tasks` — background task lane queue.
pub const STORAGE_SCHED_TASKS: u32 = 535;
/// `storage::sched::IoScheduler.workers` — worker join handles.
pub const STORAGE_SCHED_WORKERS: u32 = 540;
/// `storage::layermap::LayerMap.inner` — the layer index (images + delta
/// layers). Held only to snapshot/swap `Arc`'d layers; all page I/O
/// against a layer's backing store happens after release, so it sits
/// above the pageserver band and below the rbpex directory.
pub const STORAGE_LAYERMAP: u32 = 545;
/// `storage::cache::TieredCache.mem` — memory-tier map + clock. Held
/// across dirty-page eviction, which forces a WAL flush (hence below
/// the pipeline locks).
pub const STORAGE_CACHE_MEM: u32 = 550;
/// `storage::cache::TieredCache.read_trace` — read-trace sink.
pub const STORAGE_CACHE_TRACE: u32 = 560;
/// `storage::cache::TieredCache.spans` — causal span-ring slot.
pub const STORAGE_CACHE_SPANS: u32 = 565;
/// `storage::rbpex::Rbpex.dir` — resilient-cache directory.
pub const STORAGE_RBPEX_DIR: u32 = 570;
/// `engine::evicted::EvictedLsnMap.buckets` — eviction LSN buckets.
/// Lives in `engine` but is updated from the cache's eviction listener
/// *while `cache.mem` is held*, so it ranks just above the cache.
pub const ENGINE_EVICTED_BUCKETS: u32 = 580;

// --- wal pipeline (600s) ----------------------------------------------
/// `wal::pipeline::LogPipeline.flush_lock` — single-flusher gate.
pub const WAL_FLUSH_LOCK: u32 = 605;
/// `wal::pipeline::LogPipeline.buf` — append buffer.
pub const WAL_BUF: u32 = 610;
/// `wal::pipeline::LogPipeline.unflushed` — unflushed block queue.
pub const WAL_UNFLUSHED: u32 = 620;
/// `wal::pipeline::LogPipeline.wait_mutex` — durability-wait condvar mutex.
pub const WAL_WAIT: u32 = 630;
/// `wal::pipeline::LogPipeline.disseminators` — dissemination fan-out
/// list (held while offering blocks to the HADR shipper, hence below
/// the hadr band).
pub const WAL_DISSEMINATORS: u32 = 640;
/// `wal::pipeline::LogPipeline.spans` — causal span-ring slot.
pub const WAL_SPANS: u32 = 645;

// --- hadr (660s) ------------------------------------------------------
/// `hadr::Hadr.retained` — retained-page list for failback.
pub const HADR_RETAINED: u32 = 660;
/// `hadr::Replica.handle` — replica worker handle.
pub const HADR_HANDLE: u32 = 670;
/// `hadr::Hadr.rng` — failover jitter RNG.
pub const HADR_RNG: u32 = 680;
/// `hadr::ReplicaStore.pages` — replica page map.
pub const HADR_REPLICA_PAGES: u32 = 690;

// --- xlog (700s) ------------------------------------------------------
/// `xlog::service::XLogService.broker` — block broker state (held while
/// writing to the landing zone, hence below the LZ band).
pub const XLOG_BROKER: u32 = 710;
/// `xlog::service::XLogService.leases` — destage lease table.
pub const XLOG_LEASES: u32 = 720;
/// `xlog::service::XLogService.destager` — destager worker slot.
pub const XLOG_DESTAGER: u32 = 730;

// --- wal quorum log (740s) --------------------------------------------
// The quorum tier sits between xlog (700s, truncates it while holding
// the broker lock) and the landing zone band: the proposer's locks are
// taken on the pipeline's harden path and while campaigning, and the
// per-acceptor state lock is the innermost (taken by replication
// workers). Acceptor state locks are never nested against each other —
// catch-up reads the donor's block, releases, then appends to the
// laggard.
/// `wal::quorum::QuorumLog.write_gate` — single-writer append gate.
pub const WAL_QUORUM_WRITE: u32 = 740;
/// `wal::quorum::QuorumLog.state` — proposer term/history/head.
pub const WAL_QUORUM_STATE: u32 = 742;
/// `wal::quorum::QuorumLog.worker_handles` — replication worker handles.
pub const WAL_QUORUM_WORKERS: u32 = 744;
/// `wal::quorum::Acceptor.state` — per-acceptor log + term state.
pub const WAL_ACCEPTOR_STATE: u32 = 746;
/// `wal::quorum::QuorumLog.faults` — fault registry slot.
pub const WAL_QUORUM_FAULTS: u32 = 748;

// --- wal landing zone (750s) ------------------------------------------
/// `wal::landing_zone::LandingZone.worker_handles` — LZ worker handles.
pub const WAL_LZ_WORKERS: u32 = 750;
/// `wal::landing_zone::LandingZone.state` — LZ head/tail watermarks.
pub const WAL_LZ_STATE: u32 = 760;
/// `wal::landing_zone::LandingZone.faults` — fault registry slot.
pub const WAL_LZ_FAULTS: u32 = 770;

// --- rbio (800s) ------------------------------------------------------
/// `rbio::replica::ReplicaSet.states` — per-replica delivery states.
pub const RBIO_REPLICA_STATES: u32 = 850;
/// `rbio::transport::RbioClient.rng` — loss/delay decision RNG.
pub const RBIO_TRANSPORT_RNG: u32 = 860;

// --- xstore (900s) ----------------------------------------------------
/// `xstore::service::XStore.inner` — blob map + version index.
pub const XSTORE_INNER: u32 = 910;
/// `xstore::service::XStore.faults` — fault registry slot.
pub const XSTORE_FAULTS: u32 = 920;

// --- common leaves (1000s) --------------------------------------------
/// `common::fault::FaultRegistry.sites` — fault-site table (every tier
/// calls `check` under its own locks, so this must outrank them all).
pub const COMMON_FAULT_SITES: u32 = 1010;
/// `common::fault::FaultRegistry.hub` — bound metrics hub slot.
pub const COMMON_FAULT_HUB: u32 = 1020;
/// `common::fault::FaultRegistry.log` — injection log.
pub const COMMON_FAULT_LOG: u32 = 1030;
/// `common::obs::span::SlowRing` — slow-op admission ring.
pub const COMMON_OBS_SLOW: u32 = 1050;
/// `common::obs::history::HubHistory.ring` — retained hub snapshots.
/// The hub snapshot itself runs *before* this lock is taken, so the
/// ring stays a leaf below every sampling closure's own locks.
pub const COMMON_OBS_HISTORY: u32 = 1060;

// --- bench load observatory (1100s) -----------------------------------
/// `bench::loadgen::LoadRecorder.phases` — phase registry; hub sampling
/// closures read the current phase under it, so it sits above every
/// tier lock and below only other bench leaves.
pub const BENCH_LOAD_PHASES: u32 = 1110;
/// `bench::loadgen::Phase.slow` — slowest-op table of one phase.
pub const BENCH_LOAD_SLOW: u32 = 1120;

#[cfg(test)]
mod tests {
    #[test]
    fn ranks_are_unique() {
        let all: &[u32] = &[
            super::CORE_DEPLOYMENT_PRIMARY,
            super::CORE_DEPLOYMENT_SECONDARIES,
            super::CORE_APPLY_SIGNAL,
            super::CORE_FABRIC_PARTITIONS,
            super::CORE_FABRIC_PARTITION_BLOBS,
            super::CORE_FABRIC_DEGRADED,
            super::CORE_FABRIC_BRANCHES,
            super::CORE_LAG_WATCHER_HANDLE,
            super::CORE_SECONDARY_PENDING,
            super::CORE_SECONDARY_APPLY_HANDLE,
            super::ENGINE_CATALOG,
            super::ENGINE_TXN_PREPARE,
            super::ENGINE_TXN_TABLE,
            super::ENGINE_TXN_ABORTED,
            super::ENGINE_IO_TRACE,
            super::ENGINE_IO_TXN_BEGUN,
            super::ENGINE_IO_ON_ALLOCATE,
            super::ENGINE_VERSION_CURRENT,
            super::ENGINE_BTREE,
            super::ENGINE_MEM_PAGES,
            super::ENGINE_EVICTED_BUCKETS,
            super::PS_CHECKPOINT,
            super::PS_COMPACT,
            super::PS_APPLY,
            super::PS_MEM,
            super::PS_DIRTY,
            super::PS_OPEN_LAYER,
            super::PS_APPLY_LISTENER,
            super::PS_APPLY_HANDLE,
            super::PS_CKPT_HANDLE,
            super::PS_SEED_HANDLE,
            super::STORAGE_SCHED_INFLIGHT,
            super::STORAGE_SCHED_QUEUE,
            super::STORAGE_SCHED_SINK,
            super::STORAGE_SCHED_TASKS,
            super::STORAGE_SCHED_WORKERS,
            super::STORAGE_LAYERMAP,
            super::STORAGE_CACHE_MEM,
            super::STORAGE_CACHE_TRACE,
            super::STORAGE_CACHE_SPANS,
            super::STORAGE_RBPEX_DIR,
            super::WAL_FLUSH_LOCK,
            super::WAL_BUF,
            super::WAL_UNFLUSHED,
            super::WAL_WAIT,
            super::WAL_DISSEMINATORS,
            super::WAL_SPANS,
            super::HADR_RETAINED,
            super::HADR_HANDLE,
            super::HADR_RNG,
            super::HADR_REPLICA_PAGES,
            super::XLOG_BROKER,
            super::XLOG_LEASES,
            super::XLOG_DESTAGER,
            super::WAL_LZ_WORKERS,
            super::WAL_LZ_STATE,
            super::WAL_LZ_FAULTS,
            super::RBIO_REPLICA_STATES,
            super::RBIO_TRANSPORT_RNG,
            super::XSTORE_INNER,
            super::XSTORE_FAULTS,
            super::COMMON_FAULT_SITES,
            super::COMMON_FAULT_HUB,
            super::COMMON_FAULT_LOG,
            super::COMMON_OBS_SLOW,
            super::COMMON_OBS_HISTORY,
            super::BENCH_LOAD_PHASES,
            super::BENCH_LOAD_SLOW,
        ];
        let mut sorted = all.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), all.len(), "duplicate rank constant");
        assert!(all.iter().all(|&r| r > 0), "rank 0 is reserved for unranked locks");
    }
}

//! Deterministic random number generation.
//!
//! Workload generators and latency models need fast, seedable randomness
//! that reproduces exactly across runs, so experiments are repeatable. We
//! use SplitMix64 for seeding and xoshiro256** for the stream — both public
//! domain algorithms — plus the samplers the workloads need: uniform ranges,
//! a Zipf sampler (rejection-inversion, after Hörmann & Derflinger) for the
//! skewed TPC-E-like access pattern, and a standard-normal sampler used by
//! the log-normal latency model.

/// A fast, seedable PRNG (xoshiro256**).
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> Rng {
        // SplitMix64 to expand the seed into a full state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng { s: [next(), next(), next(), next()] }
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift with rejection for unbiased output.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn gen_range_in(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.gen_range(hi - lo)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Standard normal via the polar (Marsaglia) method.
    pub fn gen_normal(&mut self) -> f64 {
        loop {
            let u = 2.0 * self.gen_f64() - 1.0;
            let v = 2.0 * self.gen_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Fill `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }

    /// Pick an index according to `weights` (need not be normalised).
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut x = self.gen_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

/// Zipf-distributed sampler over `{1, ..., n}` with exponent `s > 0`.
///
/// Uses rejection-inversion (Hörmann & Derflinger 1996), the same algorithm
/// as `rand_distr::Zipf`, so sampling is O(1) with no O(n) tables — the
/// TPC-E-like workload draws from millions of customers.
#[derive(Clone, Debug)]
pub struct Zipf {
    n: f64,
    h_x1: f64,
    h_n: f64,
    q: f64,
}

impl Zipf {
    /// Create a sampler over `{1, ..., n}` with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s <= 0`.
    pub fn new(n: u64, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a nonempty domain");
        assert!(s > 0.0, "Zipf exponent must be positive");
        let nf = n as f64;
        let q = s;
        let h = |x: f64| -> f64 {
            if (q - 1.0).abs() < 1e-9 {
                x.ln()
            } else {
                (x.powf(1.0 - q) - 1.0) / (1.0 - q)
            }
        };
        Zipf { n: nf, h_x1: h(1.5) - 1.0f64.powf(-q), h_n: h(nf + 0.5), q }
    }

    fn h(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.ln()
        } else {
            (x.powf(1.0 - self.q) - 1.0) / (1.0 - self.q)
        }
    }

    fn h_inv(&self, x: f64) -> f64 {
        if (self.q - 1.0).abs() < 1e-9 {
            x.exp()
        } else {
            (1.0 + x * (1.0 - self.q)).powf(1.0 / (1.0 - self.q))
        }
    }

    /// Draw a sample in `{1, ..., n}`; rank 1 is the hottest.
    pub fn sample(&self, rng: &mut Rng) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen_f64() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n);
            if k - x <= self.s_accept(k) || u >= self.h(k + 0.5) - k.powf(-self.q) {
                return k as u64;
            }
        }
    }

    // Shortcut acceptance region width (always accept when k is close to x).
    fn s_accept(&self, _k: f64) -> f64 {
        // Conservative: rely on the exact test in `sample`. Returning a
        // negative width disables the shortcut without affecting
        // correctness.
        -1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(43);
        assert_ne!(Rng::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut rng = Rng::new(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.gen_range(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in small range hit");
        for _ in 0..100 {
            let v = rng.gen_range_in(5, 8);
            assert!((5..8).contains(&v));
        }
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::new(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn normal_has_unit_variance() {
        let mut rng = Rng::new(3);
        let n = 20_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.gen_normal();
            sum += v;
            sumsq += v * v;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn zipf_is_skewed_and_in_range() {
        let mut rng = Rng::new(11);
        let z = Zipf::new(1_000_000, 1.1);
        let n = 50_000;
        let mut top10 = 0usize;
        for _ in 0..n {
            let v = z.sample(&mut rng);
            assert!((1..=1_000_000).contains(&v));
            if v <= 10 {
                top10 += 1;
            }
        }
        // With s=1.1 over 1e6 items the top-10 ranks get a large share.
        let frac = top10 as f64 / n as f64;
        assert!(frac > 0.2, "zipf insufficiently skewed: top10 frac {frac}");
    }

    #[test]
    fn zipf_rank_one_most_frequent() {
        let mut rng = Rng::new(5);
        let z = Zipf::new(100, 1.0);
        let mut counts = [0usize; 101];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[10]);
        assert!(counts[10] > counts[90].saturating_sub(50));
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mut rng = Rng::new(9);
        let weights = [0.0, 1.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[rng.pick_weighted(&weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let ratio = counts[2] as f64 / counts[1] as f64;
        assert!((ratio - 3.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = Rng::new(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}

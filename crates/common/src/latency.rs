//! Latency models for the storage devices and network hops in a deployment.
//!
//! The paper's Appendix A shows that swapping the landing-zone storage
//! service (Azure Premium Storage "XIO" vs the newer "DirectDrive") changes
//! commit latency, throughput, and CPU cost without touching a line of
//! Socrates code. We reproduce that by modelling each device as a latency
//! distribution that I/O paths sample from; a deployment picks profiles the
//! way the real system picks Azure services.
//!
//! The distributions are log-normal around a calibrated median with a heavy
//! spike tail, clamped to `[min, max]` — the shape visible in the paper's
//! Table 6 (min/median close together, max an order of magnitude out).

use crate::rng::Rng;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A sampled latency distribution for one operation class (read or write).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// Fastest possible service time, microseconds.
    pub min_us: u64,
    /// Median service time, microseconds.
    pub median_us: u64,
    /// Log-normal shape parameter (spread of the body of the distribution).
    pub sigma: f64,
    /// Hard ceiling, microseconds (queueing spikes never exceed this).
    pub max_us: u64,
    /// Probability of a tail spike (device hiccup / retry inside the
    /// service), which multiplies the sampled value by up to
    /// `max_us / median_us`.
    pub spike_p: f64,
}

impl LatencyModel {
    /// A model that always reports zero latency.
    pub const fn zero() -> LatencyModel {
        LatencyModel { min_us: 0, median_us: 0, sigma: 0.0, max_us: 0, spike_p: 0.0 }
    }

    /// A fixed latency with no variance; useful in tests.
    pub const fn fixed(us: u64) -> LatencyModel {
        LatencyModel { min_us: us, median_us: us, sigma: 0.0, max_us: us, spike_p: 0.0 }
    }

    /// Sample one service time.
    pub fn sample(&self, rng: &mut Rng) -> Duration {
        if self.max_us == 0 {
            return Duration::ZERO;
        }
        let body = (self.median_us - self.min_us) as f64;
        let mut us = self.min_us as f64 + body * (self.sigma * rng.gen_normal()).exp();
        if self.spike_p > 0.0 && rng.gen_bool(self.spike_p) {
            let headroom = self.max_us as f64 / us.max(1.0);
            us *= 1.0 + rng.gen_f64() * (headroom - 1.0).max(0.0);
        }
        Duration::from_micros((us as u64).clamp(self.min_us, self.max_us))
    }
}

/// CPU cost model for issuing one I/O against a device/service.
///
/// The paper's Table 7 hinges on this: XIO is driven through "expensive REST
/// calls" while DirectDrive uses "cheaper Win32 calls", so at equal log
/// throughput XIO burns ~3x the primary's CPU. Components charge these
/// modelled costs to their [`crate::metrics::CpuAccountant`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IoCpuCost {
    /// Fixed CPU microseconds charged per operation.
    pub per_op_us: u64,
    /// Additional CPU microseconds charged per 4 KiB transferred.
    pub per_4kib_us: u64,
}

impl IoCpuCost {
    /// Total modelled CPU microseconds for transferring `bytes`.
    pub fn cost_us(&self, bytes: usize) -> u64 {
        self.per_op_us + self.per_4kib_us * (bytes as u64).div_ceil(4096)
    }
}

/// A named device/service profile: latency distributions plus CPU cost.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable name ("XIO", "DirectDrive", ...).
    pub name: &'static str,
    /// Read service time distribution.
    pub read: LatencyModel,
    /// Write service time distribution.
    pub write: LatencyModel,
    /// CPU cost charged to the *issuing* node per I/O.
    pub cpu: IoCpuCost,
}

impl DeviceProfile {
    /// Azure Premium Storage ("XIO"), the original Hyperscale landing zone.
    /// Write latencies calibrated to the paper's Table 6 (min 2518 µs,
    /// median 3300 µs, max 36864 µs); driven via costly REST calls.
    pub fn xio() -> DeviceProfile {
        DeviceProfile {
            name: "XIO",
            read: LatencyModel {
                min_us: 900,
                median_us: 1400,
                sigma: 0.25,
                max_us: 30_000,
                spike_p: 0.004,
            },
            write: LatencyModel {
                min_us: 2518,
                median_us: 3300,
                sigma: 0.12,
                max_us: 36_864,
                spike_p: 0.0015,
            },
            // REST + HTTPS marshalling per request: the expensive driver
            // the paper's Table 7 blames for XIO's CPU cost.
            cpu: IoCpuCost { per_op_us: 650, per_4kib_us: 18 },
        }
    }

    /// DirectDrive ("DD"), the RDMA-era block service from Appendix A.
    /// Write latencies calibrated to Table 6 (min 484 µs, median 800 µs,
    /// max 39857 µs); driven via cheap syscalls.
    pub fn direct_drive() -> DeviceProfile {
        DeviceProfile {
            name: "DirectDrive",
            read: LatencyModel {
                min_us: 250,
                median_us: 420,
                sigma: 0.3,
                max_us: 30_000,
                spike_p: 0.002,
            },
            write: LatencyModel {
                min_us: 484,
                median_us: 800,
                sigma: 0.28,
                max_us: 39_857,
                spike_p: 0.002,
            },
            // Thin block-device calls ("cheaper Win32 calls").
            cpu: IoCpuCost { per_op_us: 25, per_4kib_us: 3 },
        }
    }

    /// Locally-attached NVMe SSD (RBPEX backing store, XLOG block cache).
    pub fn local_ssd() -> DeviceProfile {
        DeviceProfile {
            name: "LocalSSD",
            read: LatencyModel {
                min_us: 35,
                median_us: 80,
                sigma: 0.3,
                max_us: 4_000,
                spike_p: 0.001,
            },
            write: LatencyModel {
                min_us: 25,
                median_us: 60,
                sigma: 0.3,
                max_us: 4_000,
                spike_p: 0.001,
            },
            cpu: IoCpuCost { per_op_us: 4, per_4kib_us: 1 },
        }
    }

    /// XStore: the cheap, durable, HDD-based Azure Storage standard tier.
    pub fn xstore() -> DeviceProfile {
        DeviceProfile {
            name: "XStore",
            read: LatencyModel {
                min_us: 1_800,
                median_us: 6_500,
                sigma: 0.5,
                max_us: 250_000,
                spike_p: 0.01,
            },
            write: LatencyModel {
                min_us: 2_500,
                median_us: 9_000,
                sigma: 0.5,
                max_us: 300_000,
                spike_p: 0.01,
            },
            cpu: IoCpuCost { per_op_us: 90, per_4kib_us: 5 },
        }
    }

    /// One intra-datacenter network hop (RBIO request/response leg).
    pub fn lan() -> DeviceProfile {
        DeviceProfile {
            name: "LAN",
            read: LatencyModel {
                min_us: 28,
                median_us: 65,
                sigma: 0.35,
                max_us: 5_000,
                spike_p: 0.002,
            },
            write: LatencyModel {
                min_us: 28,
                median_us: 65,
                sigma: 0.35,
                max_us: 5_000,
                spike_p: 0.002,
            },
            cpu: IoCpuCost { per_op_us: 6, per_4kib_us: 1 },
        }
    }

    /// A cross-region hop, for geo-replicated secondaries.
    pub fn wan() -> DeviceProfile {
        DeviceProfile {
            name: "WAN",
            read: LatencyModel {
                min_us: 28_000,
                median_us: 35_000,
                sigma: 0.15,
                max_us: 400_000,
                spike_p: 0.01,
            },
            write: LatencyModel {
                min_us: 28_000,
                median_us: 35_000,
                sigma: 0.15,
                max_us: 400_000,
                spike_p: 0.01,
            },
            cpu: IoCpuCost { per_op_us: 6, per_4kib_us: 1 },
        }
    }

    /// HADR log shipping: the commit-critical path of the replicated state
    /// machine — network to a secondary plus its log flush on a loaded
    /// disk. Calibrated so quorum commit lands near the paper's ~3 ms
    /// (Table 1).
    pub fn hadr_ship() -> DeviceProfile {
        DeviceProfile {
            name: "HADR-ship",
            read: LatencyModel {
                min_us: 1_900,
                median_us: 3_000,
                sigma: 0.2,
                max_us: 45_000,
                spike_p: 0.004,
            },
            write: LatencyModel {
                min_us: 1_900,
                median_us: 3_000,
                sigma: 0.2,
                max_us: 45_000,
                spike_p: 0.004,
            },
            cpu: IoCpuCost { per_op_us: 25, per_4kib_us: 3 },
        }
    }

    /// Zero-latency, zero-CPU profile for unit tests.
    pub fn instant() -> DeviceProfile {
        DeviceProfile {
            name: "Instant",
            read: LatencyModel::zero(),
            write: LatencyModel::zero(),
            cpu: IoCpuCost { per_op_us: 0, per_4kib_us: 0 },
        }
    }
}

/// Whether sampled latencies are actually waited out.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyMode {
    /// Never wait; `delay` returns immediately reporting zero. Unit tests.
    Disabled,
    /// Wait for `sample * scale` of real time. `scale = 1.0` reproduces the
    /// calibrated distributions; smaller scales speed up long experiments
    /// while preserving relative shapes.
    Enabled { scale: f64 },
}

impl LatencyMode {
    /// Full-fidelity real-time waiting.
    pub const fn real() -> LatencyMode {
        LatencyMode::Enabled { scale: 1.0 }
    }
}

/// Shareable latency injector bound to one device profile.
///
/// One injector per device instance; cheap to clone (internally `Arc`).
#[derive(Clone)]
pub struct LatencyInjector {
    inner: Arc<Inner>,
}

struct Inner {
    profile: DeviceProfile,
    mode: LatencyMode,
    rng: Mutex<Rng>,
}

impl LatencyInjector {
    /// Create an injector for `profile` in `mode`, seeded deterministically.
    pub fn new(profile: DeviceProfile, mode: LatencyMode, seed: u64) -> LatencyInjector {
        LatencyInjector {
            inner: Arc::new(Inner { profile, mode, rng: Mutex::new(Rng::new(seed)) }),
        }
    }

    /// An injector that never waits (unit tests).
    pub fn disabled() -> LatencyInjector {
        LatencyInjector::new(DeviceProfile::instant(), LatencyMode::Disabled, 0)
    }

    /// The underlying profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.inner.profile
    }

    /// Sample and (per mode) wait out one read service time.
    /// Returns the *modelled* (unscaled) duration.
    pub fn read_delay(&self) -> Duration {
        self.delay(true)
    }

    /// Sample and (per mode) wait out one write service time.
    /// Returns the *modelled* (unscaled) duration.
    pub fn write_delay(&self) -> Duration {
        self.delay(false)
    }

    /// Modelled CPU microseconds for an I/O of `bytes` on this device.
    pub fn cpu_cost_us(&self, bytes: usize) -> u64 {
        self.inner.profile.cpu.cost_us(bytes)
    }

    fn delay(&self, is_read: bool) -> Duration {
        let model = if is_read { &self.inner.profile.read } else { &self.inner.profile.write };
        match self.inner.mode {
            LatencyMode::Disabled => Duration::ZERO,
            LatencyMode::Enabled { scale } => {
                let d = {
                    let mut rng = self.inner.rng.lock();
                    model.sample(&mut rng)
                };
                precise_sleep(d.mul_f64(scale.max(0.0)));
                d
            }
        }
    }
}

/// Sleep for `d` with sub-millisecond accuracy.
///
/// `thread::sleep` on Linux is accurate to tens of microseconds via
/// hrtimers; below ~120 µs we spin instead to avoid the scheduler quantising
/// short waits upward, which would distort the calibrated medians.
pub fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    if d >= Duration::from_micros(120) {
        std::thread::sleep(d);
    } else {
        let end = Instant::now() + d;
        while Instant::now() < end {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_respect_bounds() {
        let m = DeviceProfile::xio().write;
        let mut rng = Rng::new(1);
        for _ in 0..20_000 {
            let d = m.sample(&mut rng).as_micros() as u64;
            assert!(d >= m.min_us, "{d} < min {}", m.min_us);
            assert!(d <= m.max_us, "{d} > max {}", m.max_us);
        }
    }

    #[test]
    fn median_is_calibrated() {
        let m = DeviceProfile::xio().write;
        let mut rng = Rng::new(2);
        let mut v: Vec<u64> = (0..40_001).map(|_| m.sample(&mut rng).as_micros() as u64).collect();
        v.sort_unstable();
        let median = v[v.len() / 2];
        // Within 15% of the paper's 3300 µs.
        assert!((median as f64 - 3300.0).abs() / 3300.0 < 0.15, "median {median} not near 3300");
    }

    #[test]
    fn dd_is_roughly_4x_faster_than_xio() {
        let mut rng = Rng::new(3);
        let xio = DeviceProfile::xio().write;
        let dd = DeviceProfile::direct_drive().write;
        let med = |m: &LatencyModel, rng: &mut Rng| {
            let mut v: Vec<u64> = (0..10_001).map(|_| m.sample(rng).as_micros() as u64).collect();
            v.sort_unstable();
            v[v.len() / 2] as f64
        };
        let ratio = med(&xio, &mut rng) / med(&dd, &mut rng);
        assert!(ratio > 3.0 && ratio < 6.0, "XIO/DD median ratio {ratio}");
    }

    #[test]
    fn zero_model_and_disabled_injector() {
        let mut rng = Rng::new(4);
        assert_eq!(LatencyModel::zero().sample(&mut rng), Duration::ZERO);
        let inj = LatencyInjector::disabled();
        assert_eq!(inj.read_delay(), Duration::ZERO);
        assert_eq!(inj.write_delay(), Duration::ZERO);
        assert_eq!(inj.cpu_cost_us(8192), 0);
    }

    #[test]
    fn fixed_model_is_constant() {
        let mut rng = Rng::new(5);
        let m = LatencyModel::fixed(500);
        for _ in 0..100 {
            assert_eq!(m.sample(&mut rng), Duration::from_micros(500));
        }
    }

    #[test]
    fn cpu_cost_scales_with_bytes() {
        let c = IoCpuCost { per_op_us: 100, per_4kib_us: 10 };
        assert_eq!(c.cost_us(0), 100);
        assert_eq!(c.cost_us(1), 110);
        assert_eq!(c.cost_us(4096), 110);
        assert_eq!(c.cost_us(4097), 120);
        assert_eq!(c.cost_us(64 * 1024), 100 + 160);
        // XIO is much more CPU-expensive per op than DD (Table 7's driver).
        assert!(
            DeviceProfile::xio().cpu.cost_us(4096)
                > 3 * DeviceProfile::direct_drive().cpu.cost_us(4096)
        );
    }

    #[test]
    fn injector_scale_shrinks_wall_time() {
        let prof = DeviceProfile {
            name: "t",
            read: LatencyModel::fixed(20_000),
            write: LatencyModel::fixed(20_000),
            cpu: IoCpuCost { per_op_us: 0, per_4kib_us: 0 },
        };
        let inj = LatencyInjector::new(prof, LatencyMode::Enabled { scale: 0.05 }, 1);
        let t0 = Instant::now();
        let modelled = inj.write_delay();
        let wall = t0.elapsed();
        assert_eq!(modelled, Duration::from_micros(20_000));
        assert!(wall < Duration::from_millis(10), "scale not applied: {wall:?}");
    }
}

//! Log sequence numbers.
//!
//! Socrates, like SQL Server, identifies every position in the transaction
//! log with a log sequence number. We model LSNs as byte offsets into a
//! single, conceptually infinite log stream: the LSN of a record is the
//! offset of its first byte, and the "end LSN" of a block is the offset one
//! past its last byte. Byte-offset LSNs make landing-zone wraparound
//! arithmetic and destaging bookkeeping straightforward.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A position in the database log, measured in bytes from the start of the
/// log stream.
///
/// `Lsn` is totally ordered; larger means later. [`Lsn::ZERO`] is the start
/// of the log and is never the address of a real record (the log begins with
/// a header record), so it doubles as "no LSN yet" in progress tracking.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The beginning of the log stream.
    pub const ZERO: Lsn = Lsn(0);
    /// A sentinel larger than every real LSN.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Construct an LSN from a raw byte offset.
    #[inline]
    pub const fn new(offset: u64) -> Self {
        Lsn(offset)
    }

    /// The raw byte offset.
    #[inline]
    pub const fn offset(self) -> u64 {
        self.0
    }

    /// Whether this LSN is the zero sentinel.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The number of bytes between `self` and an earlier LSN.
    ///
    /// # Panics
    /// Panics if `earlier > self`.
    #[inline]
    pub fn distance_from(self, earlier: Lsn) -> u64 {
        assert!(earlier <= self, "LSN distance underflow: {earlier} > {self}");
        self.0 - earlier.0
    }

    /// Saturating maximum of two LSNs.
    #[inline]
    pub fn max(self, other: Lsn) -> Lsn {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating minimum of two LSNs.
    #[inline]
    pub fn min(self, other: Lsn) -> Lsn {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl Add<u64> for Lsn {
    type Output = Lsn;
    #[inline]
    fn add(self, rhs: u64) -> Lsn {
        Lsn(self.0.checked_add(rhs).expect("LSN overflow"))
    }
}

impl AddAssign<u64> for Lsn {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        *self = *self + rhs;
    }
}

impl Sub<Lsn> for Lsn {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Lsn) -> u64 {
        self.distance_from(rhs)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl From<u64> for Lsn {
    fn from(v: u64) -> Self {
        Lsn(v)
    }
}

/// An atomic cell holding an LSN, used for watermarks shared across threads
/// (applied LSN, hardened LSN, destaged LSN, truncation point, ...).
#[derive(Debug, Default)]
pub struct AtomicLsn(std::sync::atomic::AtomicU64);

impl AtomicLsn {
    /// Create a watermark initialised to `lsn`.
    pub fn new(lsn: Lsn) -> Self {
        AtomicLsn(std::sync::atomic::AtomicU64::new(lsn.0))
    }

    /// Read the current watermark.
    #[inline]
    pub fn load(&self) -> Lsn {
        // ordering: acquire — a watermark read also acquires whatever the
        // advancing thread published before moving it (log bytes, applied pages)
        Lsn(self.0.load(std::sync::atomic::Ordering::Acquire))
    }

    /// Unconditionally set the watermark.
    #[inline]
    pub fn store(&self, lsn: Lsn) {
        // ordering: release — publishes the state the new watermark covers
        self.0.store(lsn.0, std::sync::atomic::Ordering::Release)
    }

    /// Advance the watermark to `lsn` if it is currently behind it.
    /// Returns the previous value.
    pub fn advance_to(&self, lsn: Lsn) -> Lsn {
        // ordering: acqrel — monotone advance must both publish covered state
        // and observe a concurrent advancer's, whichever wins the max
        Lsn(self.0.fetch_max(lsn.0, std::sync::atomic::Ordering::AcqRel))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_and_arithmetic() {
        let a = Lsn::new(100);
        let b = a + 28;
        assert!(b > a);
        assert_eq!(b - a, 28);
        assert_eq!(b.distance_from(a), 28);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    #[should_panic(expected = "LSN distance underflow")]
    fn distance_underflow_panics() {
        let _ = Lsn::new(5).distance_from(Lsn::new(6));
    }

    #[test]
    fn zero_sentinel() {
        assert!(Lsn::ZERO.is_zero());
        assert!(!Lsn::new(1).is_zero());
        assert!(Lsn::MAX > Lsn::new(u64::MAX - 1));
    }

    #[test]
    fn atomic_advance_is_monotonic() {
        let w = AtomicLsn::new(Lsn::new(10));
        w.advance_to(Lsn::new(5));
        assert_eq!(w.load(), Lsn::new(10));
        w.advance_to(Lsn::new(20));
        assert_eq!(w.load(), Lsn::new(20));
        w.store(Lsn::new(3));
        assert_eq!(w.load(), Lsn::new(3));
    }

    #[test]
    fn display_format() {
        assert_eq!(Lsn::new(42).to_string(), "lsn:42");
        assert_eq!(format!("{:?}", Lsn::new(42)), "lsn:42");
    }
}

//! The workspace-wide error type.
//!
//! Socrates is a distributed system of mini-services; errors are part of the
//! protocol surface. The variants distinguish the conditions callers react
//! to differently: transient unavailability (retry or fail over), data
//! corruption (fail the replica, reseed), write conflicts (abort the
//! transaction), and plain programming or configuration mistakes.

use std::fmt;

/// Result alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by any socrates-rs component.
#[derive(Clone, PartialEq, Eq)]
pub enum Error {
    /// An underlying I/O operation failed (device error, short read, ...).
    Io(String),
    /// Stored bytes failed validation (bad checksum, bad magic, torn write).
    Corruption(String),
    /// The requested object does not exist.
    NotFound(String),
    /// The service is temporarily unavailable; the operation may be retried.
    Unavailable(String),
    /// An MVCC write-write conflict; the transaction must abort.
    WriteConflict(String),
    /// The transaction was aborted (explicitly or by the system).
    TxnAborted(String),
    /// A wait exceeded its deadline.
    Timeout(String),
    /// A remote peer spoke a different or corrupt protocol.
    Protocol(String),
    /// The caller supplied an invalid argument or configuration.
    InvalidArgument(String),
    /// An operation is not valid in the current state (e.g. writing on a
    /// read-only secondary, using a closed service).
    InvalidState(String),
    /// Every replica of a replicated service failed the call. Transient —
    /// the set may recover — but distinguishable from a single-replica
    /// failure so degradation paths (fall back to XStore) can match on it.
    AllReplicasFailed {
        /// Total attempts made across all replicas before giving up.
        attempts: u32,
    },
}

impl Error {
    /// Whether the operation that produced this error may succeed if simply
    /// retried (possibly against another replica).
    pub fn is_transient(&self) -> bool {
        matches!(self, Error::Unavailable(_) | Error::Timeout(_) | Error::AllReplicasFailed { .. })
    }

    /// A short machine-friendly tag for the variant, used in metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Error::Io(_) => "io",
            Error::Corruption(_) => "corruption",
            Error::NotFound(_) => "not_found",
            Error::Unavailable(_) => "unavailable",
            Error::WriteConflict(_) => "write_conflict",
            Error::TxnAborted(_) => "txn_aborted",
            Error::Timeout(_) => "timeout",
            Error::Protocol(_) => "protocol",
            Error::InvalidArgument(_) => "invalid_argument",
            Error::InvalidState(_) => "invalid_state",
            Error::AllReplicasFailed { .. } => "all_replicas_failed",
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (kind, msg) = match self {
            Error::AllReplicasFailed { attempts } => {
                return write!(f, "all replicas failed: {attempts} attempts exhausted");
            }
            Error::Io(m) => ("io error", m),
            Error::Corruption(m) => ("corruption", m),
            Error::NotFound(m) => ("not found", m),
            Error::Unavailable(m) => ("unavailable", m),
            Error::WriteConflict(m) => ("write conflict", m),
            Error::TxnAborted(m) => ("transaction aborted", m),
            Error::Timeout(m) => ("timeout", m),
            Error::Protocol(m) => ("protocol error", m),
            Error::InvalidArgument(m) => ("invalid argument", m),
            Error::InvalidState(m) => ("invalid state", m),
        };
        write!(f, "{kind}: {msg}")
    }
}

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for Error {}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transient_classification() {
        assert!(Error::Unavailable("x".into()).is_transient());
        assert!(Error::Timeout("x".into()).is_transient());
        assert!(!Error::Corruption("x".into()).is_transient());
        assert!(!Error::WriteConflict("x".into()).is_transient());
    }

    #[test]
    fn display_and_kind() {
        let e = Error::NotFound("page:9".into());
        assert_eq!(e.to_string(), "not found: page:9");
        assert_eq!(e.kind(), "not_found");
        let e: Error = std::io::Error::other("boom").into();
        assert_eq!(e.kind(), "io");
    }
}

//! Deterministic fault injection for the Socrates failure modes.
//!
//! The paper's availability story (§6, §8) rests on every tier surviving
//! the death of its neighbours: a page server can crash without losing
//! data, the XLOG feed is lossy by design, the landing zone tolerates
//! replica failure, and XStore outages only defer checkpoints. Exercising
//! those paths needs a way to *break each tier on purpose* — repeatably.
//!
//! A [`FaultRegistry`] holds named **sites** (e.g. `rbio.transport.send`,
//! `lz.write`) that the I/O paths consult. Each site carries zero or more
//! [`FaultRule`]s: a [`FaultSchedule`] deciding *when* to fire (nth call,
//! probability, LSN window) and a [`FaultAction`] deciding *what* happens
//! (error return, added latency, message drop, node crash). All
//! randomness comes from per-rule [`Rng`] instances seeded from the
//! registry seed plus the site name, so the same seed reproduces the
//! identical fault schedule — the chaos suites assert this.
//!
//! The disabled path is one relaxed atomic load: a registry with no armed
//! rules adds no measurable overhead to the hot paths that consult it.

#![doc = "soclint:hot"]

use crate::latency::{precise_sleep, LatencyModel};
use crate::lsn::Lsn;
use crate::metrics::Counter;
use crate::obs::MetricsHub;
use crate::rng::Rng;
use crate::{Error, NodeId, Result};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// The canonical fault-site names wired through the workspace. Sites are
/// plain strings so tests can invent private ones, but the constants keep
/// the catalog greppable.
pub mod sites {
    /// Client-side RBIO request leg (before the message reaches a server).
    pub const RBIO_SEND: &str = "rbio.transport.send";
    /// Client-side RBIO response leg (after the server replied).
    pub const RBIO_RECV: &str = "rbio.transport.recv";
    /// Landing-zone quorum write (`LandingZone::write_block`).
    pub const LZ_WRITE: &str = "lz.write";
    /// The XLOG feed pump delivering blocks into `offer_block`.
    pub const XLOG_FEED_POLL: &str = "xlog.feed.poll";
    /// Page-server RBIO request handling (GetPage@LSN and friends).
    pub const PAGESERVER_SERVE: &str = "pageserver.serve";
    /// Page-server compaction: sealed L0 delta layers merging into an L1
    /// image (`PageServer::compact_blocking`, checked before the swap).
    pub const PS_COMPACT_MERGE: &str = "ps.compact.merge";
    /// Page-server retention GC dropping layers below the PITR horizon
    /// (`PageServer::gc`, checked before any layer is dropped).
    pub const PS_GC_DROP: &str = "ps.gc.drop";
    /// XStore writes (`write_at` / `write_batch` / `append`).
    pub const XSTORE_PUT: &str = "xstore.put";
    /// XStore reads (`read_at`).
    pub const XSTORE_GET: &str = "xstore.get";
    /// Quorum log tier: one acceptor receiving an `AppendReq` (checked
    /// per acceptor, so a latency rule delays a single acceptor's ack).
    pub const LZ_QUORUM_APPEND: &str = "lz.quorum.append";
    /// Quorum log tier: the proposer collecting an acceptor's append ack
    /// (drop = the ack is lost even though the acceptor flushed).
    pub const LZ_QUORUM_ACK: &str = "lz.quorum.ack";
    /// Quorum log tier: one acceptor receiving a `VoteReq` during a
    /// proposer campaign.
    pub const LZ_QUORUM_VOTE: &str = "lz.quorum.vote";

    /// Every site wired through the workspace (the catalog).
    pub const ALL: &[&str] = &[
        RBIO_SEND,
        RBIO_RECV,
        LZ_WRITE,
        XLOG_FEED_POLL,
        PAGESERVER_SERVE,
        PS_COMPACT_MERGE,
        PS_GC_DROP,
        XSTORE_PUT,
        XSTORE_GET,
        LZ_QUORUM_APPEND,
        LZ_QUORUM_ACK,
        LZ_QUORUM_VOTE,
    ];
}

/// The error flavour an [`FaultAction::Error`] rule returns.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultErrorKind {
    /// `Error::Unavailable` — transient, retried/failed over.
    Unavailable,
    /// `Error::Timeout` — transient, looks like a lost message.
    Timeout,
    /// `Error::Io` — permanent, propagates to the caller.
    Io,
}

impl FaultErrorKind {
    // soclint-allow: hot-path error construction only runs when a fault actually fires
    fn to_error(self, site: &str) -> Error {
        match self {
            FaultErrorKind::Unavailable => Error::Unavailable(format!("fault injected at {site}")),
            FaultErrorKind::Timeout => Error::Timeout(format!("fault injected at {site}")),
            FaultErrorKind::Io => Error::Io(format!("fault injected at {site}")),
        }
    }
}

/// What happens when a rule's schedule fires.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Return an error of the given flavour from the site.
    Error(FaultErrorKind),
    /// Sleep a latency sampled from the model, then proceed normally.
    /// Reuses [`LatencyModel`], so calibrated device shapes apply.
    Latency(LatencyModel),
    /// Drop the message: the site behaves as if it was lost in transit
    /// (transport sites time out; the feed silently discards the block).
    Drop,
    /// Crash the node hosting the site. Honoured where a node exists to
    /// crash (`pageserver.serve` stops the server); elsewhere it degrades
    /// to `Unavailable`.
    Crash,
}

impl FaultAction {
    /// Short tag used in the fired-event log and metrics.
    pub fn name(&self) -> &'static str {
        match self {
            FaultAction::Error(_) => "error",
            FaultAction::Latency(_) => "latency",
            FaultAction::Drop => "drop",
            FaultAction::Crash => "crash",
        }
    }
}

/// When a rule fires, relative to the site's call counter (1-based) or the
/// call's LSN context.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSchedule {
    /// Exactly the nth call at the site.
    Nth(u64),
    /// Every nth call (n, 2n, 3n, ...).
    EveryNth(u64),
    /// The first n calls.
    FirstN(u64),
    /// Each call independently with probability `p` (seeded, so the fired
    /// set is a pure function of the registry seed and the call order).
    Probability(f64),
    /// Calls whose LSN context lies in `[from, to)`. Sites without an LSN
    /// context never match.
    LsnWindow {
        /// Window start (inclusive).
        from: Lsn,
        /// Window end (exclusive).
        to: Lsn,
    },
    /// Every call.
    Always,
}

/// One armed fault: where, when, what.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// The site this rule arms (see [`sites`]).
    pub site: String,
    /// When it fires.
    pub schedule: FaultSchedule,
    /// What it does.
    pub action: FaultAction,
}

/// What a site must do because a fault fired. Latency faults are served
/// inside [`FaultRegistry::check_at`] (the sleep happens there) and never
/// surface as an outcome.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultOutcome {
    /// Return this error.
    Err(Error),
    /// Behave as if the message was lost.
    Drop,
    /// Crash the hosting node (sites without one treat this as `Drop`
    /// plus unavailability).
    Crash,
}

/// One fired fault, recorded for determinism assertions and artifacts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// The site that fired.
    pub site: String,
    /// The site's call counter when it fired (1-based).
    pub call: u64,
    /// The action tag (`error`/`latency`/`drop`/`crash`).
    pub action: &'static str,
}

impl FaultEvent {
    /// One-line rendering for schedule artifacts.
    // soclint-allow: hot-path debug rendering, never on the I/O path
    pub fn render(&self) -> String {
        format!("{}#{} -> {}", self.site, self.call, self.action)
    }
}

struct RuleState {
    rule: FaultRule,
    rng: Mutex<Rng>,
}

struct SiteState {
    calls: AtomicU64,
    fired: Arc<Counter>,
    rules: Vec<Arc<RuleState>>,
}

struct Inner {
    seed: u64,
    /// Number of armed rules across all sites — the hot-path gate.
    armed: AtomicUsize,
    sites: RwLock<HashMap<String, Arc<SiteState>>>,
    log: Mutex<Vec<FaultEvent>>,
    /// Hub to register per-site fired counters into, once bound.
    hub: Mutex<Option<(MetricsHub, NodeId)>>,
}

/// A seeded, deterministic fault-injection registry. Cheap to clone
/// (`Arc` inside); one per deployment, shared by every tier.
#[derive(Clone)]
pub struct FaultRegistry {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for FaultRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultRegistry")
            .field("seed", &self.inner.seed)
            // ordering: relaxed — debug print; staleness fine
            .field("armed", &self.inner.armed.load(Ordering::Relaxed))
            .finish()
    }
}

impl Default for FaultRegistry {
    fn default() -> Self {
        FaultRegistry::disabled()
    }
}

impl FaultRegistry {
    /// A registry with no rules, seeded for later installs.
    // soclint-allow: hot-path one-time construction
    pub fn new(seed: u64) -> FaultRegistry {
        FaultRegistry {
            inner: Arc::new(Inner {
                seed,
                armed: AtomicUsize::new(0),
                sites: RwLock::with_rank(
                    HashMap::new(),
                    crate::lock_rank::COMMON_FAULT_SITES,
                    "fault.sites",
                ),
                log: Mutex::with_rank(Vec::new(), crate::lock_rank::COMMON_FAULT_LOG, "fault.log"),
                hub: Mutex::with_rank(None, crate::lock_rank::COMMON_FAULT_HUB, "fault.hub"),
            }),
        }
    }

    /// A permanently-quiet registry (the default everywhere).
    pub fn disabled() -> FaultRegistry {
        FaultRegistry::new(0)
    }

    /// The registry's seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Whether any rule is armed (the hot-path gate, one atomic load).
    #[inline]
    pub fn is_armed(&self) -> bool {
        // ordering: relaxed — fast-path gate; arming happens-before injected calls
        // via the sites mutex taken in install/clear
        self.inner.armed.load(Ordering::Relaxed) > 0
    }

    /// Bind a metrics hub: every site with rules (present and future)
    /// registers a `fault_injected_total.<site>` counter under `node`.
    // soclint-allow: hot-path registration-time control plane
    pub fn bind_hub(&self, hub: &MetricsHub, node: NodeId) {
        // Lock order (soclint lock-order): `install` nests sites → hub,
        // so the hub guard must be released before `sites` is taken —
        // holding both in the opposite order here would be a deadlock. A
        // concurrent `install` between the two statements at worst
        // re-registers the same shared counter, which the hub's
        // keep-first semantics make a no-op.
        *self.inner.hub.lock() = Some((hub.clone(), node));
        for (name, site) in self.inner.sites.read().iter() {
            hub.register_counter(node, &format!("fault_injected_total.{name}"), site.fired());
        }
    }

    /// Arm `rule`. Rules at one site are evaluated in install order; the
    /// first whose schedule matches a call fires (one fault per call).
    // soclint-allow: hot-path installing a rule is test setup, not the I/O path
    pub fn install(&self, rule: FaultRule) {
        let mut sites = self.inner.sites.write();
        let n_sites = sites.len() as u64;
        let site = sites.entry(rule.site.clone()).or_insert_with(|| {
            let state = Arc::new(SiteState {
                calls: AtomicU64::new(0),
                fired: Arc::new(Counter::new()),
                rules: Vec::new(),
            });
            if let Some((hub, node)) = self.inner.hub.lock().as_ref() {
                hub.register_counter(
                    *node,
                    &format!("fault_injected_total.{}", rule.site),
                    Arc::clone(&state.fired),
                );
            }
            state
        });
        // Per-rule RNG seeded from (registry seed, site hash, rule index):
        // draws at one site never perturb another site's sequence, so the
        // schedule is deterministic per-site regardless of cross-site
        // interleaving.
        let mut h = 0xcbf29ce484222325u64; // FNV-1a over the site name
        for b in rule.site.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        let rule_seed = self
            .inner
            .seed
            .wrapping_add(h)
            .wrapping_add((site.rules.len() as u64) << 32)
            .wrapping_add(n_sites);
        let state = Arc::new(RuleState { rule, rng: Mutex::new(Rng::new(rule_seed)) });
        // SiteState is shared behind Arc; rebuild with the extra rule so
        // concurrent `check` calls see a consistent snapshot.
        let mut rules = site.rules.clone();
        rules.push(state);
        let replacement = Arc::new(SiteState {
            // ordering: relaxed — statistic carried across a spec reinstall
            calls: AtomicU64::new(site.calls.load(Ordering::Relaxed)),
            fired: Arc::clone(&site.fired),
            rules,
        });
        *site = replacement;
        self.inner.armed.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — see is_armed
    }

    /// Disarm every rule (call counters, fired counters, and the event log
    /// survive so post-window assertions still see the history).
    // soclint-allow: hot-path control plane, runs between test phases
    pub fn clear(&self) {
        let mut sites = self.inner.sites.write();
        let mut disarmed = 0usize;
        for site in sites.values_mut() {
            disarmed += site.rules.len();
            let replacement = Arc::new(SiteState {
                // ordering: relaxed — statistic carried across a spec reinstall
                calls: AtomicU64::new(site.calls.load(Ordering::Relaxed)),
                fired: Arc::clone(&site.fired),
                rules: Vec::new(),
            });
            *site = replacement;
        }
        self.inner.armed.fetch_sub(disarmed, Ordering::Relaxed); // ordering: relaxed — see is_armed
    }

    /// Consult a site with no LSN context.
    #[inline]
    pub fn check(&self, site: &str) -> Option<FaultOutcome> {
        if !self.is_armed() {
            return None;
        }
        self.check_slow(site, None)
    }

    /// Consult a site with an LSN context (GetPage@LSN's `min_lsn`, a log
    /// block's start LSN) so `LsnWindow` schedules can match.
    #[inline]
    pub fn check_at(&self, site: &str, lsn: Option<Lsn>) -> Option<FaultOutcome> {
        if !self.is_armed() {
            return None;
        }
        self.check_slow(site, lsn)
    }

    // soclint-allow: hot-path only reached when the registry is armed; check() is the hot gate
    fn check_slow(&self, site: &str, lsn: Option<Lsn>) -> Option<FaultOutcome> {
        let state = self.inner.sites.read().get(site).cloned()?;
        if state.rules.is_empty() {
            return None;
        }
        // ordering: relaxed — per-site call counter; the sites mutex orders spec
        // installs against this path
        let call = state.calls.fetch_add(1, Ordering::Relaxed) + 1;
        for rule_state in &state.rules {
            let matches = match &rule_state.rule.schedule {
                FaultSchedule::Nth(n) => call == *n,
                FaultSchedule::EveryNth(n) => *n > 0 && call % *n == 0,
                FaultSchedule::FirstN(n) => call <= *n,
                FaultSchedule::Probability(p) => rule_state.rng.lock().gen_bool(*p),
                FaultSchedule::LsnWindow { from, to } => lsn.is_some_and(|l| l >= *from && l < *to),
                FaultSchedule::Always => true,
            };
            if !matches {
                continue;
            }
            let action = rule_state.rule.action.clone();
            state.fired.incr();
            self.inner.log.lock().push(FaultEvent {
                site: site.to_string(),
                call,
                action: action.name(),
            });
            return match action {
                FaultAction::Error(kind) => Some(FaultOutcome::Err(kind.to_error(site))),
                FaultAction::Latency(model) => {
                    let d = {
                        let mut rng = rule_state.rng.lock();
                        model.sample(&mut rng)
                    };
                    // soclint-allow: hot-path-transitive the latency action
                    // exists to stall the caller; the sleep and its clock
                    // reads are the injected fault itself.
                    precise_sleep(d);
                    None // the operation proceeds, just late
                }
                FaultAction::Drop => Some(FaultOutcome::Drop),
                FaultAction::Crash => Some(FaultOutcome::Crash),
            };
        }
        None
    }

    /// Total faults fired at `site`.
    pub fn fired_count(&self, site: &str) -> u64 {
        self.inner.sites.read().get(site).map_or(0, |s| s.fired.get())
    }

    /// Total faults fired across all sites.
    pub fn total_fired(&self) -> u64 {
        self.inner.sites.read().values().map(|s| s.fired.get()).sum()
    }

    /// The fired-event log, in fire order — the reproducible fault
    /// schedule the chaos suites compare across runs and dump as a CI
    /// artifact on failure.
    pub fn fired_log(&self) -> Vec<FaultEvent> {
        self.inner.log.lock().clone()
    }

    /// The fired log rendered one event per line (artifact format).
    pub fn render_schedule(&self) -> String {
        let log = self.inner.log.lock();
        let mut out = String::with_capacity(log.len() * 32);
        for e in log.iter() {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Install rules from a spec string: `site@schedule=action` clauses
    /// separated by `;`. Returns the number of rules installed.
    ///
    /// Schedules: `nth:N`, `every:N`, `first:N`, `p:0.01`,
    /// `lsn:FROM..TO`, `always`. Actions: `error:unavailable`,
    /// `error:timeout`, `error:io`, `latency:500us` (or `ms`/`s`),
    /// `drop`, `crash`.
    pub fn install_spec(&self, spec: &str) -> Result<usize> {
        let mut n = 0;
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            self.install(parse_clause(clause)?);
            n += 1;
        }
        Ok(n)
    }
}

// soclint-allow: hot-path spec parsing is test setup
fn parse_clause(clause: &str) -> Result<FaultRule> {
    let bad = |what: &str| Error::InvalidArgument(format!("fault spec '{clause}': {what}"));
    let (site, rest) =
        clause.split_once('@').ok_or_else(|| bad("expected site@schedule=action"))?;
    let (sched, action) = rest.split_once('=').ok_or_else(|| bad("expected schedule=action"))?;
    let schedule = match sched.split_once(':') {
        Some(("nth", n)) => FaultSchedule::Nth(n.parse().map_err(|_| bad("bad nth count"))?),
        Some(("every", n)) => {
            FaultSchedule::EveryNth(n.parse().map_err(|_| bad("bad every count"))?)
        }
        Some(("first", n)) => FaultSchedule::FirstN(n.parse().map_err(|_| bad("bad first count"))?),
        Some(("p", p)) => {
            let p: f64 = p.parse().map_err(|_| bad("bad probability"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(bad("probability outside [0, 1]"));
            }
            FaultSchedule::Probability(p)
        }
        Some(("lsn", range)) => {
            let (from, to) = range.split_once("..").ok_or_else(|| bad("bad lsn range"))?;
            FaultSchedule::LsnWindow {
                from: Lsn::new(from.parse().map_err(|_| bad("bad lsn range start"))?),
                to: Lsn::new(to.parse().map_err(|_| bad("bad lsn range end"))?),
            }
        }
        None if sched == "always" => FaultSchedule::Always,
        _ => return Err(bad("unknown schedule")),
    };
    let action = match action.split_once(':') {
        Some(("error", kind)) => FaultAction::Error(match kind {
            "unavailable" => FaultErrorKind::Unavailable,
            "timeout" => FaultErrorKind::Timeout,
            "io" => FaultErrorKind::Io,
            _ => return Err(bad("unknown error kind")),
        }),
        Some(("latency", dur)) => {
            let us = if let Some(v) = dur.strip_suffix("us") {
                v.parse::<u64>().map_err(|_| bad("bad latency"))?
            } else if let Some(v) = dur.strip_suffix("ms") {
                v.parse::<u64>().map_err(|_| bad("bad latency"))? * 1_000
            } else if let Some(v) = dur.strip_suffix('s') {
                v.parse::<u64>().map_err(|_| bad("bad latency"))? * 1_000_000
            } else {
                return Err(bad("latency needs a us/ms/s suffix"));
            };
            FaultAction::Latency(LatencyModel::fixed(us))
        }
        None if action == "drop" => FaultAction::Drop,
        None if action == "crash" => FaultAction::Crash,
        _ => return Err(bad("unknown action")),
    };
    Ok(FaultRule { site: site.trim().to_string(), schedule, action })
}

impl SiteState {
    fn fired(&self) -> Arc<Counter> {
        Arc::clone(&self.fired)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule(site: &str, schedule: FaultSchedule, action: FaultAction) -> FaultRule {
        FaultRule { site: site.into(), schedule, action }
    }

    #[test]
    fn disabled_registry_is_quiet() {
        let f = FaultRegistry::disabled();
        assert!(!f.is_armed());
        for _ in 0..1000 {
            assert_eq!(f.check(sites::LZ_WRITE), None);
        }
        assert_eq!(f.total_fired(), 0);
        assert!(f.fired_log().is_empty());
    }

    #[test]
    fn nth_and_every_nth_fire_on_schedule() {
        let f = FaultRegistry::new(1);
        f.install(rule("a", FaultSchedule::Nth(3), FaultAction::Drop));
        let fired: Vec<bool> = (0..6).map(|_| f.check("a").is_some()).collect();
        assert_eq!(fired, vec![false, false, true, false, false, false]);

        let g = FaultRegistry::new(1);
        g.install(rule("b", FaultSchedule::EveryNth(2), FaultAction::Drop));
        let fired: Vec<bool> = (0..6).map(|_| g.check("b").is_some()).collect();
        assert_eq!(fired, vec![false, true, false, true, false, true]);
        assert_eq!(g.fired_count("b"), 3);
    }

    #[test]
    fn first_n_and_always() {
        let f = FaultRegistry::new(2);
        f.install(rule("a", FaultSchedule::FirstN(2), FaultAction::Drop));
        let fired: Vec<bool> = (0..4).map(|_| f.check("a").is_some()).collect();
        assert_eq!(fired, vec![true, true, false, false]);
        f.install(rule("b", FaultSchedule::Always, FaultAction::Crash));
        assert_eq!(f.check("b"), Some(FaultOutcome::Crash));
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let run = |seed| {
            let f = FaultRegistry::new(seed);
            f.install(rule("a", FaultSchedule::Probability(0.3), FaultAction::Drop));
            (0..200).map(|_| f.check("a").is_some()).collect::<Vec<_>>()
        };
        let a = run(7);
        assert_eq!(a, run(7), "same seed must reproduce the schedule");
        assert_ne!(a, run(8), "different seeds should differ");
        let hits = a.iter().filter(|b| **b).count();
        assert!(hits > 30 && hits < 90, "p=0.3 over 200 calls fired {hits} times");
    }

    #[test]
    fn lsn_window_uses_context() {
        let f = FaultRegistry::new(3);
        f.install(rule(
            "a",
            FaultSchedule::LsnWindow { from: Lsn::new(100), to: Lsn::new(200) },
            FaultAction::Error(FaultErrorKind::Unavailable),
        ));
        assert_eq!(f.check_at("a", Some(Lsn::new(50))), None);
        assert!(matches!(
            f.check_at("a", Some(Lsn::new(150))),
            Some(FaultOutcome::Err(Error::Unavailable(_)))
        ));
        assert_eq!(f.check_at("a", Some(Lsn::new(200))), None, "window end is exclusive");
        assert_eq!(f.check_at("a", None), None, "no context never matches");
    }

    #[test]
    fn error_kinds_map_to_variants() {
        let f = FaultRegistry::new(4);
        f.install(rule("a", FaultSchedule::Always, FaultAction::Error(FaultErrorKind::Timeout)));
        match f.check("a") {
            Some(FaultOutcome::Err(e)) => {
                assert_eq!(e.kind(), "timeout");
                assert!(e.is_transient());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn latency_action_sleeps_and_proceeds() {
        let f = FaultRegistry::new(5);
        f.install(rule("a", FaultSchedule::Always, FaultAction::Latency(LatencyModel::fixed(300))));
        let t0 = std::time::Instant::now();
        assert_eq!(f.check("a"), None, "latency faults let the operation proceed");
        assert!(t0.elapsed() >= std::time::Duration::from_micros(250));
        assert_eq!(f.fired_count("a"), 1, "but they count as injected");
    }

    #[test]
    fn clear_disarms_but_keeps_history() {
        let f = FaultRegistry::new(6);
        f.install(rule("a", FaultSchedule::Always, FaultAction::Drop));
        f.check("a");
        f.clear();
        assert!(!f.is_armed());
        assert_eq!(f.check("a"), None);
        assert_eq!(f.fired_count("a"), 1);
        assert_eq!(f.fired_log().len(), 1);
    }

    #[test]
    fn fired_log_records_site_call_action() {
        let f = FaultRegistry::new(7);
        f.install(rule("a", FaultSchedule::EveryNth(2), FaultAction::Drop));
        for _ in 0..4 {
            f.check("a");
        }
        let log = f.fired_log();
        assert_eq!(
            log,
            vec![
                FaultEvent { site: "a".into(), call: 2, action: "drop" },
                FaultEvent { site: "a".into(), call: 4, action: "drop" },
            ]
        );
        assert_eq!(f.render_schedule(), "a#2 -> drop\na#4 -> drop\n");
    }

    #[test]
    fn spec_grammar_roundtrip() {
        let f = FaultRegistry::new(8);
        let n = f
            .install_spec(
                "lz.write@nth:5=error:unavailable; rbio.transport.send@p:0.25=drop; \
                 pageserver.serve@lsn:100..900=crash; xstore.get@every:10=latency:2ms",
            )
            .unwrap();
        assert_eq!(n, 4);
        assert!(f.is_armed());
        // The nth:5 error rule fires exactly once.
        for i in 1..=10u64 {
            let out = f.check(sites::LZ_WRITE);
            assert_eq!(out.is_some(), i == 5, "call {i}");
        }
        // Crash inside the LSN window only.
        assert_eq!(f.check_at(sites::PAGESERVER_SERVE, Some(Lsn::new(99))), None);
        assert_eq!(
            f.check_at(sites::PAGESERVER_SERVE, Some(Lsn::new(100))),
            Some(FaultOutcome::Crash)
        );
    }

    #[test]
    fn spec_errors_are_reported() {
        let f = FaultRegistry::new(9);
        assert!(f.install_spec("no-at-sign").is_err());
        assert!(f.install_spec("a@nth:x=drop").is_err());
        assert!(f.install_spec("a@p:1.5=drop").is_err());
        assert!(f.install_spec("a@always=explode").is_err());
        assert!(f.install_spec("a@always=latency:5").is_err(), "latency needs a suffix");
        assert!(f.install_spec("a@lsn:10=drop").is_err());
        assert!(!f.is_armed(), "failed specs must not partially arm... ");
    }

    #[test]
    fn hub_binding_exports_per_site_counters() {
        let hub = MetricsHub::new();
        let f = FaultRegistry::new(10);
        f.install(rule("x.y", FaultSchedule::Always, FaultAction::Drop));
        f.bind_hub(&hub, NodeId::FAULT);
        // Sites installed after binding register too.
        f.install(rule("z.w", FaultSchedule::Always, FaultAction::Drop));
        f.check("x.y");
        f.check("x.y");
        f.check("z.w");
        let snap = hub.snapshot();
        assert_eq!(
            snap.get(NodeId::FAULT, "fault_injected_total.x.y"),
            Some(&crate::obs::MetricValue::Counter(2))
        );
        assert_eq!(
            snap.get(NodeId::FAULT, "fault_injected_total.z.w"),
            Some(&crate::obs::MetricValue::Counter(1))
        );
        let full: Vec<String> = snap.samples.iter().map(|s| s.full_name()).collect();
        assert!(full.contains(&"fault.0.fault_injected_total.x.y".to_string()));
    }

    #[test]
    fn rules_at_one_site_fire_first_match() {
        let f = FaultRegistry::new(11);
        f.install(rule("a", FaultSchedule::Nth(2), FaultAction::Drop));
        f.install(rule("a", FaultSchedule::Always, FaultAction::Crash));
        assert_eq!(f.check("a"), Some(FaultOutcome::Crash), "call 1: second rule");
        assert_eq!(f.check("a"), Some(FaultOutcome::Drop), "call 2: first rule wins");
        assert_eq!(f.check("a"), Some(FaultOutcome::Crash), "call 3: second rule again");
    }
}

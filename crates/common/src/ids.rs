//! Identifier newtypes shared across the workspace.

use std::fmt;

macro_rules! id_u64 {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// Construct from a raw value.
            #[inline]
            pub const fn new(v: u64) -> Self {
                $name(v)
            }
            /// The raw value.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }

        impl From<u64> for $name {
            fn from(v: u64) -> Self {
                $name(v)
            }
        }
    };
}

macro_rules! id_u32 {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Construct from a raw value.
            #[inline]
            pub const fn new(v: u32) -> Self {
                $name(v)
            }
            /// The raw value.
            #[inline]
            pub const fn raw(self) -> u32 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, ":{}"), self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(self, f)
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }
    };
}

id_u64! {
    /// Identifies a database page. Page ids are dense and allocated by the
    /// engine's allocator; the page-space partitioning that assigns pages to
    /// page servers is a pure function of the page id.
    PageId, "page"
}

id_u64! {
    /// Identifies a transaction. Allocated monotonically by the primary's
    /// transaction manager; also used as the MVCC "begin" marker before a
    /// transaction acquires its commit timestamp.
    TxnId, "txn"
}

id_u64! {
    /// Identifies a blob in the XStore log-structured store (data files,
    /// checkpoints, long-term log segments, backups).
    BlobId, "blob"
}

id_u32! {
    /// Identifies a partition of the database page space. Each Socrates
    /// page server owns exactly one partition (possibly with replicas).
    PartitionId, "part"
}

id_u32! {
    /// Identifies a table in the catalog.
    TableId, "table"
}

id_u32! {
    /// Identifies a replica within a replicated service (landing-zone
    /// replicas, page-server replicas, HADR secondaries).
    ReplicaId, "replica"
}

/// Identifies a node (a mini-service instance) in a deployment.
///
/// Socrates deployments are made of many loosely-coupled mini-services:
/// compute nodes, the XLOG process, page servers, and the XStore service.
/// `NodeId` names one instance for metrics, CPU accounting, and logging.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId {
    /// Which tier the node belongs to.
    pub kind: NodeKind,
    /// Index within the tier (e.g. secondary 0, page server 7).
    pub index: u32,
}

/// The tier a node belongs to.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeKind {
    /// The primary compute node (read/write transactions).
    Primary,
    /// A secondary compute node (read-only transactions, failover target).
    Secondary,
    /// The XLOG service process.
    XLog,
    /// A page server.
    PageServer,
    /// The XStore storage service.
    XStore,
    /// A benchmark client driver.
    Client,
    /// The fault-injection registry (owns `fault_injected_total.*`).
    Fault,
    /// A quorum WAL acceptor (safekeeper-style log node).
    Acceptor,
}

impl NodeKind {
    /// Lowercase tier name used in metric names (`tier.node.metric`).
    pub const fn tier_name(self) -> &'static str {
        match self {
            NodeKind::Primary => "primary",
            NodeKind::Secondary => "secondary",
            NodeKind::XLog => "xlog",
            NodeKind::PageServer => "pageserver",
            NodeKind::XStore => "xstore",
            NodeKind::Client => "client",
            NodeKind::Fault => "fault",
            NodeKind::Acceptor => "acceptor",
        }
    }
}

impl NodeId {
    /// The (single) primary compute node.
    pub const PRIMARY: NodeId = NodeId { kind: NodeKind::Primary, index: 0 };
    /// The (single) XLOG service node.
    pub const XLOG: NodeId = NodeId { kind: NodeKind::XLog, index: 0 };
    /// The (single) XStore service node.
    pub const XSTORE: NodeId = NodeId { kind: NodeKind::XStore, index: 0 };
    /// The (single) fault-injection registry pseudo-node.
    pub const FAULT: NodeId = NodeId { kind: NodeKind::Fault, index: 0 };

    /// Secondary compute node `i`.
    pub const fn secondary(i: u32) -> NodeId {
        NodeId { kind: NodeKind::Secondary, index: i }
    }

    /// Page server `i`.
    pub const fn page_server(i: u32) -> NodeId {
        NodeId { kind: NodeKind::PageServer, index: i }
    }

    /// Benchmark client `i`.
    pub const fn client(i: u32) -> NodeId {
        NodeId { kind: NodeKind::Client, index: i }
    }

    /// Quorum WAL acceptor `i`.
    pub const fn acceptor(i: u32) -> NodeId {
        NodeId { kind: NodeKind::Acceptor, index: i }
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.kind.tier_name(), self.index)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ids_roundtrip_and_display() {
        assert_eq!(PageId::new(7).raw(), 7);
        assert_eq!(PageId::from(7u64), PageId::new(7));
        assert_eq!(PageId::new(7).to_string(), "page:7");
        assert_eq!(PartitionId::new(3).to_string(), "part:3");
        assert_eq!(TxnId::new(9).to_string(), "txn:9");
        assert_eq!(BlobId::new(1).to_string(), "blob:1");
        assert_eq!(TableId::new(2).to_string(), "table:2");
        assert_eq!(ReplicaId::new(0).to_string(), "replica:0");
    }

    #[test]
    fn node_ids_are_distinct_and_hashable() {
        let mut set = HashSet::new();
        set.insert(NodeId::PRIMARY);
        set.insert(NodeId::secondary(0));
        set.insert(NodeId::secondary(1));
        set.insert(NodeId::page_server(0));
        set.insert(NodeId::XLOG);
        set.insert(NodeId::XSTORE);
        assert_eq!(set.len(), 6);
        assert_eq!(NodeId::secondary(1).to_string(), "secondary[1]");
        assert_eq!(NodeId::PRIMARY.to_string(), "primary[0]");
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(PageId::new(1) < PageId::new(2));
        assert!(TxnId::new(10) > TxnId::new(9));
    }
}

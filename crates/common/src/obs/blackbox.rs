//! The blackbox flight recorder: a crash-time snapshot of every ring.
//!
//! When something goes wrong — a panic, a chaos-invariant violation, an
//! SLO burning — the question is always "what were the last few hundred
//! operations doing". Each observability ring already retains exactly
//! that; the blackbox recorder snapshots them *together*, atomically
//! enough for postmortems (each ring's own seqlock/lock discipline
//! applies; the bundle is a consistent-per-ring, near-in-time-across-
//! rings capture), into one self-describing JSON bundle:
//!
//! ```text
//! target/blackbox/<reason>-<seq>.json
//! {
//!   "version": 1, "reason": "...", "seq": 0,
//!   "metrics":       [ ... full hub snapshot, json_snapshot shape ... ],
//!   "commit_traces": [ {"txn","lsn","stages":{engine,...},"total_ns"} ],
//!   "read_spans":    [ {"page","min_lsn","stages":{...},"hedge",...} ],
//!   "slow_ops":      [ ... same shape as read_spans ... ],
//!   "spans":         [ {"trace","span","parent","kind","node",...} ],
//!   "fault_events":  [ {"site","call","action"} ]
//! }
//! ```
//!
//! Triggers are rare by construction (a breach *edge*, not a breach
//! level; a panic; an explicit chaos-suite call), so the recorder
//! allocates freely — it is never on a hot path. The panic hook chains
//! the previously installed hook, so the default backtrace printer still
//! runs.

use super::ctx::SpanRing;
use super::export::{json_escape, json_f64};
use super::hub::{MetricValue, MetricsHub};
use super::span::{ReadTrace, ReadTraceRecorder};
use super::trace::{Stage, TraceRecorder};
use crate::fault::FaultRegistry;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The bundle schema version (bump on shape changes).
pub const BLACKBOX_VERSION: u64 = 1;

/// The rings and registries a bundle captures. Every source is optional
/// so partial deployments (unit tests, single tiers) can still record.
#[derive(Clone, Default)]
pub struct BlackboxSources {
    /// The deployment's metric hub.
    pub hub: MetricsHub,
    /// Commit-stage traces.
    pub commits: Option<Arc<TraceRecorder>>,
    /// Read-path spans (and their slow-op ring).
    pub reads: Option<Arc<ReadTraceRecorder>>,
    /// Cross-tier causal spans.
    pub spans: Option<Arc<SpanRing>>,
    /// The fault registry's fired-event log.
    pub faults: Option<FaultRegistry>,
}

/// The flight recorder. One per deployment; cheap to share.
pub struct BlackboxRecorder {
    sources: BlackboxSources,
    dir: PathBuf,
    /// Entries retained per ring section.
    last_n: usize,
    /// Bundle sequence number (also the filename disambiguator).
    seq: AtomicU64,
    enabled: bool,
}

impl BlackboxRecorder {
    /// A recorder writing `<dir>/<reason>-<seq>.json` bundles keeping the
    /// last `last_n` entries of each ring.
    pub fn new(
        sources: BlackboxSources,
        dir: impl Into<PathBuf>,
        last_n: usize,
    ) -> BlackboxRecorder {
        BlackboxRecorder { sources, dir: dir.into(), last_n, seq: AtomicU64::new(0), enabled: true }
    }

    /// A recorder that never writes (the default wiring).
    pub fn disabled() -> BlackboxRecorder {
        BlackboxRecorder {
            sources: BlackboxSources::default(),
            dir: PathBuf::from("target/blackbox"),
            last_n: 0,
            seq: AtomicU64::new(0),
            enabled: false,
        }
    }

    /// Whether triggers write bundles.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The bundle directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bundles written so far.
    pub fn bundles_written(&self) -> u64 {
        self.seq.load(Ordering::Relaxed) // ordering: relaxed — diagnostic counter read
    }

    /// Render a bundle document without touching the filesystem (the
    /// testable core of [`BlackboxRecorder::trigger`]).
    pub fn render_bundle(&self, reason: &str, seq: u64) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str(&format!(
            "{{\"version\":{BLACKBOX_VERSION},\"reason\":\"{}\",\"seq\":{seq}",
            json_escape(reason)
        ));

        // Full hub snapshot, same item shape as `json_snapshot`.
        out.push_str(",\"metrics\":[");
        let snap = self.sources.hub.snapshot();
        for (i, s) in snap.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let (ty, val) = match &s.value {
                MetricValue::Counter(v) => ("counter", format!("{v}")),
                MetricValue::Gauge(v) => ("gauge", format!("{v}")),
                MetricValue::Histogram(h) => (
                    "histogram",
                    format!(
                        "{{\"count\":{},\"p50_us\":{},\"p99_us\":{},\"mean_us\":{}}}",
                        h.count,
                        h.p50_us,
                        h.p99_us,
                        json_f64(h.mean_us)
                    ),
                ),
            };
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"type\":\"{ty}\",\"value\":{val}}}",
                json_escape(&s.full_name())
            ));
        }
        out.push(']');

        out.push_str(",\"commit_traces\":[");
        let commits = self.sources.commits.as_ref().map(|c| c.traces()).unwrap_or_default();
        for (i, t) in tail(&commits, self.last_n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"txn\":{},\"lsn\":{},\"stages\":{{", t.txn.raw(), t.lsn.0));
            for (j, stage) in Stage::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":{}", stage.name(), t.stage_ns(*stage)));
            }
            out.push_str(&format!("}},\"total_ns\":{}}}", t.total_ns()));
        }
        out.push(']');

        let reads = self.sources.reads.as_ref().map(|r| r.traces()).unwrap_or_default();
        push_read_section(&mut out, "read_spans", tail(&reads, self.last_n));
        let slow = self.sources.reads.as_ref().map(|r| r.slow_ops()).unwrap_or_default();
        push_read_section(&mut out, "slow_ops", tail(&slow, self.last_n));

        out.push_str(",\"spans\":[");
        let spans = self.sources.spans.as_ref().map(|s| s.spans()).unwrap_or_default();
        for (i, s) in tail(&spans, self.last_n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"trace\":{},\"span\":{},\"parent\":{},\"kind\":\"{}\",\"node\":\"{}\",\"start_ns\":{},\"dur_ns\":{}}}",
                s.trace_id, s.span_id, s.parent_id, s.kind.name(), s.node, s.start_ns, s.dur_ns
            ));
        }
        out.push(']');

        out.push_str(",\"fault_events\":[");
        let events = self.sources.faults.as_ref().map(|f| f.fired_log()).unwrap_or_default();
        for (i, e) in tail(&events, self.last_n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"site\":\"{}\",\"call\":{},\"action\":\"{}\"}}",
                json_escape(&e.site),
                e.call,
                e.action
            ));
        }
        out.push_str("]}");
        out
    }

    /// Snapshot every ring into `<dir>/<reason>-<seq>.json`. Returns the
    /// bundle path, or `None` when disabled or the write failed (a
    /// flight recorder must never turn a crash into a worse crash).
    pub fn trigger(&self, reason: &str) -> Option<PathBuf> {
        if !self.enabled {
            return None;
        }
        // ordering: relaxed — filename uniqueness needs only RMW atomicity
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let bundle = self.render_bundle(reason, seq);
        let name: String = reason
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '-' })
            .collect();
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            eprintln!("blackbox: cannot create {}: {e}", self.dir.display());
            return None;
        }
        let path = self.dir.join(format!("{name}-{seq}.json"));
        match std::fs::write(&path, bundle) {
            Ok(()) => {
                eprintln!("blackbox: wrote {}", path.display());
                Some(path)
            }
            Err(e) => {
                eprintln!("blackbox: cannot write {}: {e}", path.display());
                None
            }
        }
    }

    /// Install a process-wide panic hook that writes a `panic` bundle
    /// before delegating to the previously installed hook (so the
    /// default backtrace printer still runs). Process-global: call once
    /// per process, from the deployment that owns the blackbox.
    pub fn install_panic_hook(recorder: Arc<BlackboxRecorder>) {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            recorder.trigger("panic");
            prev(info);
        }));
    }
}

/// The last `n` elements of `v` (all of them when `n` is 0 — a disabled
/// truncation, not a disabled section).
fn tail<T>(v: &[T], n: usize) -> &[T] {
    if n == 0 || v.len() <= n {
        v
    } else {
        &v[v.len() - n..]
    }
}

fn push_read_section(out: &mut String, key: &str, reads: &[ReadTrace]) {
    out.push_str(&format!(",\"{key}\":["));
    for (i, r) in reads.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"page\":{},\"min_lsn\":{},\"stages\":{{",
            r.page.raw(),
            r.min_lsn.0
        ));
        for (j, stage) in super::span::ReadStage::ALL.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{}", stage.name(), r.stage_ns(*stage)));
        }
        out.push_str(&format!(
            "}},\"hedge\":\"{}\",\"range_width\":{},\"range_fallback\":{}}}",
            r.hedge.name(),
            r.range_width,
            r.range_fallback
        ));
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::obs::ctx::SpanKind;
    use crate::obs::testjson;
    use crate::{Lsn, PageId, TxnId};

    fn populated_recorder() -> BlackboxRecorder {
        let hub = MetricsHub::new();
        hub.register_counter_fn(NodeId::PRIMARY, "commits", || 42);
        let commits = Arc::new(TraceRecorder::new(16));
        commits.record_commit(TxnId::new(1), Lsn::new(100), 1_000, 2_000);
        let reads = Arc::new(ReadTraceRecorder::new(16));
        reads.record(ReadTrace {
            page: PageId::new(7),
            min_lsn: Lsn::new(50),
            stage_ns: [1, 2, 3, 4, 5, 6],
            hedge: crate::obs::span::HedgeOutcome::Won,
            range_width: 4,
            range_fallback: false,
        });
        let spans = Arc::new(SpanRing::new(16, 1));
        let ctx = spans.try_sample().unwrap();
        spans.record_child(ctx, SpanKind::CommitHarden, NodeId::PRIMARY, 10, 5);
        spans.record_root(ctx, SpanKind::Commit, NodeId::PRIMARY, 0, 20);
        let faults = FaultRegistry::new(1);
        faults.install_spec("lz.write@nth:1=error:io").unwrap();
        let _ = faults.check(crate::fault::sites::LZ_WRITE);
        BlackboxRecorder::new(
            BlackboxSources {
                hub,
                commits: Some(commits),
                reads: Some(reads),
                spans: Some(spans),
                faults: Some(faults),
            },
            "target/blackbox-test",
            8,
        )
    }

    #[test]
    fn bundle_roundtrips_through_the_parser() {
        let bb = populated_recorder();
        let doc = testjson::parse(&bb.render_bundle("unit \"test\"", 3)).unwrap();
        assert_eq!(doc.get("version").unwrap().as_i64(), Some(BLACKBOX_VERSION as i64));
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("unit \"test\""));
        assert_eq!(doc.get("seq").unwrap().as_i64(), Some(3));

        let metrics = doc.get("metrics").unwrap().as_array().unwrap();
        assert!(metrics
            .iter()
            .any(|m| m.get("name").unwrap().as_str() == Some("primary.0.commits")));

        let commits = doc.get("commit_traces").unwrap().as_array().unwrap();
        assert_eq!(commits.len(), 1);
        assert_eq!(commits[0].get("txn").unwrap().as_i64(), Some(1));
        assert_eq!(commits[0].get("stages").unwrap().get("engine").unwrap().as_i64(), Some(1_000));

        let reads = doc.get("read_spans").unwrap().as_array().unwrap();
        assert_eq!(reads[0].get("page").unwrap().as_i64(), Some(7));
        assert_eq!(reads[0].get("hedge").unwrap().as_str(), Some("won"));
        assert_eq!(doc.get("slow_ops").unwrap().as_array().unwrap().len(), 1);

        let spans = doc.get("spans").unwrap().as_array().unwrap();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.get("parent").unwrap().as_i64() == Some(0)).unwrap();
        let child = spans.iter().find(|s| s.get("parent").unwrap().as_i64() != Some(0)).unwrap();
        assert_eq!(child.get("parent"), root.get("span"));
        assert_eq!(root.get("kind").unwrap().as_str(), Some("commit"));

        let faults = doc.get("fault_events").unwrap().as_array().unwrap();
        assert_eq!(faults[0].get("site").unwrap().as_str(), Some("lz.write"));
        assert_eq!(faults[0].get("action").unwrap().as_str(), Some("error"));
    }

    #[test]
    fn empty_sources_still_render_valid_bundles() {
        let bb = BlackboxRecorder::new(BlackboxSources::default(), "target/blackbox-test", 4);
        let doc = testjson::parse(&bb.render_bundle("empty", 0)).unwrap();
        for key in ["metrics", "commit_traces", "read_spans", "slow_ops", "spans", "fault_events"] {
            assert_eq!(doc.get(key).unwrap().as_array().unwrap().len(), 0, "{key}");
        }
    }

    #[test]
    fn disabled_recorder_never_writes() {
        let bb = BlackboxRecorder::disabled();
        assert!(!bb.is_enabled());
        assert_eq!(bb.trigger("nope"), None);
        assert_eq!(bb.bundles_written(), 0);
    }

    #[test]
    fn last_n_truncates_each_section() {
        let commits = Arc::new(TraceRecorder::new(64));
        for i in 0..10 {
            commits.record_commit(TxnId::new(i), Lsn::new(i * 10), 1, 1);
        }
        let bb = BlackboxRecorder::new(
            BlackboxSources { commits: Some(commits), ..BlackboxSources::default() },
            "target/blackbox-test",
            3,
        );
        let doc = testjson::parse(&bb.render_bundle("trunc", 0)).unwrap();
        let kept = doc.get("commit_traces").unwrap().as_array().unwrap();
        assert_eq!(kept.len(), 3);
        // The newest entries survive.
        assert_eq!(kept[2].get("txn").unwrap().as_i64(), Some(9));
    }

    #[test]
    fn trigger_writes_a_parseable_file_and_sanitizes_the_reason() {
        let dir = std::env::temp_dir().join(format!("bb-test-{}", std::process::id()));
        let bb = BlackboxRecorder::new(BlackboxSources::default(), &dir, 4);
        let path = bb.trigger("chaos/invariant: lag").unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap().starts_with("chaos-invariant--lag-0"));
        let doc = testjson::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("reason").unwrap().as_str(), Some("chaos/invariant: lag"));
        assert_eq!(bb.bundles_written(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

//! Workspace-wide observability: commit tracing, the unified metrics
//! hub, and snapshot exporters.
//!
//! Socrates separates durability (log tier) from availability (caches),
//! which makes "where did this commit spend its time" and "how far does
//! each tier lag the hardened LSN" the two questions that matter when
//! diagnosing the system. This module answers both:
//!
//! - [`trace`] stamps each commit with per-stage durations (engine →
//!   harden → destage → page-server apply → secondary apply) in a
//!   lock-free ring of the last N traces;
//! - [`span`] does the same for the read path: every cache-miss GetPage
//!   carries a span through cache probe → scheduler queue → gather →
//!   RBIO → server serve → sink, with hedge and coalesce outcomes
//!   stamped, plus a slow-op ring for postmortems;
//! - [`hub`] is the named-metric registry every tier registers its
//!   existing counters/gauges/histograms into, keyed by
//!   [`NodeId`](crate::ids::NodeId) + metric name;
//! - [`ctx`] is the causal layer on top: a compact [`TraceCtx`] minted
//!   at commit/GetPage entry and threaded across every tier boundary
//!   (WAL blocks, XLOG feed, RBIO envelopes, page-server serve), with
//!   per-tier child spans recorded into a lock-free [`SpanRing`] and
//!   exported as a Chrome trace-event flamegraph;
//! - [`history`] retains periodic hub snapshots in a fixed ring so
//!   [`slo`] can evaluate declarative objectives ("commit_p99 < 5ms
//!   over 30s") with burn rates, and [`blackbox`] snapshots every ring
//!   plus the hub into a postmortem bundle on panic, chaos violation,
//!   or SLO breach;
//! - [`export`] renders hub snapshots as Prometheus text or JSON (and
//!   span rings as Chrome trace JSON), and [`testjson`] is the minimal
//!   parser tests use to validate them;
//! - [`hdr`] is the HDR-style log-linear histogram the open-loop load
//!   driver records intended-to-completion latencies into: lock-free
//!   per-thread shards merged on snapshot, full percentile curves with
//!   bounded relative error all the way into the p99.99 tail.
//!
//! The LSN-lag watcher thread that feeds trace frontiers and lag gauges
//! lives in the `socrates` core crate (it needs the deployment's
//! watermarks); this module stays dependency-free so every tier can use
//! it.

pub mod blackbox;
pub mod ctx;
pub mod export;
pub mod hdr;
pub mod history;
pub mod hub;
pub mod slo;
pub mod span;
pub mod testjson;
pub mod trace;

pub use blackbox::{BlackboxRecorder, BlackboxSources, BLACKBOX_VERSION};
pub use ctx::{SpanEvent, SpanKind, SpanRing, TraceCtx};
pub use export::{chrome_trace_json, json_snapshot, json_trace_summary, prometheus_text};
pub use hdr::{CurvePoint, HdrHistogram, HdrShards, HdrSnapshot};
pub use history::{HistorySample, HubHistory};
pub use hub::{MetricSample, MetricSnapshot, MetricValue, MetricsHub};
pub use slo::{SloEngine, SloSpec, SloStatus};
pub use span::{HedgeOutcome, ReadStage, ReadTrace, ReadTraceRecorder};
pub use trace::{CommitTrace, SpanGuard, Stage, TraceRecorder};

//! Workspace-wide observability: commit tracing, the unified metrics
//! hub, and snapshot exporters.
//!
//! Socrates separates durability (log tier) from availability (caches),
//! which makes "where did this commit spend its time" and "how far does
//! each tier lag the hardened LSN" the two questions that matter when
//! diagnosing the system. This module answers both:
//!
//! - [`trace`] stamps each commit with per-stage durations (engine →
//!   harden → destage → page-server apply → secondary apply) in a
//!   lock-free ring of the last N traces;
//! - [`span`] does the same for the read path: every cache-miss GetPage
//!   carries a span through cache probe → scheduler queue → gather →
//!   RBIO → server serve → sink, with hedge and coalesce outcomes
//!   stamped, plus a slow-op ring for postmortems;
//! - [`hub`] is the named-metric registry every tier registers its
//!   existing counters/gauges/histograms into, keyed by
//!   [`NodeId`](crate::ids::NodeId) + metric name;
//! - [`export`] renders hub snapshots as Prometheus text or JSON, and
//!   [`testjson`] is the minimal parser tests use to validate them.
//!
//! The LSN-lag watcher thread that feeds trace frontiers and lag gauges
//! lives in the `socrates` core crate (it needs the deployment's
//! watermarks); this module stays dependency-free so every tier can use
//! it.

pub mod export;
pub mod hub;
pub mod span;
pub mod testjson;
pub mod trace;

pub use export::{json_snapshot, json_trace_summary, prometheus_text};
pub use hub::{MetricSample, MetricSnapshot, MetricValue, MetricsHub};
pub use span::{HedgeOutcome, ReadStage, ReadTrace, ReadTraceRecorder};
pub use trace::{CommitTrace, SpanGuard, Stage, TraceRecorder};

//! Declarative SLO specs evaluated over the hub history.
//!
//! An SLO is one line of grammar:
//!
//! ```text
//! <tier>.<index>.<metric>[.<agg>] <op> <threshold>[unit] over <window>
//! ```
//!
//! - `<tier>.<index>.<metric>` is the hub's full metric name
//!   (`primary.0.commit_latency`);
//! - `<agg>` is `p50`/`p90`/`p99`/`mean` (histograms), `rate`
//!   (counters, per second), or `value` (counters and gauges; the
//!   default when omitted);
//! - `<op>` is `<`, `<=`, `>`, or `>=`;
//! - `<threshold>` takes `us`/`ms`/`s` suffixes for latency metrics
//!   (normalised to µs, the histogram unit) or a bare number;
//! - `<window>` is `Nms`/`Ns`/`Nm`.
//!
//! Multiple SLOs are separated by `;`. Example:
//!
//! ```text
//! primary.0.commit_latency.p99 < 5ms over 30s; xlog.0.feed_drops.rate < 100 over 10s
//! ```
//!
//! Evaluation is conservative: the *worst* in-window point reading is
//! compared against the threshold (max for upper bounds, min for lower
//! bounds), and the **burn rate** is the fraction of in-window samples
//! violating — 1.0 means the whole window burned, the signal the
//! blackbox recorder and `socmon --watch` act on. A metric with no
//! in-window samples is *not* breaching (absence of telemetry is a
//! different alarm than a missed objective).

use super::history::HubHistory;
use super::hub::MetricValue;
use crate::ids::{NodeId, NodeKind};
use std::time::Duration;

/// How the per-sample scalar is derived from a metric value.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloAgg {
    /// Histogram median (µs).
    P50,
    /// Histogram 90th percentile (µs).
    P90,
    /// Histogram 99th percentile (µs).
    P99,
    /// Histogram mean (µs).
    Mean,
    /// Counter increase per second over the window.
    Rate,
    /// The raw counter/gauge reading.
    Value,
}

impl SloAgg {
    fn parse(s: &str) -> Option<SloAgg> {
        match s {
            "p50" => Some(SloAgg::P50),
            "p90" => Some(SloAgg::P90),
            "p99" => Some(SloAgg::P99),
            "mean" => Some(SloAgg::Mean),
            "rate" => Some(SloAgg::Rate),
            "value" => Some(SloAgg::Value),
            _ => None,
        }
    }

    /// The grammar keyword.
    pub const fn name(self) -> &'static str {
        match self {
            SloAgg::P50 => "p50",
            SloAgg::P90 => "p90",
            SloAgg::P99 => "p99",
            SloAgg::Mean => "mean",
            SloAgg::Rate => "rate",
            SloAgg::Value => "value",
        }
    }
}

/// The comparison the objective asserts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SloOp {
    /// Objective holds while the reading stays strictly below.
    Lt,
    /// Objective holds while the reading stays at or below.
    Le,
    /// Objective holds while the reading stays strictly above.
    Gt,
    /// Objective holds while the reading stays at or above.
    Ge,
}

impl SloOp {
    /// Whether `reading` satisfies the objective.
    pub fn holds(self, reading: f64, threshold: f64) -> bool {
        match self {
            SloOp::Lt => reading < threshold,
            SloOp::Le => reading <= threshold,
            SloOp::Gt => reading > threshold,
            SloOp::Ge => reading >= threshold,
        }
    }

    /// Whether the objective bounds the reading from above (the worst
    /// in-window reading is then the max, else the min).
    pub fn is_upper_bound(self) -> bool {
        matches!(self, SloOp::Lt | SloOp::Le)
    }

    /// The grammar token.
    pub const fn name(self) -> &'static str {
        match self {
            SloOp::Lt => "<",
            SloOp::Le => "<=",
            SloOp::Gt => ">",
            SloOp::Ge => ">=",
        }
    }
}

/// One parsed objective.
#[derive(Clone, Debug)]
pub struct SloSpec {
    /// The node owning the metric.
    pub node: NodeId,
    /// The metric's short name (hub registration name).
    pub metric: String,
    /// Per-sample scalar derivation.
    pub agg: SloAgg,
    /// The asserted comparison.
    pub op: SloOp,
    /// Threshold, in the metric's unit (µs for histogram aggregates).
    pub threshold: f64,
    /// Evaluation window.
    pub window: Duration,
}

impl SloSpec {
    /// The spec in canonical grammar form.
    pub fn render(&self) -> String {
        format!(
            "{}.{}.{}.{} {} {} over {}ms",
            self.node.kind.tier_name(),
            self.node.index,
            self.metric,
            self.agg.name(),
            self.op.name(),
            self.threshold,
            self.window.as_millis()
        )
    }
}

/// One objective's current standing.
#[derive(Clone, Debug)]
pub struct SloStatus {
    /// The evaluated objective.
    pub spec: SloSpec,
    /// Worst in-window reading (`None` when no in-window samples carry
    /// the metric).
    pub current: Option<f64>,
    /// Whether the objective is currently missed.
    pub breaching: bool,
    /// Fraction of in-window samples violating, in `[0, 1]`.
    pub burn_rate: f64,
    /// In-window samples that carried the metric.
    pub samples: usize,
}

impl SloStatus {
    /// One status line (`socmon --watch`, CI logs).
    pub fn render(&self) -> String {
        let state = if self.breaching { "BREACH" } else { "ok" };
        let current = match self.current {
            Some(v) => format!("{v:.1}"),
            None => "-".to_string(),
        };
        format!(
            "[{state}] {} (current {current}, burn {:.0}%, {} samples)",
            self.spec.render(),
            self.burn_rate * 100.0,
            self.samples
        )
    }
}

fn parse_tier(s: &str) -> Option<NodeKind> {
    match s {
        "primary" => Some(NodeKind::Primary),
        "secondary" => Some(NodeKind::Secondary),
        "xlog" => Some(NodeKind::XLog),
        "pageserver" => Some(NodeKind::PageServer),
        "xstore" => Some(NodeKind::XStore),
        "client" => Some(NodeKind::Client),
        "fault" => Some(NodeKind::Fault),
        "acceptor" => Some(NodeKind::Acceptor),
        _ => None,
    }
}

fn parse_threshold(s: &str) -> Result<f64, String> {
    let (num, scale) = if let Some(n) = s.strip_suffix("us") {
        (n, 1.0)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000.0)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000.0)
    } else {
        (s, 1.0)
    };
    num.parse::<f64>().map(|v| v * scale).map_err(|_| format!("bad threshold `{s}`"))
}

fn parse_window(s: &str) -> Result<Duration, String> {
    if let Some(n) = s.strip_suffix("ms") {
        n.parse::<u64>().map(Duration::from_millis)
    } else if let Some(n) = s.strip_suffix('s') {
        n.parse::<u64>().map(Duration::from_secs)
    } else if let Some(n) = s.strip_suffix('m') {
        n.parse::<u64>().map(|m| Duration::from_secs(m * 60))
    } else {
        return Err(format!("bad window `{s}` (want Nms, Ns, or Nm)"));
    }
    .map_err(|_| format!("bad window `{s}`"))
}

/// Parse one objective line (see the module grammar).
pub fn parse_spec(line: &str) -> Result<SloSpec, String> {
    let (cmp, window) =
        line.rsplit_once(" over ").ok_or_else(|| format!("missing `over <window>` in `{line}`"))?;
    let window = parse_window(window.trim())?;
    let mut parts = cmp.split_whitespace();
    let path = parts.next().ok_or_else(|| format!("missing metric in `{line}`"))?;
    let op = match parts.next().ok_or_else(|| format!("missing comparison in `{line}`"))? {
        "<" => SloOp::Lt,
        "<=" => SloOp::Le,
        ">" => SloOp::Gt,
        ">=" => SloOp::Ge,
        other => return Err(format!("bad comparison `{other}` in `{line}`")),
    };
    let threshold =
        parse_threshold(parts.next().ok_or_else(|| format!("missing threshold in `{line}`"))?)?;
    if parts.next().is_some() {
        return Err(format!("trailing tokens in `{line}`"));
    }

    let mut segs: Vec<&str> = path.split('.').collect();
    let agg = match segs.last().and_then(|s| SloAgg::parse(s)) {
        Some(a) => {
            segs.pop();
            a
        }
        None => SloAgg::Value,
    };
    if segs.len() < 3 {
        return Err(format!("metric `{path}` is not tier.index.name"));
    }
    let kind = parse_tier(segs[0]).ok_or_else(|| format!("unknown tier `{}`", segs[0]))?;
    let index: u32 = segs[1].parse().map_err(|_| format!("bad node index `{}`", segs[1]))?;
    Ok(SloSpec {
        node: NodeId { kind, index },
        metric: segs[2..].join("."),
        agg,
        op,
        threshold,
        window,
    })
}

/// A parsed set of objectives.
#[derive(Clone, Debug, Default)]
pub struct SloEngine {
    specs: Vec<SloSpec>,
}

impl SloEngine {
    /// Parse a `;`-separated spec string (empty input → no objectives).
    pub fn parse(spec: &str) -> Result<SloEngine, String> {
        let mut specs = Vec::new();
        for line in spec.split(';') {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            specs.push(parse_spec(line)?);
        }
        Ok(SloEngine { specs })
    }

    /// The parsed objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Whether any objectives are configured.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Evaluate every objective against the history's current window.
    pub fn evaluate(&self, history: &HubHistory) -> Vec<SloStatus> {
        self.specs.iter().map(|spec| evaluate_one(spec, history)).collect()
    }
}

fn scalar(value: &MetricValue, agg: SloAgg) -> Option<f64> {
    match (agg, value) {
        (SloAgg::Value, MetricValue::Counter(v)) => Some(*v as f64),
        (SloAgg::Value, MetricValue::Gauge(v)) => Some(*v as f64),
        (SloAgg::P50, MetricValue::Histogram(h)) if h.count > 0 => Some(h.p50_us as f64),
        (SloAgg::P90, MetricValue::Histogram(h)) if h.count > 0 => Some(h.p90_us as f64),
        (SloAgg::P99, MetricValue::Histogram(h)) if h.count > 0 => Some(h.p99_us as f64),
        (SloAgg::Mean, MetricValue::Histogram(h)) if h.count > 0 => Some(h.mean_us),
        _ => None,
    }
}

fn evaluate_one(spec: &SloSpec, history: &HubHistory) -> SloStatus {
    if spec.agg == SloAgg::Rate {
        let current = history.rate(spec.node, &spec.metric, spec.window);
        let samples = if current.is_some() { 2 } else { 0 };
        let breaching = current.map(|c| !spec.op.holds(c, spec.threshold)).unwrap_or(false);
        return SloStatus {
            spec: spec.clone(),
            current,
            breaching,
            burn_rate: if breaching { 1.0 } else { 0.0 },
            samples,
        };
    }
    let readings: Vec<f64> = history
        .window(spec.window)
        .iter()
        .filter_map(|s| s.snapshot.get(spec.node, &spec.metric).and_then(|v| scalar(v, spec.agg)))
        .collect();
    let current = if readings.is_empty() {
        None
    } else if spec.op.is_upper_bound() {
        readings.iter().cloned().fold(f64::MIN, f64::max).into()
    } else {
        readings.iter().cloned().fold(f64::MAX, f64::min).into()
    };
    let violating = readings.iter().filter(|&&r| !spec.op.holds(r, spec.threshold)).count();
    SloStatus {
        spec: spec.clone(),
        current,
        breaching: current.map(|c| !spec.op.holds(c, spec.threshold)).unwrap_or(false),
        burn_rate: if readings.is_empty() { 0.0 } else { violating as f64 / readings.len() as f64 },
        samples: readings.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Gauge, Histogram};
    use crate::obs::hub::MetricsHub;
    use std::sync::Arc;

    #[test]
    fn grammar_parses_units_aggs_and_defaults() {
        let s = parse_spec("primary.0.commit_latency.p99 < 5ms over 30s").unwrap();
        assert_eq!(s.node, NodeId::PRIMARY);
        assert_eq!(s.metric, "commit_latency");
        assert_eq!(s.agg, SloAgg::P99);
        assert_eq!(s.op, SloOp::Lt);
        assert!((s.threshold - 5_000.0).abs() < 1e-9, "ms normalises to µs");
        assert_eq!(s.window, Duration::from_secs(30));

        let s = parse_spec("pageserver.2.apply_lag_bytes <= 1000 over 5m").unwrap();
        assert_eq!(s.node, NodeId::page_server(2));
        assert_eq!(s.agg, SloAgg::Value, "agg defaults to value");
        assert_eq!(s.window, Duration::from_secs(300));

        // Dotted metric names keep their dots.
        let s = parse_spec("xlog.0.feed.drops.rate >= 1 over 100ms").unwrap();
        assert_eq!(s.metric, "feed.drops");
        assert_eq!(s.agg, SloAgg::Rate);
    }

    #[test]
    fn grammar_rejects_malformed_lines() {
        for bad in [
            "primary.0.x < 5ms",             // no window
            "primary.0.x ~ 5 over 1s",       // bad op
            "primary.x < 5 over 1s",         // not tier.index.name
            "granary.0.x < 5 over 1s",       // unknown tier
            "primary.0.x < banana over 1s",  // bad threshold
            "primary.0.x < 5 over 1parsec",  // bad window unit
            "primary.0.x < 5 extra over 1s", // trailing token
        ] {
            assert!(parse_spec(bad).is_err(), "`{bad}` must not parse");
        }
        // Empty engine parses to no objectives.
        assert!(SloEngine::parse("").unwrap().is_empty());
        assert!(SloEngine::parse(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn breach_and_burn_rate_over_history() {
        let hub = MetricsHub::new();
        let g = Arc::new(Gauge::new());
        hub.register_gauge(NodeId::XLOG, "lag", Arc::clone(&g));
        let history = HubHistory::new(16, Duration::ZERO);
        // Three good samples, one bad.
        for v in [10, 20, 30, 500] {
            g.set(v);
            history.tick(&hub);
        }
        let engine = SloEngine::parse("xlog.0.lag < 100 over 1m").unwrap();
        let st = &engine.evaluate(&history)[0];
        assert!(st.breaching, "worst in-window reading (500) misses the objective");
        assert_eq!(st.samples, 4);
        assert!((st.burn_rate - 0.25).abs() < 1e-9, "one of four samples burned");
        assert_eq!(st.current, Some(500.0));
        assert!(st.render().contains("BREACH"));

        // A lower-bound objective takes the window min.
        let engine = SloEngine::parse("xlog.0.lag >= 5 over 1m").unwrap();
        let st = &engine.evaluate(&history)[0];
        assert!(!st.breaching);
        assert_eq!(st.current, Some(10.0));
    }

    #[test]
    fn histogram_percentile_objective() {
        let hub = MetricsHub::new();
        let h = Arc::new(Histogram::new());
        hub.register_histogram(NodeId::PRIMARY, "commit_latency", Arc::clone(&h));
        let history = HubHistory::new(16, Duration::ZERO);
        history.tick(&hub); // empty histogram: no reading, not breaching
        for _ in 0..100 {
            h.record(20_000); // 20ms commits
        }
        history.tick(&hub);
        let engine = SloEngine::parse("primary.0.commit_latency.p99 < 5ms over 1m").unwrap();
        let st = &engine.evaluate(&history)[0];
        assert!(st.breaching, "20ms p99 misses a 5ms objective");
        assert_eq!(st.samples, 1, "the empty-histogram sample contributes no reading");
    }

    #[test]
    fn missing_metric_is_not_a_breach() {
        let history = HubHistory::new(4, Duration::ZERO);
        history.tick(&MetricsHub::new());
        let engine = SloEngine::parse("primary.0.ghost.p99 < 5ms over 1m").unwrap();
        let st = &engine.evaluate(&history)[0];
        assert!(!st.breaching);
        assert_eq!(st.current, None);
        assert_eq!(st.burn_rate, 0.0);
    }
}

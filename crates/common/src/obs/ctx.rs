//! Causal cross-tier trace-context propagation.
//!
//! The per-tier rings ([`trace`](super::trace), [`span`](super::span))
//! answer "how long does each stage take *in aggregate*" — but Socrates
//! splits one commit across four processes-worth of machinery, and
//! aggregate rings cannot reconstruct *one* request's causal path
//! (primary → log pipeline → XLOG feed → page-server apply). This module
//! adds exactly that:
//!
//! - [`TraceCtx`] is the compact context minted at commit/GetPage entry:
//!   a trace id and the current span id, 16 bytes, `Copy`. The zero
//!   context means "not sampled" and is what every boundary forwards on
//!   the unsampled fast path. On the wire (RBIO envelopes) it travels as
//!   two little-endian `u64`s; in-process handoffs (log blocks riding
//!   the lossy feed) carry it as a plain field that is *not* serialized —
//!   a block re-decoded from the landing zone has lost its context, by
//!   design (gap-fill is a recovery path, not the traced path).
//! - [`SpanRing`] is the workspace-wide seqlock ring the per-tier spans
//!   land in. Sampling is 1-in-N (`sample_every`, 0 = off): the disarmed
//!   fast path is a single immutable-field compare, no atomics, no
//!   allocation. Span ids are minted eagerly — a parent allocates its id
//!   before children record — so causal links hold even though spans
//!   complete (and publish) children-first.
//! - [`SpanEvent`] is the read-side snapshot; the Chrome trace-event
//!   exporter over a batch of events lives in
//!   [`export::chrome_trace_json`](super::export::chrome_trace_json)
//!   (`socmon --export-chrome`).

#![doc = "soclint:hot"]

use crate::ids::{NodeId, NodeKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// The propagated trace context: which trace this request belongs to and
/// the span the next child should parent under. The zero value (see
/// [`TraceCtx::NONE`]) means "not sampled" and makes forwarding free.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace id (0 = not sampled). Equals the root span's id.
    pub trace_id: u64,
    /// The span id children of this context parent under.
    pub span_id: u64,
}

impl TraceCtx {
    /// The unsampled context every boundary forwards for free.
    pub const NONE: TraceCtx = TraceCtx { trace_id: 0, span_id: 0 };

    /// Whether this context selects the request for span recording.
    #[inline]
    pub const fn sampled(self) -> bool {
        self.trace_id != 0
    }

    /// Wire encoding: two `u64`s stamped on RBIO envelopes.
    #[inline]
    pub const fn to_wire(self) -> (u64, u64) {
        (self.trace_id, self.span_id)
    }

    /// Decode the RBIO wire form.
    #[inline]
    pub const fn from_wire(trace_id: u64, span_id: u64) -> TraceCtx {
        TraceCtx { trace_id, span_id }
    }
}

/// What a recorded span measured. Discriminants are the ring's storage
/// encoding; names are stable and used by the exporters.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u64)]
pub enum SpanKind {
    /// Whole commit: append → durable (root span, primary).
    Commit = 0,
    /// Engine time from txn begin to the commit append (primary).
    CommitEngine = 1,
    /// `commit_wait` — the durability wait (primary).
    CommitHarden = 2,
    /// One block's landing-zone harden inside the flush loop (primary).
    WalHarden = 3,
    /// Lossy-feed pump delivering one block into XLOG (xlog).
    XlogFeed = 4,
    /// Page-server apply of one pulled block (pageserver).
    PsApply = 5,
    /// Server-side GetPage serve (pageserver).
    PsServe = 6,
    /// Whole GetPage miss: probe → install (root span, compute node).
    GetPage = 7,
    /// RBIO round trip as seen by the client (compute node).
    RbioNet = 8,
    /// Page-server read falling through to XStore (xstore).
    XstoreRead = 9,
    /// Checkpoint blob write into XStore (xstore).
    XstorePut = 10,
    /// Whole checkpoint: dirty scan → blob durable (root span, pageserver).
    PsCheckpoint = 11,
    /// One compaction pass: sealed L0s merged into an L1 image (root
    /// span, pageserver).
    PsCompact = 12,
}

impl SpanKind {
    /// Stable lowercase name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            SpanKind::Commit => "commit",
            SpanKind::CommitEngine => "commit.engine",
            SpanKind::CommitHarden => "commit.harden",
            SpanKind::WalHarden => "wal.harden",
            SpanKind::XlogFeed => "xlog.feed",
            SpanKind::PsApply => "ps.apply",
            SpanKind::PsServe => "ps.serve",
            SpanKind::GetPage => "getpage",
            SpanKind::RbioNet => "rbio.net",
            SpanKind::XstoreRead => "xstore.read",
            SpanKind::XstorePut => "xstore.put",
            SpanKind::PsCheckpoint => "ps.checkpoint",
            SpanKind::PsCompact => "ps.compact",
        }
    }

    fn from_raw(v: u64) -> SpanKind {
        match v {
            1 => SpanKind::CommitEngine,
            2 => SpanKind::CommitHarden,
            3 => SpanKind::WalHarden,
            4 => SpanKind::XlogFeed,
            5 => SpanKind::PsApply,
            6 => SpanKind::PsServe,
            7 => SpanKind::GetPage,
            8 => SpanKind::RbioNet,
            9 => SpanKind::XstoreRead,
            10 => SpanKind::XstorePut,
            11 => SpanKind::PsCheckpoint,
            12 => SpanKind::PsCompact,
            _ => SpanKind::Commit,
        }
    }
}

/// Pack a [`NodeId`] into one `u64` ring cell (kind in the high half,
/// index in the low).
const fn pack_node(node: NodeId) -> u64 {
    let kind = match node.kind {
        NodeKind::Primary => 0u64,
        NodeKind::Secondary => 1,
        NodeKind::XLog => 2,
        NodeKind::PageServer => 3,
        NodeKind::XStore => 4,
        NodeKind::Client => 5,
        NodeKind::Fault => 6,
        NodeKind::Acceptor => 7,
    };
    (kind << 32) | node.index as u64
}

fn unpack_node(v: u64) -> NodeId {
    let kind = match v >> 32 {
        1 => NodeKind::Secondary,
        2 => NodeKind::XLog,
        3 => NodeKind::PageServer,
        4 => NodeKind::XStore,
        5 => NodeKind::Client,
        6 => NodeKind::Fault,
        7 => NodeKind::Acceptor,
        _ => NodeKind::Primary,
    };
    NodeId { kind, index: v as u32 }
}

/// Snapshot of one recorded span, as returned by [`SpanRing::spans`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// The trace this span belongs to (equals the root span's id).
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Causal parent span id (0 for a root span).
    pub parent_id: u64,
    /// What was measured.
    pub kind: SpanKind,
    /// The node (tier + index) that did the work.
    pub node: NodeId,
    /// Start, nanoseconds since the ring's epoch.
    pub start_ns: u64,
    /// Duration, nanoseconds (clamped to ≥ 1 when recorded).
    pub dur_ns: u64,
}

/// One ring slot; same generation discipline as the commit recorder.
struct Slot {
    /// Generation: `claim_counter + 1` while occupied, 0 while empty.
    seq: AtomicU64,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent_id: AtomicU64,
    kind: AtomicU64,
    node: AtomicU64,
    start_ns: AtomicU64,
    dur_ns: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace_id: AtomicU64::new(0),
            span_id: AtomicU64::new(0),
            parent_id: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            node: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            dur_ns: AtomicU64::new(0),
        }
    }
}

/// The workspace-wide cross-tier span ring.
///
/// One instance per deployment (all tiers share it — they share a
/// process, and a shared epoch is what makes the timeline assemble).
/// `sample_every == 0` or capacity 0 disables tracing entirely: minting
/// returns [`TraceCtx::NONE`], every boundary forwards the zero context,
/// and no recording site takes a single atomic — the knob behind
/// `SocratesConfig::trace_sample` and the overhead baseline.
pub struct SpanRing {
    slots: Box<[Slot]>,
    /// Total spans ever recorded; `next % capacity` is the ring index.
    next: AtomicU64,
    /// Shared id allocator for traces and spans (ids start at 1; a trace
    /// id is its root span's id).
    ids: AtomicU64,
    /// Commit/GetPage entries seen, for the 1-in-N selection.
    sample_tick: AtomicU64,
    /// Mint a context every N entries; 0 disables sampling. Immutable, so
    /// the disarmed check is a plain field load.
    sample_every: u64,
    /// All `start_ns` values are relative to this instant.
    epoch: Instant,
}

impl SpanRing {
    /// A ring retaining the last `capacity` spans, minting a context for
    /// one in `sample_every` entries.
    // soclint-allow: hot-path one-time construction
    pub fn new(capacity: usize, sample_every: u64) -> SpanRing {
        SpanRing {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(0),
            ids: AtomicU64::new(1),
            sample_tick: AtomicU64::new(0),
            sample_every: if capacity == 0 { 0 } else { sample_every },
            epoch: Instant::now(),
        }
    }

    /// A ring that samples nothing (the overhead baseline).
    pub fn disabled() -> SpanRing {
        SpanRing::new(0, 0)
    }

    /// Whether any context can ever be minted.
    pub fn is_enabled(&self) -> bool {
        self.sample_every != 0
    }

    /// The 1-in-N sampling divisor (0 = disabled).
    pub fn sample_every(&self) -> u64 {
        self.sample_every
    }

    /// Number of span slots retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans recorded since creation.
    pub fn spans_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed) // ordering: relaxed — generation counter read for sizing; staleness fine
    }

    /// Nanoseconds since the ring's epoch — the timebase every recording
    /// site stamps `start_ns` with.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Mint a context at a trace entry point (commit, GetPage miss).
    /// Returns `None` for the other N-1 requests — and always, with zero
    /// atomics, when sampling is disabled.
    #[inline]
    pub fn try_sample(&self) -> Option<TraceCtx> {
        if self.sample_every == 0 {
            return None; // disarmed fast path: one immutable-field compare
        }
        // ordering: relaxed — sampling tick; 1-in-N selection needs only RMW atomicity
        let tick = self.sample_tick.fetch_add(1, Ordering::Relaxed);
        if !tick.is_multiple_of(self.sample_every) {
            return None;
        }
        // ordering: relaxed — id uniqueness needs only RMW atomicity
        let id = self.ids.fetch_add(1, Ordering::Relaxed);
        Some(TraceCtx { trace_id: id, span_id: id })
    }

    /// Allocate a span id before the work it will measure starts, so the
    /// id can be propagated (e.g. stamped on an RBIO envelope) while the
    /// span is still open. Record it later with [`SpanRing::record`].
    #[inline]
    pub fn next_span_id(&self) -> u64 {
        // ordering: relaxed — id uniqueness needs only RMW atomicity
        self.ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Publish one finished span. Duration is clamped to ≥ 1 ns so a span
    /// always reads as present even on a coarse clock. Ignores the zero
    /// trace (unsampled contexts may reach shared recording sites).
    #[allow(clippy::too_many_arguments)] // the seven span fields, each explicit
    pub fn record(
        &self,
        trace_id: u64,
        span_id: u64,
        parent_id: u64,
        kind: SpanKind,
        node: NodeId,
        start_ns: u64,
        dur_ns: u64,
    ) {
        if trace_id == 0 || self.slots.is_empty() {
            return;
        }
        // ordering: relaxed — ring cursor; slot exclusivity comes from the seqlock
        let n = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // ordering: release — seqlock write-begin: readers must see the slot invalid before any torn payload
        slot.seq.store(0, Ordering::Release);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.trace_id.store(trace_id, Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.span_id.store(span_id, Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.parent_id.store(parent_id, Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.kind.store(kind as u64, Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.node.store(pack_node(node), Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.dur_ns.store(dur_ns.max(1), Ordering::Relaxed);
        // ordering: release — seqlock publish: payload stores must not sink below this
        slot.seq.store(n + 1, Ordering::Release);
    }

    /// Record the trace's root span (parent 0, span id = the minted id).
    pub fn record_root(
        &self,
        ctx: TraceCtx,
        kind: SpanKind,
        node: NodeId,
        start_ns: u64,
        dur_ns: u64,
    ) {
        self.record(ctx.trace_id, ctx.span_id, 0, kind, node, start_ns, dur_ns);
    }

    /// Record a finished child of `ctx`, allocating its span id. Returns
    /// the child's id so the caller can parent further work under it.
    pub fn record_child(
        &self,
        ctx: TraceCtx,
        kind: SpanKind,
        node: NodeId,
        start_ns: u64,
        dur_ns: u64,
    ) -> u64 {
        if !ctx.sampled() {
            return 0;
        }
        let id = self.next_span_id();
        self.record(ctx.trace_id, id, ctx.span_id, kind, node, start_ns, dur_ns);
        id
    }

    /// Snapshot every currently-readable span, oldest first. Slots being
    /// rewritten concurrently are skipped (seqlock read protocol).
    // soclint-allow: hot-path cold read-side snapshot (exporters, blackbox), not a recording path
    pub fn spans(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for slot in self.slots.iter() {
            // ordering: acquire — seqlock read-begin: pairs with the publish store
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == 0 {
                continue;
            }
            let ev = SpanEvent {
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                trace_id: slot.trace_id.load(Ordering::Relaxed),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                span_id: slot.span_id.load(Ordering::Relaxed),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                parent_id: slot.parent_id.load(Ordering::Relaxed),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                kind: SpanKind::from_raw(slot.kind.load(Ordering::Relaxed)),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                node: unpack_node(slot.node.load(Ordering::Relaxed)),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                start_ns: slot.start_ns.load(Ordering::Relaxed),
                // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
                dur_ns: slot.dur_ns.load(Ordering::Relaxed),
            };
            // ordering: acquire — seqlock read-end: a changed seq means the payload tore
            if slot.seq.load(Ordering::Acquire) != seq {
                continue;
            }
            out.push((seq, ev));
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, ev)| ev).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_ctx_is_unsampled_and_wire_roundtrips() {
        assert!(!TraceCtx::NONE.sampled());
        let ctx = TraceCtx { trace_id: 7, span_id: 9 };
        assert!(ctx.sampled());
        let (t, s) = ctx.to_wire();
        assert_eq!(TraceCtx::from_wire(t, s), ctx);
    }

    #[test]
    fn disabled_ring_mints_and_records_nothing() {
        let ring = SpanRing::disabled();
        assert!(!ring.is_enabled());
        for _ in 0..100 {
            assert_eq!(ring.try_sample(), None);
        }
        let ctx = TraceCtx { trace_id: 1, span_id: 1 };
        ring.record_root(ctx, SpanKind::Commit, NodeId::PRIMARY, 0, 10);
        assert!(ring.spans().is_empty());
        assert_eq!(ring.spans_recorded(), 0);
    }

    #[test]
    fn one_in_n_sampling() {
        let ring = SpanRing::new(64, 4);
        let minted = (0..40).filter(|_| ring.try_sample().is_some()).count();
        assert_eq!(minted, 10);
        // sample_every == 1 traces everything.
        let all = SpanRing::new(64, 1);
        assert!((0..10).all(|_| all.try_sample().is_some()));
    }

    #[test]
    fn child_spans_link_to_their_parent() {
        let ring = SpanRing::new(64, 1);
        let ctx = ring.try_sample().unwrap();
        assert_eq!(ctx.trace_id, ctx.span_id, "trace id is the root span id");
        let child = ring.record_child(ctx, SpanKind::CommitHarden, NodeId::PRIMARY, 10, 5);
        assert_ne!(child, 0);
        ring.record_root(ctx, SpanKind::Commit, NodeId::PRIMARY, 0, 20);
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        let root = spans.iter().find(|s| s.span_id == ctx.span_id).unwrap();
        let kid = spans.iter().find(|s| s.span_id == child).unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(kid.parent_id, root.span_id);
        assert_eq!(kid.trace_id, root.trace_id);
        assert_eq!(kid.kind, SpanKind::CommitHarden);
    }

    #[test]
    fn unsampled_ctx_never_lands_in_the_ring() {
        let ring = SpanRing::new(8, 1);
        assert_eq!(ring.record_child(TraceCtx::NONE, SpanKind::PsApply, NodeId::XLOG, 1, 1), 0);
        ring.record_root(TraceCtx::NONE, SpanKind::Commit, NodeId::PRIMARY, 1, 1);
        assert!(ring.spans().is_empty());
    }

    #[test]
    fn ring_retains_most_recent_capacity_spans() {
        let ring = SpanRing::new(4, 1);
        for i in 0..10u64 {
            let ctx = ring.try_sample().unwrap();
            ring.record_root(ctx, SpanKind::GetPage, NodeId::secondary(0), i * 100, 10);
        }
        let spans = ring.spans();
        assert_eq!(spans.len(), 4);
        // Oldest-first, and only the last four survive.
        let starts: Vec<u64> = spans.iter().map(|s| s.start_ns).collect();
        assert_eq!(starts, vec![600, 700, 800, 900]);
    }

    #[test]
    fn node_packing_roundtrips_every_kind() {
        for node in [
            NodeId::PRIMARY,
            NodeId::secondary(3),
            NodeId::XLOG,
            NodeId::page_server(7),
            NodeId::XSTORE,
            NodeId::client(2),
            NodeId::FAULT,
        ] {
            assert_eq!(unpack_node(pack_node(node)), node);
        }
    }

    #[test]
    fn durations_clamp_to_one() {
        let ring = SpanRing::new(4, 1);
        let ctx = ring.try_sample().unwrap();
        ring.record_root(ctx, SpanKind::Commit, NodeId::PRIMARY, 5, 0);
        assert_eq!(ring.spans()[0].dur_ns, 1);
    }
}

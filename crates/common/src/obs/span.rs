//! Request-scoped read-path span tracing.
//!
//! The read-side sibling of [`trace`](super::trace): every cache-miss
//! GetPage@LSN carries a span through the stages of the remote-read
//! pipeline,
//!
//! 1. **cache_probe** — probing the local tiers (memory, then RBPEX)
//!    before the miss is declared;
//! 2. **sched_queue** — waiting in the I/O scheduler's submission queue
//!    beyond the intentional gather delay (backpressure, worker
//!    saturation);
//! 3. **gather_wait** — the deliberate delay waiting for adjacent misses
//!    to arrive so they coalesce into one `GetPageRange`;
//! 4. **net_rbio** — the RBIO round trip minus the server's serve time
//!    (wire, queueing at the endpoint, client-side dispatch);
//! 5. **server_serve** — time inside the page server producing the page
//!    (apply wait, mem/RBPEX/XStore reads), stamped by the server on the
//!    response envelope;
//! 6. **sink** — installing the fetched page into the compute cache.
//!
//! Unlike commit traces, a read span completes synchronously — the miss
//! path knows every stage duration the moment the page is installed — so
//! [`ReadTraceRecorder::record`] publishes a finished span in one call.
//! Each span is also stamped with its *hedge outcome* (did a hedged
//! replica request fire, and did it win) and its *coalesce membership*
//! (dispatched alone or as part of a range, and how wide the range was).
//!
//! The recorder mirrors the commit recorder's lock-free ring: a slot is
//! claimed with one `fetch_add`, fields are relaxed stores, and a
//! generation counter lets readers skip slots being rewritten. On top of
//! the ring sits a small **slow-op ring** retaining the top-K slowest
//! spans for postmortem queries (`socmon --reads`); the hot path pays one
//! relaxed atomic load to decide whether a span qualifies.

#![doc = "soclint:hot"]

use crate::lsn::Lsn;
use crate::metrics::Histogram;
use crate::PageId;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// One stage of the remote-read pipeline. Discriminants index per-stage
/// arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum ReadStage {
    /// Probing the local tiers (memory, RBPEX) before going remote.
    CacheProbe = 0,
    /// Scheduler queue wait beyond the gather window (backpressure).
    SchedQueue = 1,
    /// Deliberate gather delay waiting for coalescible neighbours.
    GatherWait = 2,
    /// RBIO round trip minus the server's serve time.
    NetRbio = 3,
    /// Server-side serve time (stamped on the response by the server).
    ServerServe = 4,
    /// Installing the fetched page into the compute cache.
    Sink = 5,
}

impl ReadStage {
    /// All stages, pipeline order.
    pub const ALL: [ReadStage; 6] = [
        ReadStage::CacheProbe,
        ReadStage::SchedQueue,
        ReadStage::GatherWait,
        ReadStage::NetRbio,
        ReadStage::ServerServe,
        ReadStage::Sink,
    ];

    /// Stable lowercase name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            ReadStage::CacheProbe => "cache_probe",
            ReadStage::SchedQueue => "sched_queue",
            ReadStage::GatherWait => "gather_wait",
            ReadStage::NetRbio => "net_rbio",
            ReadStage::ServerServe => "server_serve",
            ReadStage::Sink => "sink",
        }
    }
}

const NUM_STAGES: usize = ReadStage::ALL.len();

/// How many of the slowest spans the slow-op ring retains.
pub const SLOW_OP_CAPACITY: usize = 32;

/// The hedge outcome stamped on a span.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[repr(u64)]
pub enum HedgeOutcome {
    /// No hedge request fired for this read.
    #[default]
    None = 0,
    /// A hedge fired but the primary attempt still answered first.
    Lost = 1,
    /// A hedge fired and the hedged attempt answered first.
    Won = 2,
}

impl HedgeOutcome {
    fn from_raw(v: u64) -> HedgeOutcome {
        match v {
            1 => HedgeOutcome::Lost,
            2 => HedgeOutcome::Won,
            _ => HedgeOutcome::None,
        }
    }

    /// Stable lowercase name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            HedgeOutcome::None => "none",
            HedgeOutcome::Lost => "lost",
            HedgeOutcome::Won => "won",
        }
    }
}

/// Snapshot of one read span, as recorded by the miss path and returned
/// by queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadTrace {
    /// The page that missed.
    pub page: PageId,
    /// The freshness floor the GetPage@LSN was issued with.
    pub min_lsn: Lsn,
    /// Nanoseconds spent in each stage (clamped to ≥ 1 when recorded, so
    /// 0 still means "not recorded").
    pub stage_ns: [u64; NUM_STAGES],
    /// Whether a hedged replica request fired, and who won.
    pub hedge: HedgeOutcome,
    /// Pages in the dispatched batch: 1 = a lone `GetPage`, > 1 = member
    /// of a coalesced `GetPageRange` of that width.
    pub range_width: u32,
    /// The coalesced range failed and this page was re-fetched alone.
    pub range_fallback: bool,
}

impl ReadTrace {
    /// Duration of `stage` in nanoseconds.
    pub fn stage_ns(&self, stage: ReadStage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Whether every pipeline stage carries a duration.
    pub fn is_complete(&self) -> bool {
        self.stage_ns.iter().all(|&ns| ns > 0)
    }

    /// Total traced time: the read pipeline is sequential, so the span is
    /// the sum of its stages.
    pub fn total_ns(&self) -> u64 {
        self.stage_ns.iter().sum()
    }
}

/// One ring slot; same generation discipline as the commit recorder.
struct Slot {
    /// Generation: `claim_counter + 1` while occupied, 0 while empty.
    seq: AtomicU64,
    page: AtomicU64,
    min_lsn: AtomicU64,
    hedge: AtomicU64,
    range_width: AtomicU64,
    range_fallback: AtomicU64,
    stage_ns: [AtomicU64; NUM_STAGES],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            page: AtomicU64::new(0),
            min_lsn: AtomicU64::new(0),
            hedge: AtomicU64::new(0),
            range_width: AtomicU64::new(0),
            range_fallback: AtomicU64::new(0),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// The slow-op retention set: the top-K spans by total time, kept sorted
/// ascending so the cheapest survivor is at the front.
#[derive(Default)]
struct SlowRing {
    entries: Vec<ReadTrace>,
}

/// Fixed-capacity, lock-free recorder of read spans.
///
/// Capacity 0 disables tracing entirely: [`ReadTraceRecorder::record`]
/// returns immediately and the recorder owns no slots — the knob behind
/// `SocratesConfig::read_trace_capacity` and the overhead baseline.
pub struct ReadTraceRecorder {
    slots: Box<[Slot]>,
    /// Total spans ever recorded; `next % capacity` is the ring index.
    next: AtomicU64,
    /// Per-stage latency histograms (µs), fed on every record.
    stage_hist: [Histogram; NUM_STAGES],
    slow: Mutex<SlowRing>,
    /// Admission gate for the slow ring: the smallest retained total when
    /// the ring is full, else 0. One relaxed load keeps the common case
    /// (span not slow enough) off the lock.
    slow_floor_ns: AtomicU64,
    slow_capacity: usize,
}

impl ReadTraceRecorder {
    /// A recorder retaining the last `capacity` spans (and the
    /// [`SLOW_OP_CAPACITY`] slowest, separately).
    // soclint-allow: hot-path one-time construction
    pub fn new(capacity: usize) -> ReadTraceRecorder {
        ReadTraceRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(0),
            stage_hist: std::array::from_fn(|_| Histogram::new()),
            slow: Mutex::with_rank(
                SlowRing::default(),
                crate::lock_rank::COMMON_OBS_SLOW,
                "obs.slow_ring",
            ),
            slow_floor_ns: AtomicU64::new(0),
            slow_capacity: if capacity == 0 { 0 } else { SLOW_OP_CAPACITY.min(capacity) },
        }
    }

    /// A recorder that drops everything (the overhead baseline).
    pub fn disabled() -> ReadTraceRecorder {
        ReadTraceRecorder::new(0)
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of span slots retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans recorded since creation.
    pub fn spans_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed) // ordering: relaxed — generation counter read for sizing; staleness fine
    }

    /// Record a completed miss-path span. Every stage is clamped to ≥ 1 ns
    /// so a span always reads as complete, even when a stage was genuinely
    /// instant (no scheduler → no queue wait) or the platform clock is
    /// coarse. Lock-free on the ring; the slow-op ring is only locked when
    /// the span beats the current top-K floor.
    pub fn record(&self, mut trace: ReadTrace) {
        if self.slots.is_empty() {
            return;
        }
        for ns in trace.stage_ns.iter_mut() {
            *ns = (*ns).max(1);
        }
        trace.range_width = trace.range_width.max(1);
        let n = self.next.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — ring cursor; slot exclusivity comes from the seqlock
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Invalidate while rewriting so a concurrent reader never mixes
        // generations.
        slot.seq.store(0, Ordering::Release); // ordering: release — seqlock write-begin: readers must see the slot invalid before any torn payload
        slot.page.store(trace.page.raw(), Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.min_lsn.store(trace.min_lsn.offset(), Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.hedge.store(trace.hedge as u64, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.range_width.store(trace.range_width as u64, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.range_fallback.store(trace.range_fallback as u64, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        for (i, ns) in trace.stage_ns.iter().enumerate() {
            slot.stage_ns[i].store(*ns, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        }
        slot.seq.store(n + 1, Ordering::Release); // ordering: release — seqlock publish: payload stores must not sink below this
        for (i, ns) in trace.stage_ns.iter().enumerate() {
            self.stage_hist[i].record(ns / 1_000);
        }
        self.offer_slow(trace);
    }

    fn offer_slow(&self, trace: ReadTrace) {
        if self.slow_capacity == 0 {
            return;
        }
        let total = trace.total_ns();
        // ordering: relaxed — admission heuristic; a stale floor only admits one
        // extra span
        if total <= self.slow_floor_ns.load(Ordering::Relaxed) {
            return;
        }
        let mut slow = self.slow.lock();
        let pos = slow.entries.partition_point(|t| t.total_ns() < total);
        slow.entries.insert(pos, trace);
        if slow.entries.len() > self.slow_capacity {
            slow.entries.remove(0);
        }
        if slow.entries.len() == self.slow_capacity {
            // ordering: relaxed — floor refresh under the slow-list lock; readers
            // tolerate lag
            self.slow_floor_ns.store(slow.entries[0].total_ns(), Ordering::Relaxed);
        }
    }

    /// The retained spans, oldest first. Slots being rewritten mid-read
    /// are skipped (generation check).
    // soclint-allow: hot-path snapshot export for exporters and tests
    pub fn traces(&self) -> Vec<ReadTrace> {
        let mut out: Vec<(u64, ReadTrace)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire); // ordering: acquire — seqlock read-begin: payload loads must not hoist above this
            if seq == 0 {
                continue;
            }
            let trace = ReadTrace {
                page: PageId::new(slot.page.load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                min_lsn: Lsn::new(slot.min_lsn.load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                stage_ns: std::array::from_fn(|i| slot.stage_ns[i].load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                hedge: HedgeOutcome::from_raw(slot.hedge.load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                range_width: slot.range_width.load(Ordering::Relaxed) as u32, // ordering: relaxed — payload read; validated by the seq re-check
                range_fallback: slot.range_fallback.load(Ordering::Relaxed) != 0, // ordering: relaxed — payload read; validated by the seq re-check
            };
            // ordering: acquire — seqlock re-check: orders payload reads before
            // validation
            if slot.seq.load(Ordering::Acquire) == seq {
                out.push((seq, trace));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, t)| t).collect()
    }

    /// Retained spans that carry every stage, oldest first. With a live
    /// recorder this is all of them — spans publish complete — so a
    /// shortfall against [`ReadTraceRecorder::traces`] indicates a bug.
    // soclint-allow: hot-path snapshot export for exporters and tests
    pub fn completed_traces(&self) -> Vec<ReadTrace> {
        self.traces().into_iter().filter(ReadTrace::is_complete).collect()
    }

    /// The top-K slowest spans ever recorded, slowest first.
    pub fn slow_ops(&self) -> Vec<ReadTrace> {
        let mut v = self.slow.lock().entries.clone();
        v.reverse();
        v
    }

    /// Quantile of `stage` duration in microseconds over all recorded
    /// spans (not just retained ones).
    pub fn stage_percentile_us(&self, stage: ReadStage, q: f64) -> u64 {
        self.stage_hist[stage as usize].percentile(q)
    }

    /// Point-in-time summary of `stage` durations (µs).
    pub fn stage_snapshot(&self, stage: ReadStage) -> crate::metrics::HistogramSnapshot {
        self.stage_hist[stage as usize].snapshot()
    }
}

impl std::fmt::Debug for ReadTraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadTraceRecorder")
            .field("capacity", &self.slots.len())
            .field("spans_recorded", &self.spans_recorded())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(page: u64, base_ns: u64) -> ReadTrace {
        ReadTrace {
            page: PageId::new(page),
            min_lsn: Lsn::new(7),
            stage_ns: std::array::from_fn(|i| base_ns + i as u64),
            hedge: HedgeOutcome::None,
            range_width: 1,
            range_fallback: false,
        }
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = ReadTraceRecorder::disabled();
        assert!(!r.is_enabled());
        r.record(span(1, 1_000));
        assert!(r.traces().is_empty());
        assert!(r.slow_ops().is_empty());
        assert_eq!(r.spans_recorded(), 0);
    }

    #[test]
    fn stages_clamped_and_spans_complete() {
        let r = ReadTraceRecorder::new(8);
        r.record(ReadTrace { stage_ns: [0; 6], range_width: 0, ..span(3, 0) });
        let t = r.traces();
        assert_eq!(t.len(), 1);
        assert!(t[0].is_complete(), "zero stages must clamp to 1ns");
        assert_eq!(t[0].total_ns(), 6);
        assert_eq!(t[0].range_width, 1);
        assert_eq!(r.completed_traces().len(), 1);
    }

    #[test]
    fn ring_retains_most_recent_capacity_spans() {
        let r = ReadTraceRecorder::new(4);
        for i in 1..=10u64 {
            r.record(span(i, i * 100));
        }
        let t = r.traces();
        assert_eq!(t.len(), 4);
        let pages: Vec<u64> = t.iter().map(|x| x.page.raw()).collect();
        assert_eq!(pages, vec![7, 8, 9, 10]);
        assert_eq!(r.spans_recorded(), 10);
    }

    #[test]
    fn slow_ring_keeps_top_k_slowest_in_order() {
        let r = ReadTraceRecorder::new(256);
        // Interleave so arrival order is not total order.
        for i in 0..100u64 {
            let total = (i * 37) % 100 + 1;
            r.record(span(i, total * 1_000));
        }
        let slow = r.slow_ops();
        assert_eq!(slow.len(), SLOW_OP_CAPACITY);
        // Slowest first, strictly non-increasing.
        for w in slow.windows(2) {
            assert!(w[0].total_ns() >= w[1].total_ns());
        }
        // The very slowest span (total base 100) survived.
        assert_eq!(slow[0].total_ns(), r.slow_ops()[0].total_ns());
        let min_kept = slow.last().unwrap().total_ns();
        // Everything retained beats everything discarded (~top third).
        assert!(min_kept > 60 * 6 * 1_000, "kept floor {min_kept}");
    }

    #[test]
    fn hedge_and_coalesce_stamps_survive_the_ring() {
        let r = ReadTraceRecorder::new(8);
        r.record(ReadTrace {
            hedge: HedgeOutcome::Won,
            range_width: 16,
            range_fallback: true,
            ..span(5, 1_000)
        });
        let t = &r.traces()[0];
        assert_eq!(t.hedge, HedgeOutcome::Won);
        assert_eq!(t.range_width, 16);
        assert!(t.range_fallback);
        assert_eq!(t.hedge.name(), "won");
    }

    #[test]
    fn percentiles_cover_all_spans_not_just_retained() {
        let r = ReadTraceRecorder::new(2);
        for i in 1..=100u64 {
            let mut t = span(i, 1);
            t.stage_ns[ReadStage::NetRbio as usize] = i * 1_000_000; // 1..100 ms
            r.record(t);
        }
        let p50 = r.stage_percentile_us(ReadStage::NetRbio, 0.5);
        assert!((45_000..=55_000).contains(&p50), "p50 {p50}");
        assert_eq!(r.stage_snapshot(ReadStage::NetRbio).count, 100);
    }
}

//! Request-scoped commit tracing.
//!
//! Every committed transaction can be stamped with the time it spent in
//! each stage of the Socrates durability/availability pipeline:
//!
//! 1. **engine** — transaction work on the primary, from its first logged
//!    operation to the commit record being appended;
//! 2. **harden** — waiting for the landing zone to harden the commit LSN
//!    (the paper's commit latency);
//! 3. **destage** — until the XLOG destager has pushed the commit LSN to
//!    the long-term log archive;
//! 4. **page-apply** — until every page server has applied past the
//!    commit LSN;
//! 5. **secondary-apply** — until every secondary replica has applied
//!    past the commit LSN.
//!
//! Stages 1–2 are measured synchronously on the commit path; stages 3–5
//! complete asynchronously when a frontier watcher observes the relevant
//! LSN watermark passing the commit LSN and calls
//! [`TraceRecorder::note_frontier`].
//!
//! The recorder is a fixed-capacity ring of atomic slots: the commit path
//! claims a slot with one `fetch_add` and publishes fields with relaxed
//! stores — no locks, no allocation — honouring the workspace rule that
//! instrumentation never perturbs the hot path. The ring retains the last
//! `capacity` traces for percentile and outlier queries.

#![doc = "soclint:hot"]

use crate::lsn::Lsn;
use crate::metrics::Histogram;
use crate::TxnId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// One stage of the commit pipeline. Discriminants index per-stage arrays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Stage {
    /// Transaction work on the primary before the commit record.
    Engine = 0,
    /// Landing-zone harden wait (commit latency).
    Harden = 1,
    /// XLOG destage to the long-term archive.
    Destage = 2,
    /// Page-server log apply.
    PageApply = 3,
    /// Secondary-replica log apply.
    SecondaryApply = 4,
}

impl Stage {
    /// All stages, pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Engine, Stage::Harden, Stage::Destage, Stage::PageApply, Stage::SecondaryApply];

    /// Stages completed asynchronously by frontier watchers.
    pub const ASYNC: [Stage; 3] = [Stage::Destage, Stage::PageApply, Stage::SecondaryApply];

    /// Stable lowercase name used in exports.
    pub const fn name(self) -> &'static str {
        match self {
            Stage::Engine => "engine",
            Stage::Harden => "harden",
            Stage::Destage => "destage",
            Stage::PageApply => "page_apply",
            Stage::SecondaryApply => "secondary_apply",
        }
    }
}

const NUM_STAGES: usize = Stage::ALL.len();

/// Snapshot of one commit's trace, as returned by queries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitTrace {
    /// The committing transaction.
    pub txn: TxnId,
    /// The commit record's LSN.
    pub lsn: Lsn,
    /// Nanoseconds spent in each stage; 0 means "not completed yet".
    pub stage_ns: [u64; NUM_STAGES],
}

impl CommitTrace {
    /// Duration of `stage` in nanoseconds (0 if not yet completed).
    pub fn stage_ns(&self, stage: Stage) -> u64 {
        self.stage_ns[stage as usize]
    }

    /// Whether every pipeline stage has completed.
    pub fn is_complete(&self) -> bool {
        self.stage_ns.iter().all(|&ns| ns > 0)
    }

    /// Total traced time: commit work plus full fan-out to all tiers.
    pub fn total_ns(&self) -> u64 {
        // Stages 3..5 run concurrently after harden; the trace's span is
        // engine + harden + the slowest asynchronous stage.
        let sync: u64 = self.stage_ns[..2].iter().sum();
        let async_max = self.stage_ns[2..].iter().copied().max().unwrap_or(0);
        sync + async_max
    }
}

/// One ring slot. A generation counter (`seq`) detects reuse: readers and
/// frontier watchers only trust a slot whose generation still matches.
struct Slot {
    /// Generation: `claim_counter + 1` while occupied, 0 while empty.
    seq: AtomicU64,
    txn: AtomicU64,
    lsn: AtomicU64,
    /// Nanoseconds since recorder epoch when the commit hardened; async
    /// stage durations are measured from this point.
    hardened_at_ns: AtomicU64,
    stage_ns: [AtomicU64; NUM_STAGES],
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            txn: AtomicU64::new(0),
            lsn: AtomicU64::new(0),
            hardened_at_ns: AtomicU64::new(0),
            stage_ns: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Fixed-capacity, lock-free recorder of commit traces.
///
/// Constructed with [`TraceRecorder::new`]; capacity 0 disables tracing
/// entirely ([`TraceRecorder::record_commit`] becomes a no-op), which is
/// how the overhead benchmark's baseline runs.
pub struct TraceRecorder {
    slots: Box<[Slot]>,
    /// Total commits ever recorded; `next % capacity` is the ring index.
    next: AtomicU64,
    epoch: Instant,
    /// Per-stage latency histograms (µs), fed as stages complete.
    stage_hist: [Histogram; NUM_STAGES],
}

impl TraceRecorder {
    /// A recorder retaining the last `capacity` commit traces.
    // soclint-allow: hot-path one-time construction
    pub fn new(capacity: usize) -> TraceRecorder {
        TraceRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            next: AtomicU64::new(0),
            epoch: Instant::now(),
            stage_hist: std::array::from_fn(|_| Histogram::new()),
        }
    }

    /// A recorder that drops everything (for overhead baselines).
    pub fn disabled() -> TraceRecorder {
        TraceRecorder::new(0)
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Number of trace slots retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total commits recorded since creation.
    pub fn commits_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed) // ordering: relaxed — generation counter read for sizing; staleness fine
    }

    /// Nanoseconds since the recorder's epoch.
    #[inline]
    fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Record a hardened commit. Called on the commit path immediately
    /// after the harden wait returns; `engine_ns` / `harden_ns` are the
    /// synchronous stage durations the caller measured. Lock-free: one
    /// `fetch_add` plus relaxed stores.
    pub fn record_commit(&self, txn: TxnId, lsn: Lsn, engine_ns: u64, harden_ns: u64) {
        if self.slots.is_empty() {
            return;
        }
        // Clamp to ≥1ns: a zero duration means "stage incomplete", and on
        // coarse-clock platforms a genuinely instant stage must still read
        // as completed.
        let engine_ns = engine_ns.max(1);
        let harden_ns = harden_ns.max(1);
        let n = self.next.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — ring cursor; slot exclusivity comes from the seqlock
        let slot = &self.slots[(n % self.slots.len() as u64) as usize];
        // Invalidate the slot while rewriting so a concurrent reader or
        // frontier watcher never mixes generations.
        slot.seq.store(0, Ordering::Release); // ordering: release — seqlock write-begin: readers must see the slot invalid before any torn payload
        slot.txn.store(txn.raw(), Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.lsn.store(lsn.offset(), Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.hardened_at_ns.store(self.now_ns(), Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.stage_ns[Stage::Engine as usize].store(engine_ns, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        slot.stage_ns[Stage::Harden as usize].store(harden_ns, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        for async_stage in Stage::ASYNC {
            slot.stage_ns[async_stage as usize].store(0, Ordering::Relaxed); // ordering: relaxed — payload cell; ordered by the seq release/acquire pair
        }
        slot.seq.store(n + 1, Ordering::Release); // ordering: release — seqlock publish: payload stores must not sink below this
        self.stage_hist[Stage::Engine as usize].record(engine_ns / 1_000);
        self.stage_hist[Stage::Harden as usize].record(harden_ns / 1_000);
    }

    /// Report that the watermark backing `stage` has reached `frontier`.
    /// Completes that stage on every retained trace whose commit LSN the
    /// frontier has passed. Called from watcher threads, never the commit
    /// path.
    pub fn note_frontier(&self, stage: Stage, frontier: Lsn) {
        debug_assert!(Stage::ASYNC.contains(&stage), "sync stages complete on the commit path");
        if self.slots.is_empty() || frontier.is_zero() {
            return;
        }
        let now = self.now_ns();
        let idx = stage as usize;
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire); // ordering: acquire — seqlock read-begin: payload loads must not hoist above this
            if seq == 0 {
                continue;
            }
            // ordering: relaxed — payload read; validated by the seq re-check
            if slot.stage_ns[idx].load(Ordering::Relaxed) != 0 {
                continue; // already completed
            }
            // ordering: relaxed — payload read; validated by the seq re-check
            if slot.lsn.load(Ordering::Relaxed) > frontier.offset() {
                continue; // frontier hasn't reached this commit yet
            }
            // ordering: relaxed — payload read; validated by the seq re-check
            let elapsed = now.saturating_sub(slot.hardened_at_ns.load(Ordering::Relaxed)).max(1);
            // Only publish if the slot wasn't recycled underneath us.
            // ordering: acquire — seqlock re-check: orders payload reads before
            // validation
            if slot.seq.load(Ordering::Acquire) == seq {
                slot.stage_ns[idx].store(elapsed, Ordering::Relaxed); // ordering: relaxed — stage stamp; the next seqlock cycle publishes it
                self.stage_hist[idx].record(elapsed / 1_000);
            }
        }
    }

    /// The retained traces, oldest first. Slots being rewritten mid-read
    /// are skipped (generation check), so the result is always consistent.
    // soclint-allow: hot-path snapshot export for exporters and tests
    pub fn traces(&self) -> Vec<CommitTrace> {
        let mut out: Vec<(u64, CommitTrace)> = Vec::with_capacity(self.slots.len());
        for slot in self.slots.iter() {
            let seq = slot.seq.load(Ordering::Acquire); // ordering: acquire — seqlock read-begin: payload loads must not hoist above this
            if seq == 0 {
                continue;
            }
            let trace = CommitTrace {
                txn: TxnId::new(slot.txn.load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                lsn: Lsn::new(slot.lsn.load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
                stage_ns: std::array::from_fn(|i| slot.stage_ns[i].load(Ordering::Relaxed)), // ordering: relaxed — payload read; validated by the seq re-check
            };
            // ordering: acquire — seqlock re-check: orders payload reads before
            // validation
            if slot.seq.load(Ordering::Acquire) == seq {
                out.push((seq, trace));
            }
        }
        out.sort_by_key(|(seq, _)| *seq);
        out.into_iter().map(|(_, t)| t).collect()
    }

    /// Retained traces that have completed every stage, oldest first.
    // soclint-allow: hot-path snapshot export for exporters and tests
    pub fn completed_traces(&self) -> Vec<CommitTrace> {
        self.traces().into_iter().filter(CommitTrace::is_complete).collect()
    }

    /// Quantile of `stage` duration in microseconds over all recorded
    /// commits (not just retained ones).
    pub fn stage_percentile_us(&self, stage: Stage, q: f64) -> u64 {
        self.stage_hist[stage as usize].percentile(q)
    }

    /// Point-in-time summary of `stage` durations (µs).
    pub fn stage_snapshot(&self, stage: Stage) -> crate::metrics::HistogramSnapshot {
        self.stage_hist[stage as usize].snapshot()
    }

    /// Retained traces whose total time exceeds `threshold_ns`, oldest
    /// first — the outlier query backing `socmon`'s slow-commit list.
    // soclint-allow: hot-path snapshot export for exporters and tests
    pub fn outliers(&self, threshold_ns: u64) -> Vec<CommitTrace> {
        self.traces().into_iter().filter(|t| t.total_ns() > threshold_ns).collect()
    }
}

impl std::fmt::Debug for TraceRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceRecorder")
            .field("capacity", &self.slots.len())
            .field("commits_recorded", &self.commits_recorded())
            .finish()
    }
}

/// RAII span: measures wall time from construction to drop and records it
/// (in microseconds) into a [`Histogram`]. For coarse spans off the commit
/// path — the commit pipeline itself uses [`TraceRecorder`] stages.
pub struct SpanGuard<'a> {
    hist: &'a Histogram,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    /// Start timing into `hist`.
    // soclint-allow: hot-path a timing guard's contract is to read the clock; callers opt in per stage
    pub fn new(hist: &'a Histogram) -> SpanGuard<'a> {
        SpanGuard { hist, start: Instant::now() }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = TraceRecorder::disabled();
        assert!(!r.is_enabled());
        r.record_commit(TxnId::new(1), Lsn::new(100), 5, 5);
        r.note_frontier(Stage::Destage, Lsn::new(1000));
        assert!(r.traces().is_empty());
        assert_eq!(r.commits_recorded(), 0);
    }

    #[test]
    fn sync_stages_recorded_and_clamped_nonzero() {
        let r = TraceRecorder::new(8);
        r.record_commit(TxnId::new(1), Lsn::new(100), 0, 0);
        let traces = r.traces();
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].stage_ns(Stage::Engine), 1);
        assert_eq!(traces[0].stage_ns(Stage::Harden), 1);
        assert!(!traces[0].is_complete());
    }

    #[test]
    fn frontier_completes_async_stages_in_lsn_order() {
        let r = TraceRecorder::new(8);
        r.record_commit(TxnId::new(1), Lsn::new(100), 10, 20);
        r.record_commit(TxnId::new(2), Lsn::new(200), 10, 20);

        // Frontier between the two commits: only the first completes.
        r.note_frontier(Stage::Destage, Lsn::new(150));
        let t = r.traces();
        assert!(t[0].stage_ns(Stage::Destage) > 0);
        assert_eq!(t[1].stage_ns(Stage::Destage), 0);

        // Frontier past both, all async stages: everything completes.
        for stage in Stage::ASYNC {
            r.note_frontier(stage, Lsn::new(500));
        }
        let t = r.traces();
        assert!(t.iter().all(CommitTrace::is_complete));
        assert_eq!(r.completed_traces().len(), 2);
        // A second sighting of the same frontier must not re-time stages.
        let before: Vec<u64> = t.iter().map(|x| x.stage_ns(Stage::Destage)).collect();
        r.note_frontier(Stage::Destage, Lsn::new(500));
        let after: Vec<u64> = r.traces().iter().map(|x| x.stage_ns(Stage::Destage)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn ring_retains_most_recent_capacity_traces() {
        let r = TraceRecorder::new(4);
        for i in 1..=10u64 {
            r.record_commit(TxnId::new(i), Lsn::new(i * 100), 10, 10);
        }
        let t = r.traces();
        assert_eq!(t.len(), 4);
        // Oldest-first ordering of the surviving generation window 7..=10.
        let txns: Vec<u64> = t.iter().map(|x| x.txn.raw()).collect();
        assert_eq!(txns, vec![7, 8, 9, 10]);
        assert_eq!(r.commits_recorded(), 10);
    }

    #[test]
    fn percentiles_cover_all_commits_not_just_retained() {
        let r = TraceRecorder::new(2);
        for i in 1..=100u64 {
            // engine_ns climbs 1ms..100ms
            r.record_commit(TxnId::new(i), Lsn::new(i), i * 1_000_000, 1_000);
        }
        let p50 = r.stage_percentile_us(Stage::Engine, 0.5);
        assert!((45_000..=55_000).contains(&p50), "p50 {p50}");
        assert_eq!(r.stage_snapshot(Stage::Engine).count, 100);
    }

    #[test]
    fn outliers_filter_by_total_time() {
        let r = TraceRecorder::new(8);
        r.record_commit(TxnId::new(1), Lsn::new(1), 1_000, 1_000);
        r.record_commit(TxnId::new(2), Lsn::new(2), 50_000_000, 1_000);
        let slow = r.outliers(10_000_000);
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].txn, TxnId::new(2));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let h = Histogram::new();
        {
            let _g = SpanGuard::new(&h);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(h.count(), 1);
        assert!(h.snapshot().max_us >= 1_000);
    }
}

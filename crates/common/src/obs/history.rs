//! Time-series retention for the metrics hub.
//!
//! A hub [`MetricSnapshot`](super::hub::MetricSnapshot) is a point in
//! time; SLO evaluation and the `socmon --watch` live view need *series*:
//! commit p99 over the last 30 seconds, fault injections per second,
//! whether the apply lag is growing. [`HubHistory`] is a fixed-capacity
//! ring of periodic snapshots with two derived views on top:
//!
//! - **rates** — counter deltas divided by the elapsed window;
//! - **windowed aggregates** — min/max over the point-in-time values in a
//!   window. Histograms snapshot their percentiles (the log-bucketed
//!   counts themselves are not retained), so a "windowed p99" is the
//!   worst *point-in-time* p99 observed in the window — the
//!   burn-rate-relevant reading — not a percentile recomputed over the
//!   window's union of samples.
//!
//! The pusher is the deployment's LSN-lag watcher (`Fabric::obs_tick`):
//! the history piggybacks on the thread that already wakes up to sample
//! lag, and rate-limits itself to `hub_history_interval` so a fast
//! watcher does not flood the ring. Capacity 0 disables retention
//! entirely — `tick` returns after one field compare.

use super::hub::{MetricSnapshot, MetricValue, MetricsHub};
use crate::ids::NodeId;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// One retained snapshot, stamped with its age.
#[derive(Clone, Debug)]
pub struct HistorySample {
    /// Milliseconds since the history's epoch, starting at 1 (0 is the
    /// "never sampled" sentinel internally).
    pub at_ms: u64,
    /// The full hub snapshot taken at that instant.
    pub snapshot: MetricSnapshot,
}

/// Fixed-capacity ring of periodic hub snapshots.
pub struct HubHistory {
    ring: Mutex<VecDeque<HistorySample>>,
    capacity: usize,
    interval_ms: u64,
    /// `at_ms` of the newest sample (0 = none yet). Checked before the
    /// lock so an early tick is one relaxed load.
    last_ms: AtomicU64,
    epoch: Instant,
}

impl HubHistory {
    /// A history retaining `capacity` snapshots at most one per
    /// `interval`.
    pub fn new(capacity: usize, interval: Duration) -> HubHistory {
        HubHistory {
            ring: Mutex::with_rank(
                VecDeque::new(),
                crate::lock_rank::COMMON_OBS_HISTORY,
                "obs.hub_history",
            ),
            capacity,
            interval_ms: interval.as_millis() as u64,
            last_ms: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// A history that retains nothing (the overhead baseline).
    pub fn disabled() -> HubHistory {
        HubHistory::new(0, Duration::from_secs(1))
    }

    /// Whether retention is on.
    pub fn is_enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Number of snapshots retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The retention resolution.
    pub fn interval(&self) -> Duration {
        Duration::from_millis(self.interval_ms)
    }

    /// Milliseconds since the history's epoch (the `at_ms` timebase).
    pub fn now_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64 + 1
    }

    /// Take and retain a snapshot if the interval elapsed. Returns
    /// whether a sample was pushed. The hub snapshot (which runs the
    /// registered sampling closures) happens *outside* the ring lock, so
    /// the lock stays a leaf regardless of what those closures read.
    pub fn tick(&self, hub: &MetricsHub) -> bool {
        if self.capacity == 0 {
            return false;
        }
        let now_ms = self.now_ms();
        // ordering: relaxed — rate-limit stamp; a raced concurrent tick only
        // pushes one extra sample (single-pusher in practice: the watcher)
        let last = self.last_ms.load(Ordering::Relaxed);
        if last != 0 && now_ms.saturating_sub(last) < self.interval_ms {
            return false;
        }
        // ordering: relaxed — see the load above
        self.last_ms.store(now_ms, Ordering::Relaxed);
        let snapshot = hub.snapshot();
        let mut ring = self.ring.lock();
        ring.push_back(HistorySample { at_ms: now_ms, snapshot });
        while ring.len() > self.capacity {
            ring.pop_front();
        }
        true
    }

    /// Number of snapshots currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().len()
    }

    /// Whether no snapshot has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All retained samples, oldest first.
    pub fn samples(&self) -> Vec<HistorySample> {
        self.ring.lock().iter().cloned().collect()
    }

    /// The newest retained sample.
    pub fn latest(&self) -> Option<HistorySample> {
        self.ring.lock().back().cloned()
    }

    /// The samples whose age is within `window` of the newest sample,
    /// oldest first.
    pub fn window(&self, window: Duration) -> Vec<HistorySample> {
        let ring = self.ring.lock();
        let Some(newest) = ring.back() else { return Vec::new() };
        let floor = newest.at_ms.saturating_sub(window.as_millis() as u64);
        ring.iter().filter(|s| s.at_ms >= floor).cloned().collect()
    }

    /// Derived counter rate: the delta between the oldest and newest
    /// in-window readings divided by their separation. `None` when the
    /// metric is absent, not a counter, or the window holds < 2 samples.
    pub fn rate(&self, node: NodeId, name: &str, window: Duration) -> Option<f64> {
        let samples = self.window(window);
        let series: Vec<(u64, u64)> = samples
            .iter()
            .filter_map(|s| match s.snapshot.get(node, name) {
                Some(MetricValue::Counter(v)) => Some((s.at_ms, *v)),
                _ => None,
            })
            .collect();
        let (first, last) = (series.first()?, series.last()?);
        if last.0 <= first.0 {
            return None;
        }
        let dt_s = (last.0 - first.0) as f64 / 1000.0;
        Some(last.1.saturating_sub(first.1) as f64 / dt_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Counter;
    use std::sync::Arc;

    #[test]
    fn disabled_history_retains_nothing() {
        let hub = MetricsHub::new();
        let h = HubHistory::disabled();
        assert!(!h.is_enabled());
        assert!(!h.tick(&hub));
        assert!(h.is_empty());
        assert!(h.latest().is_none());
    }

    #[test]
    fn ring_caps_at_capacity() {
        let hub = MetricsHub::new();
        hub.register_counter_fn(NodeId::PRIMARY, "c", || 1);
        let h = HubHistory::new(3, Duration::ZERO);
        for _ in 0..10 {
            assert!(h.tick(&hub));
        }
        assert_eq!(h.len(), 3);
        let s = h.samples();
        assert!(s.windows(2).all(|w| w[0].at_ms <= w[1].at_ms), "oldest first");
    }

    #[test]
    fn interval_rate_limits() {
        let hub = MetricsHub::new();
        let h = HubHistory::new(8, Duration::from_secs(3600));
        assert!(h.tick(&hub), "first tick always samples");
        assert!(!h.tick(&hub), "second tick inside the interval is dropped");
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn counter_rate_over_window() {
        let hub = MetricsHub::new();
        let c = Arc::new(Counter::new());
        hub.register_counter(NodeId::PRIMARY, "commits", Arc::clone(&c));
        let h = HubHistory::new(16, Duration::ZERO);
        h.tick(&hub);
        c.add(500);
        std::thread::sleep(Duration::from_millis(20));
        h.tick(&hub);
        let rate = h.rate(NodeId::PRIMARY, "commits", Duration::from_secs(60)).unwrap();
        assert!(rate > 0.0, "500 increments over ~20ms must read as a positive rate");
        // Unknown metric and too-small windows degrade to None.
        assert!(h.rate(NodeId::PRIMARY, "nope", Duration::from_secs(60)).is_none());
        assert!(h.rate(NodeId::PRIMARY, "commits", Duration::ZERO).is_none());
    }
}

//! A minimal JSON parser for validating exporter output.
//!
//! The workspace is offline (no serde), and the only JSON consumers are
//! tests asserting that the exporters emit well-formed documents and
//! tools (`socmon`) echoing them. This recursive-descent parser supports
//! the full JSON grammar and nothing else — no spans, no streaming, no
//! serialization.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as `i64`, if this is a number with an integral value.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && n.abs() < 9.0e18 => Some(*n as i64),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, ch: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == ch {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", ch as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_keyword(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_keyword(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_keyword(b: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b.get(*pos + 1..*pos + 5).ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences included).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = s.chars().next().ok_or("empty")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v =
            parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": null, "e": true}, "f": ""}"#)
                .unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Null));
        assert_eq!(v.get("f").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn integer_accessor() {
        let v = parse("{\"n\": 42, \"x\": 1.5}").unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(42));
        assert_eq!(v.get("x").unwrap().as_i64(), None);
    }
}

//! Snapshot exporters: Prometheus text format and JSON.
//!
//! Both renderers are hand-rolled (the workspace is offline; no serde)
//! and operate on a [`MetricSnapshot`], so they can be pointed at any
//! hub. Prometheus names are the `tier.index.metric` convention with
//! dots mapped to the legal `_`, the node kept as a label:
//!
//! ```text
//! # TYPE socrates_records_applied counter
//! socrates_records_applied{tier="pageserver",node="pageserver[0]"} 1234
//! ```
//!
//! Histograms render as Prometheus summaries (quantiles + `_sum` +
//! `_count`); in JSON they are objects with the full
//! [`HistogramSnapshot`](crate::metrics::HistogramSnapshot) fields.

use super::hub::{MetricSnapshot, MetricValue};
use super::trace::{Stage, TraceRecorder};
use std::fmt::Write;

/// Make a metric name legal for Prometheus (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn prom_sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphabetic() || ch == '_' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &MetricSnapshot) -> String {
    let mut out = String::new();
    let mut last_type_line = String::new();
    for sample in &snapshot.samples {
        let metric = format!("socrates_{}", prom_sanitize(&sample.name));
        let labels = format!("tier=\"{}\",node=\"{}\"", sample.node.kind.tier_name(), sample.node);
        // Emit each # TYPE header once per metric name; samples are sorted
        // by (node, name) so the same name can recur across nodes.
        let type_line = format!("# TYPE {metric} {}\n", sample.value.prom_type());
        if type_line != last_type_line && !out.contains(&type_line) {
            out.push_str(&type_line);
            last_type_line = type_line;
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{metric}{{{labels}}} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{metric}{{{labels}}} {v}");
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50_us), ("0.9", h.p90_us), ("0.99", h.p99_us)] {
                    let _ = writeln!(out, "{metric}{{{labels},quantile=\"{q}\"}} {v}");
                }
                let sum = h.mean_us * h.count as f64;
                let _ = writeln!(out, "{metric}_sum{{{labels}}} {sum}");
                let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `f64` to JSON: finite values print as numbers; NaN/inf become null
/// (JSON has no representation for them).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render a snapshot as a JSON document:
/// `{"metrics": [{"name": "tier.index.metric", "tier": ..., "node": ...,
/// "type": ..., "value": ...}, ...]}`.
pub fn json_snapshot(snapshot: &MetricSnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, sample) in snapshot.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"tier\":\"{}\",\"node\":\"{}\",\"metric\":\"{}\"",
            json_escape(&sample.full_name()),
            sample.node.kind.tier_name(),
            json_escape(&sample.node.to_string()),
            json_escape(&sample.name),
        );
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}}}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"type\":\"histogram\",\"value\":{{\"count\":{},\"min_us\":{},\
                     \"max_us\":{},\"mean_us\":{},\"stddev_us\":{},\"p50_us\":{},\
                     \"p90_us\":{},\"p99_us\":{}}}}}",
                    h.count,
                    h.min_us,
                    h.max_us,
                    json_f64(h.mean_us),
                    json_f64(h.stddev_us),
                    h.p50_us,
                    h.p90_us,
                    h.p99_us,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Render a trace recorder's per-stage latency summary as JSON:
/// `{"commits": N, "stages": {"engine": {...µs summary...}, ...}}`.
pub fn json_trace_summary(recorder: &TraceRecorder) -> String {
    let mut out = format!("{{\"commits\":{},\"stages\":{{", recorder.commits_recorded());
    for (i, stage) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = recorder.stage_snapshot(*stage);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{},\"max_us\":{}}}",
            stage.name(),
            s.count,
            json_f64(s.mean_us),
            s.p50_us,
            s.p90_us,
            s.p99_us,
            s.max_us,
        );
    }
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::metrics::{Counter, Gauge, Histogram};
    use crate::obs::hub::MetricsHub;
    use std::sync::Arc;

    fn sample_hub() -> MetricsHub {
        let hub = MetricsHub::new();
        let c = Arc::new(Counter::new());
        c.add(5);
        hub.register_counter(NodeId::XLOG, "blocks_offered", c);
        let g = Arc::new(Gauge::new());
        g.set(-3);
        hub.register_gauge(NodeId::page_server(0), "apply_lag_bytes", g);
        let h = Arc::new(Histogram::new());
        h.record(10);
        h.record(30);
        hub.register_histogram(NodeId::PRIMARY, "commit_latency_us", h);
        hub
    }

    #[test]
    fn prometheus_format_shape() {
        let text = prometheus_text(&sample_hub().snapshot());
        assert!(text.contains("# TYPE socrates_blocks_offered counter"));
        assert!(text.contains("socrates_blocks_offered{tier=\"xlog\",node=\"xlog[0]\"} 5"));
        assert!(text.contains("# TYPE socrates_apply_lag_bytes gauge"));
        assert!(text
            .contains("socrates_apply_lag_bytes{tier=\"pageserver\",node=\"pageserver[0]\"} -3"));
        assert!(text.contains("# TYPE socrates_commit_latency_us summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("socrates_commit_latency_us_count"));
        // Every non-comment line is name{labels} value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains('{') && series.ends_with('}'), "bad series {series}");
            assert!(value.parse::<f64>().is_ok(), "bad value {value}");
        }
    }

    #[test]
    fn json_format_parses() {
        let json = json_snapshot(&sample_hub().snapshot());
        let v = crate::obs::testjson::parse(&json).expect("valid JSON");
        let metrics = v.get("metrics").and_then(|m| m.as_array()).expect("metrics array");
        assert_eq!(metrics.len(), 3);
        let names: Vec<&str> = metrics.iter().filter_map(|m| m.get("name")?.as_str()).collect();
        assert!(names.contains(&"xlog.0.blocks_offered"));
        assert!(names.contains(&"pageserver.0.apply_lag_bytes"));
        assert!(names.contains(&"primary.0.commit_latency_us"));
        let lag = metrics
            .iter()
            .find(|m| m.get("metric").and_then(|x| x.as_str()) == Some("apply_lag_bytes"))
            .unwrap();
        assert_eq!(lag.get("value").and_then(|v| v.as_i64()), Some(-3));
    }

    #[test]
    fn json_trace_summary_parses() {
        let r = crate::obs::trace::TraceRecorder::new(4);
        r.record_commit(crate::TxnId::new(1), crate::Lsn::new(10), 2_000, 3_000);
        let json = json_trace_summary(&r);
        let v = crate::obs::testjson::parse(&json).expect("valid JSON");
        assert_eq!(v.get("commits").and_then(|c| c.as_i64()), Some(1));
        let stages = v.get("stages").expect("stages");
        for stage in Stage::ALL {
            assert!(stages.get(stage.name()).is_some(), "missing {}", stage.name());
        }
    }

    #[test]
    fn sanitizer_and_escapes() {
        assert_eq!(prom_sanitize("a.b-c d9"), "a_b_c_d9");
        assert_eq!(prom_sanitize("9lead"), "_lead");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
    }
}

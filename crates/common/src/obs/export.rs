//! Snapshot exporters: Prometheus text format, JSON, and Chrome
//! trace-event JSON for cross-tier spans.
//!
//! All renderers are hand-rolled (the workspace is offline; no serde)
//! and operate on a [`MetricSnapshot`], so they can be pointed at any
//! hub. Prometheus names are the `tier.index.metric` convention with
//! dots mapped to the legal `_`, the node kept as a label:
//!
//! ```text
//! # HELP socrates_records_applied Socrates metric records_applied
//! # TYPE socrates_records_applied counter
//! socrates_records_applied{tier="pageserver",node="pageserver[0]"} 1234
//! ```
//!
//! Help text and label values are escaped per the exposition format
//! (`\\` / `\n` in help, plus `\"` in labels), and the document always
//! ends with a `# EOF` marker — also for an empty hub, whose output
//! would otherwise be an empty string that scrapers flag as a failed
//! exposition. Histograms render as Prometheus summaries (quantiles +
//! `_sum` + `_count`); in JSON they are objects with the full
//! [`HistogramSnapshot`](crate::metrics::HistogramSnapshot) fields.
//!
//! [`chrome_trace_json`] turns a [`SpanRing`](super::ctx::SpanRing)
//! snapshot into the Chrome trace-event format (`chrome://tracing`,
//! Perfetto): one lane per node, complete (`ph:"X"`) events carrying the
//! causal ids in `args`, so a traced commit renders as a cross-tier
//! flamegraph.

use super::ctx::SpanEvent;
use super::hub::{MetricSnapshot, MetricValue};
use super::trace::{Stage, TraceRecorder};
use crate::ids::{NodeId, NodeKind};
use std::collections::HashSet;
use std::fmt::Write;

/// Make a metric name legal for Prometheus (`[a-zA-Z_][a-zA-Z0-9_]*`).
fn prom_sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, ch) in name.chars().enumerate() {
        let ok = ch.is_ascii_alphabetic() || ch == '_' || (i > 0 && ch.is_ascii_digit());
        out.push(if ok { ch } else { '_' });
    }
    out
}

/// Escape a `# HELP` text: the exposition format reserves `\` and
/// newline.
fn prom_escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label value: help escapes plus the quote.
fn prom_escape_label(s: &str) -> String {
    prom_escape_help(s).replace('"', "\\\"")
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn prometheus_text(snapshot: &MetricSnapshot) -> String {
    let mut out = String::new();
    // Samples are sorted by (node, name), so the same metric name recurs
    // across nodes; headers are emitted once per name.
    let mut seen_headers: HashSet<String> = HashSet::new();
    for sample in &snapshot.samples {
        let metric = format!("socrates_{}", prom_sanitize(&sample.name));
        let labels = format!(
            "tier=\"{}\",node=\"{}\"",
            prom_escape_label(sample.node.kind.tier_name()),
            prom_escape_label(&sample.node.to_string())
        );
        if seen_headers.insert(metric.clone()) {
            let _ =
                writeln!(out, "# HELP {metric} Socrates metric {}", prom_escape_help(&sample.name));
            let _ = writeln!(out, "# TYPE {metric} {}", sample.value.prom_type());
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{metric}{{{labels}}} {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{metric}{{{labels}}} {v}");
            }
            MetricValue::Histogram(h) => {
                for (q, v) in [("0.5", h.p50_us), ("0.9", h.p90_us), ("0.99", h.p99_us)] {
                    let _ = writeln!(out, "{metric}{{{labels},quantile=\"{q}\"}} {v}");
                }
                let sum = h.mean_us * h.count as f64;
                let _ = writeln!(out, "{metric}_sum{{{labels}}} {sum}");
                let _ = writeln!(out, "{metric}_count{{{labels}}} {}", h.count);
            }
        }
    }
    // Always terminate the exposition — an empty hub must still produce
    // a well-formed (non-empty) document.
    out.push_str("# EOF\n");
    out
}

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `f64` to JSON: finite values print as numbers; NaN/inf become null
/// (JSON has no representation for them).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Render a snapshot as a JSON document:
/// `{"metrics": [{"name": "tier.index.metric", "tier": ..., "node": ...,
/// "type": ..., "value": ...}, ...]}`.
pub fn json_snapshot(snapshot: &MetricSnapshot) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, sample) in snapshot.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"tier\":\"{}\",\"node\":\"{}\",\"metric\":\"{}\"",
            json_escape(&sample.full_name()),
            sample.node.kind.tier_name(),
            json_escape(&sample.node.to_string()),
            json_escape(&sample.name),
        );
        match &sample.value {
            MetricValue::Counter(v) => {
                let _ = write!(out, ",\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, ",\"type\":\"gauge\",\"value\":{v}}}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    ",\"type\":\"histogram\",\"value\":{{\"count\":{},\"min_us\":{},\
                     \"max_us\":{},\"mean_us\":{},\"stddev_us\":{},\"p50_us\":{},\
                     \"p90_us\":{},\"p99_us\":{}}}}}",
                    h.count,
                    h.min_us,
                    h.max_us,
                    json_f64(h.mean_us),
                    json_f64(h.stddev_us),
                    h.p50_us,
                    h.p90_us,
                    h.p99_us,
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Render a trace recorder's per-stage latency summary as JSON:
/// `{"commits": N, "stages": {"engine": {...µs summary...}, ...}}`.
pub fn json_trace_summary(recorder: &TraceRecorder) -> String {
    let mut out = format!("{{\"commits\":{},\"stages\":{{", recorder.commits_recorded());
    for (i, stage) in Stage::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let s = recorder.stage_snapshot(*stage);
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"mean_us\":{},\"p50_us\":{},\"p90_us\":{},\
             \"p99_us\":{},\"max_us\":{}}}",
            stage.name(),
            s.count,
            json_f64(s.mean_us),
            s.p50_us,
            s.p90_us,
            s.p99_us,
            s.max_us,
        );
    }
    out.push_str("}}");
    out
}

/// The Chrome trace-event "thread" lane a node renders into: fixed lanes
/// for the singleton tiers, indexed bands for the replicated ones.
fn chrome_lane(node: NodeId) -> u32 {
    match node.kind {
        NodeKind::Primary => 1,
        NodeKind::XLog => 2,
        NodeKind::XStore => 3,
        NodeKind::Fault => 4,
        NodeKind::Client => 5,
        NodeKind::PageServer => 10 + node.index,
        NodeKind::Acceptor => 50 + node.index,
        NodeKind::Secondary => 100 + node.index,
    }
}

/// Render span events in the Chrome trace-event JSON format
/// (`chrome://tracing` / Perfetto / `socmon --export-chrome`).
///
/// Each node gets a named lane; spans are complete events (`ph:"X"`,
/// microsecond timestamps) whose `args` carry the causal ids
/// (`trace`/`span`/`parent`). Duplicate `(trace, span)` pairs — a
/// coalesced GetPage range records its shared root once per member —
/// are emitted once.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    // Lane metadata: one thread_name record per distinct node.
    let mut nodes: Vec<NodeId> = Vec::new();
    for ev in events {
        if !nodes.contains(&ev.node) {
            nodes.push(ev.node);
        }
    }
    nodes.sort_by_key(|n| chrome_lane(*n));
    for node in nodes {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            chrome_lane(node),
            json_escape(&node.to_string())
        );
    }
    let mut seen: HashSet<(u64, u64)> = HashSet::new();
    for ev in events {
        if !seen.insert((ev.trace_id, ev.span_id)) {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
            chrome_lane(ev.node),
            ev.kind.name(),
            ev.node.kind.tier_name(),
            json_f64(ev.start_ns as f64 / 1000.0),
            json_f64((ev.dur_ns as f64 / 1000.0).max(0.001)),
            ev.trace_id,
            ev.span_id,
            ev.parent_id,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::NodeId;
    use crate::metrics::{Counter, Gauge, Histogram};
    use crate::obs::ctx::SpanKind;
    use crate::obs::hub::MetricsHub;
    use std::sync::Arc;

    fn sample_hub() -> MetricsHub {
        let hub = MetricsHub::new();
        let c = Arc::new(Counter::new());
        c.add(5);
        hub.register_counter(NodeId::XLOG, "blocks_offered", c);
        let g = Arc::new(Gauge::new());
        g.set(-3);
        hub.register_gauge(NodeId::page_server(0), "apply_lag_bytes", g);
        let h = Arc::new(Histogram::new());
        h.record(10);
        h.record(30);
        hub.register_histogram(NodeId::PRIMARY, "commit_latency_us", h);
        hub
    }

    #[test]
    fn prometheus_format_shape() {
        let text = prometheus_text(&sample_hub().snapshot());
        assert!(text.contains("# TYPE socrates_blocks_offered counter"));
        assert!(text.contains("socrates_blocks_offered{tier=\"xlog\",node=\"xlog[0]\"} 5"));
        assert!(text.contains("# TYPE socrates_apply_lag_bytes gauge"));
        assert!(text
            .contains("socrates_apply_lag_bytes{tier=\"pageserver\",node=\"pageserver[0]\"} -3"));
        assert!(text.contains("# TYPE socrates_commit_latency_us summary"));
        assert!(text.contains("quantile=\"0.5\""));
        assert!(text.contains("socrates_commit_latency_us_count"));
        assert!(text.ends_with("# EOF\n"));
        // Every non-comment line is name{labels} value.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains('{') && series.ends_with('}'), "bad series {series}");
            assert!(value.parse::<f64>().is_ok(), "bad value {value}");
        }
    }

    #[test]
    fn prometheus_every_metric_has_help_and_type() {
        let text = prometheus_text(&sample_hub().snapshot());
        for metric in
            ["socrates_blocks_offered", "socrates_apply_lag_bytes", "socrates_commit_latency_us"]
        {
            assert!(text.contains(&format!("# HELP {metric} ")), "missing HELP for {metric}");
            assert!(text.contains(&format!("# TYPE {metric} ")), "missing TYPE for {metric}");
        }
        // Headers are emitted once even when a name recurs across nodes.
        let hub = MetricsHub::new();
        hub.register_gauge_fn(NodeId::secondary(0), "lag", || 1);
        hub.register_gauge_fn(NodeId::secondary(1), "lag", || 2);
        let text = prometheus_text(&hub.snapshot());
        assert_eq!(text.matches("# TYPE socrates_lag gauge").count(), 1);
        assert_eq!(text.matches("# HELP socrates_lag").count(), 1);
        assert_eq!(text.matches("socrates_lag{").count(), 2);
    }

    #[test]
    fn prometheus_empty_hub_is_still_a_document() {
        let text = prometheus_text(&MetricsHub::new().snapshot());
        assert_eq!(text, "# EOF\n", "an empty hub must not render as an empty body");
    }

    #[test]
    fn prometheus_escapes_help_and_labels() {
        // Metric names are caller-controlled strings; a hostile one must
        // not break the exposition.
        let hub = MetricsHub::new();
        hub.register_counter_fn(NodeId::PRIMARY, "evil\"name\\with\nbreaks", || 1);
        let text = prometheus_text(&hub.snapshot());
        // The name itself is sanitised into the metric id...
        assert!(text.contains("socrates_evil_name_with_breaks{"));
        // ...and the HELP text escapes the backslash and newline.
        assert!(text.contains("Socrates metric evil\"name\\\\with\\nbreaks"));
        assert!(!text.contains("with\nbreaks"), "raw newline must not split the HELP line");
        assert_eq!(prom_escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_format_parses() {
        let json = json_snapshot(&sample_hub().snapshot());
        let v = crate::obs::testjson::parse(&json).expect("valid JSON");
        let metrics = v.get("metrics").and_then(|m| m.as_array()).expect("metrics array");
        assert_eq!(metrics.len(), 3);
        let names: Vec<&str> = metrics.iter().filter_map(|m| m.get("name")?.as_str()).collect();
        assert!(names.contains(&"xlog.0.blocks_offered"));
        assert!(names.contains(&"pageserver.0.apply_lag_bytes"));
        assert!(names.contains(&"primary.0.commit_latency_us"));
        let lag = metrics
            .iter()
            .find(|m| m.get("metric").and_then(|x| x.as_str()) == Some("apply_lag_bytes"))
            .unwrap();
        assert_eq!(lag.get("value").and_then(|v| v.as_i64()), Some(-3));
    }

    #[test]
    fn json_trace_summary_parses() {
        let r = crate::obs::trace::TraceRecorder::new(4);
        r.record_commit(crate::TxnId::new(1), crate::Lsn::new(10), 2_000, 3_000);
        let json = json_trace_summary(&r);
        let v = crate::obs::testjson::parse(&json).expect("valid JSON");
        assert_eq!(v.get("commits").and_then(|c| c.as_i64()), Some(1));
        let stages = v.get("stages").expect("stages");
        for stage in Stage::ALL {
            assert!(stages.get(stage.name()).is_some(), "missing {}", stage.name());
        }
    }

    #[test]
    fn sanitizer_and_escapes() {
        assert_eq!(prom_sanitize("a.b-c d9"), "a_b_c_d9");
        assert_eq!(prom_sanitize("9lead"), "_lead");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_f64(f64::NAN), "null");
    }

    #[test]
    fn chrome_trace_renders_lanes_and_causal_args() {
        use crate::obs::ctx::SpanEvent;
        let events = [
            SpanEvent {
                trace_id: 1,
                span_id: 1,
                parent_id: 0,
                kind: SpanKind::Commit,
                node: NodeId::PRIMARY,
                start_ns: 1_000,
                dur_ns: 9_000,
            },
            SpanEvent {
                trace_id: 1,
                span_id: 2,
                parent_id: 1,
                kind: SpanKind::XlogFeed,
                node: NodeId::XLOG,
                start_ns: 3_000,
                dur_ns: 2_000,
            },
            // Duplicate (trace, span): a shared root recorded twice.
            SpanEvent {
                trace_id: 1,
                span_id: 1,
                parent_id: 0,
                kind: SpanKind::Commit,
                node: NodeId::PRIMARY,
                start_ns: 1_000,
                dur_ns: 9_000,
            },
        ];
        let json = chrome_trace_json(&events);
        let doc = crate::obs::testjson::parse(&json).expect("valid JSON");
        let evs = doc.get("traceEvents").unwrap().as_array().unwrap();
        // 2 thread_name metadata records + 2 deduped spans.
        assert_eq!(evs.len(), 4);
        let metas: Vec<_> =
            evs.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("M")).collect();
        assert_eq!(metas.len(), 2);
        assert!(metas
            .iter()
            .any(|m| m.get("args").unwrap().get("name").unwrap().as_str() == Some("primary[0]")));
        let spans: Vec<_> =
            evs.iter().filter(|e| e.get("ph").unwrap().as_str() == Some("X")).collect();
        assert_eq!(spans.len(), 2, "duplicate (trace, span) must collapse");
        let child =
            spans.iter().find(|s| s.get("name").unwrap().as_str() == Some("xlog.feed")).unwrap();
        assert_eq!(child.get("args").unwrap().get("parent").unwrap().as_i64(), Some(1));
        assert_eq!(child.get("ts").unwrap().as_f64(), Some(3.0), "ns render as µs");
        // Lanes differ across tiers.
        assert_ne!(child.get("tid").unwrap().as_i64(), spans[0].get("tid").unwrap().as_i64());
    }

    #[test]
    fn chrome_trace_empty_input() {
        let doc = crate::obs::testjson::parse(&chrome_trace_json(&[])).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}

//! The unified metrics hub.
//!
//! Every tier keeps its metrics in private structs of lock-free
//! primitives ([`Counter`], [`Gauge`], [`Histogram`]) — that discipline
//! stays. The hub adds a *registry* layer on top: services register each
//! metric under `(NodeId, name)` either by sharing an `Arc` to the
//! primitive or by providing a sampling closure over whatever they
//! already own. Registration happens once at startup and touches no hot
//! path; [`MetricsHub::snapshot`] walks the registry and samples every
//! source, producing the uniform view the exporters and `socmon` render.
//!
//! Metric naming convention: the full name of a sample is
//! `tier.index.metric` (e.g. `pageserver.0.records_applied`), derived
//! from the owning [`NodeId`] plus the registered metric name.

use crate::ids::NodeId;
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use parking_lot::RwLock;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Where a metric's current value comes from at snapshot time.
enum Source {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
    CounterFn(Box<dyn Fn() -> u64 + Send + Sync>),
    GaugeFn(Box<dyn Fn() -> i64 + Send + Sync>),
    HistogramFn(Box<dyn Fn() -> HistogramSnapshot + Send + Sync>),
}

impl Source {
    fn sample(&self) -> MetricValue {
        match self {
            Source::Counter(c) => MetricValue::Counter(c.get()),
            Source::Gauge(g) => MetricValue::Gauge(g.get()),
            Source::Histogram(h) => MetricValue::Histogram(h.snapshot()),
            Source::CounterFn(f) => MetricValue::Counter(f()),
            Source::GaugeFn(f) => MetricValue::Gauge(f()),
            Source::HistogramFn(f) => MetricValue::Histogram(f()),
        }
    }
}

/// A sampled metric value.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Point-in-time signed level.
    Gauge(i64),
    /// Distribution summary.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Prometheus metric type keyword for this value.
    pub fn prom_type(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "summary",
        }
    }
}

/// One `(node, name, value)` triple in a hub snapshot.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricSample {
    /// The node that owns the metric.
    pub node: NodeId,
    /// The metric's short name (last segment of the full name).
    pub name: String,
    /// The sampled value.
    pub value: MetricValue,
}

impl MetricSample {
    /// The full `tier.index.metric` name.
    pub fn full_name(&self) -> String {
        format!("{}.{}.{}", self.node.kind.tier_name(), self.node.index, self.name)
    }
}

/// A point-in-time view of every registered metric, sorted by
/// `(node, name)` so renderings are stable.
#[derive(Clone, Debug, Default)]
pub struct MetricSnapshot {
    /// All samples, sorted by node then metric name.
    pub samples: Vec<MetricSample>,
}

impl MetricSnapshot {
    /// The sample for `node`/`name`, if registered.
    pub fn get(&self, node: NodeId, name: &str) -> Option<&MetricValue> {
        self.samples.iter().find(|s| s.node == node && s.name == name).map(|s| &s.value)
    }

    /// All samples belonging to `node`.
    pub fn for_node(&self, node: NodeId) -> impl Iterator<Item = &MetricSample> {
        self.samples.iter().filter(move |s| s.node == node)
    }

    /// The distinct nodes present in the snapshot, sorted.
    pub fn nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.samples.iter().map(|s| s.node).collect();
        nodes.dedup(); // samples are sorted by node already
        nodes
    }
}

/// The hub's registry plus the duplicate-registration ledger.
#[derive(Default)]
struct HubInner {
    sources: BTreeMap<(NodeId, String), Source>,
    /// `(node, name)` pairs that were registered twice without an
    /// intervening [`MetricsHub::unregister_node`]. The first source
    /// wins; the duplicate is recorded (and warned about) instead of
    /// silently shadowing it — soclint's metric-name rule and every
    /// exporter assume `tier.index.metric` names are unique.
    duplicates: Vec<(NodeId, String)>,
}

/// The workspace-wide metric registry. Cheap to clone (`Arc` inside);
/// every tier of a deployment registers into the same hub.
#[derive(Clone, Default)]
pub struct MetricsHub {
    inner: Arc<RwLock<HubInner>>,
}

impl MetricsHub {
    /// New empty hub.
    pub fn new() -> MetricsHub {
        MetricsHub::default()
    }

    fn insert(&self, node: NodeId, name: &str, source: Source) {
        let mut inner = self.inner.write();
        match inner.sources.entry((node, name.to_string())) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(source);
            }
            std::collections::btree_map::Entry::Occupied(_) => {
                // Keep the first registration: a shadowed source would
                // silently freeze the metric it displaced. Nodes that
                // legitimately come back (failover, restart_partition)
                // call `unregister_node` first, which frees the name.
                eprintln!(
                    "[metrics] duplicate registration of {}.{}.{name} ignored (first wins)",
                    node.kind.tier_name(),
                    node.index
                );
                inner.duplicates.push((node, name.to_string()));
            }
        }
    }

    /// `(node, name)` pairs rejected as duplicates since the last
    /// `unregister_node` of that node. Non-empty means a registration
    /// bug: two sources raced for one `tier.index.metric` name.
    pub fn duplicate_registrations(&self) -> Vec<(NodeId, String)> {
        self.inner.read().duplicates.clone()
    }

    /// Register a shared [`Counter`].
    pub fn register_counter(&self, node: NodeId, name: &str, counter: Arc<Counter>) {
        self.insert(node, name, Source::Counter(counter));
    }

    /// Register a shared [`Gauge`].
    pub fn register_gauge(&self, node: NodeId, name: &str, gauge: Arc<Gauge>) {
        self.insert(node, name, Source::Gauge(gauge));
    }

    /// Register a shared [`Histogram`].
    pub fn register_histogram(&self, node: NodeId, name: &str, hist: Arc<Histogram>) {
        self.insert(node, name, Source::Histogram(hist));
    }

    /// Register a counter sampled through a closure — how services expose
    /// counters embedded in their existing metrics structs without
    /// changing a field type.
    pub fn register_counter_fn(
        &self,
        node: NodeId,
        name: &str,
        f: impl Fn() -> u64 + Send + Sync + 'static,
    ) {
        self.insert(node, name, Source::CounterFn(Box::new(f)));
    }

    /// Register a gauge sampled through a closure (LSN lags, queue depths
    /// derived from watermarks).
    pub fn register_gauge_fn(
        &self,
        node: NodeId,
        name: &str,
        f: impl Fn() -> i64 + Send + Sync + 'static,
    ) {
        self.insert(node, name, Source::GaugeFn(Box::new(f)));
    }

    /// Register a histogram sampled through a closure.
    pub fn register_histogram_fn(
        &self,
        node: NodeId,
        name: &str,
        f: impl Fn() -> HistogramSnapshot + Send + Sync + 'static,
    ) {
        self.insert(node, name, Source::HistogramFn(Box::new(f)));
    }

    /// Drop every metric registered by `node` — called when a node leaves
    /// the deployment (secondary removed, page server killed) so its
    /// closures (which capture the node's state) are released.
    pub fn unregister_node(&self, node: NodeId) {
        let mut inner = self.inner.write();
        inner.sources.retain(|(n, _), _| *n != node);
        // The node's names are free again; stale duplicate records would
        // make a clean re-registration after failover look like a bug.
        inner.duplicates.retain(|(n, _)| *n != node);
    }

    /// Drop the subset of `node`'s metrics whose name matches `pred`.
    /// Needed when a node id is shared by sources with different lifetimes
    /// (e.g. the primary process's metrics vs. deployment-lifetime trace
    /// histograms that are merely *exported* under the primary): a failover
    /// must free the former so the successor can re-register, while the
    /// latter survive.
    pub fn unregister_where(&self, node: NodeId, pred: impl Fn(&str) -> bool) {
        let mut inner = self.inner.write();
        inner.sources.retain(|(n, name), _| *n != node || !pred(name));
        inner.duplicates.retain(|(n, name)| *n != node || !pred(name));
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.inner.read().sources.len()
    }

    /// Whether the hub has no registrations.
    pub fn is_empty(&self) -> bool {
        self.inner.read().sources.is_empty()
    }

    /// Sample every registered source.
    pub fn snapshot(&self) -> MetricSnapshot {
        let inner = self.inner.read();
        let samples = inner
            .sources
            .iter()
            .map(|((node, name), source)| MetricSample {
                node: *node,
                name: name.clone(),
                value: source.sample(),
            })
            .collect();
        // BTreeMap iteration is already (node, name)-sorted.
        MetricSnapshot { samples }
    }
}

impl std::fmt::Debug for MetricsHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsHub").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn register_sample_and_full_names() {
        let hub = MetricsHub::new();
        let c = Arc::new(Counter::new());
        let g = Arc::new(Gauge::new());
        let h = Arc::new(Histogram::new());
        hub.register_counter(NodeId::XLOG, "blocks_offered", Arc::clone(&c));
        hub.register_gauge(NodeId::page_server(0), "apply_lag_bytes", Arc::clone(&g));
        hub.register_histogram(NodeId::PRIMARY, "commit_latency", Arc::clone(&h));
        c.add(3);
        g.set(-7);
        h.record(100);

        let snap = hub.snapshot();
        assert_eq!(snap.samples.len(), 3);
        assert_eq!(snap.get(NodeId::XLOG, "blocks_offered"), Some(&MetricValue::Counter(3)));
        assert_eq!(
            snap.get(NodeId::page_server(0), "apply_lag_bytes"),
            Some(&MetricValue::Gauge(-7))
        );
        match snap.get(NodeId::PRIMARY, "commit_latency") {
            Some(MetricValue::Histogram(s)) => assert_eq!(s.count, 1),
            other => panic!("unexpected {other:?}"),
        }
        let names: Vec<String> = snap.samples.iter().map(|s| s.full_name()).collect();
        assert!(names.contains(&"xlog.0.blocks_offered".to_string()));
        assert!(names.contains(&"pageserver.0.apply_lag_bytes".to_string()));
        assert!(names.contains(&"primary.0.commit_latency".to_string()));
    }

    #[test]
    fn closure_sources_sample_lazily() {
        let hub = MetricsHub::new();
        let v = Arc::new(AtomicU64::new(0));
        let v2 = Arc::clone(&v);
        hub.register_counter_fn(NodeId::XSTORE, "reads", move || v2.load(Ordering::Relaxed));
        hub.register_gauge_fn(NodeId::XSTORE, "lag", || 42);
        assert_eq!(hub.snapshot().get(NodeId::XSTORE, "reads"), Some(&MetricValue::Counter(0)));
        v.store(9, Ordering::Relaxed);
        let snap = hub.snapshot();
        assert_eq!(snap.get(NodeId::XSTORE, "reads"), Some(&MetricValue::Counter(9)));
        assert_eq!(snap.get(NodeId::XSTORE, "lag"), Some(&MetricValue::Gauge(42)));
    }

    #[test]
    fn unregister_node_removes_only_that_node() {
        let hub = MetricsHub::new();
        hub.register_gauge_fn(NodeId::secondary(0), "lag", || 1);
        hub.register_gauge_fn(NodeId::secondary(1), "lag", || 2);
        hub.register_gauge_fn(NodeId::secondary(1), "queue", || 3);
        assert_eq!(hub.len(), 3);
        hub.unregister_node(NodeId::secondary(1));
        assert_eq!(hub.len(), 1);
        assert!(hub.snapshot().get(NodeId::secondary(0), "lag").is_some());
        assert!(hub.snapshot().get(NodeId::secondary(1), "lag").is_none());
    }

    #[test]
    fn snapshot_sorted_and_node_listing() {
        let hub = MetricsHub::new();
        hub.register_gauge_fn(NodeId::page_server(1), "b", || 0);
        hub.register_gauge_fn(NodeId::page_server(0), "z", || 0);
        hub.register_gauge_fn(NodeId::page_server(0), "a", || 0);
        hub.register_gauge_fn(NodeId::PRIMARY, "m", || 0);
        let snap = hub.snapshot();
        let keys: Vec<(NodeId, String)> =
            snap.samples.iter().map(|s| (s.node, s.name.clone())).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
        assert_eq!(
            snap.nodes(),
            vec![NodeId::PRIMARY, NodeId::page_server(0), NodeId::page_server(1)]
        );
        assert_eq!(snap.for_node(NodeId::page_server(0)).count(), 2);
    }

    #[test]
    fn duplicate_registration_keeps_first_and_is_recorded() {
        let hub = MetricsHub::new();
        hub.register_gauge_fn(NodeId::XLOG, "lag", || 1);
        hub.register_gauge_fn(NodeId::XLOG, "lag", || 2);
        assert_eq!(hub.len(), 1);
        // First registration wins; the shadow attempt is ledgered.
        assert_eq!(hub.snapshot().get(NodeId::XLOG, "lag"), Some(&MetricValue::Gauge(1)));
        assert_eq!(hub.duplicate_registrations(), vec![(NodeId::XLOG, "lag".to_string())]);
    }

    #[test]
    fn unregister_clears_duplicates_and_frees_names() {
        let hub = MetricsHub::new();
        hub.register_gauge_fn(NodeId::XLOG, "lag", || 1);
        hub.register_gauge_fn(NodeId::XLOG, "lag", || 2);
        assert_eq!(hub.duplicate_registrations().len(), 1);
        hub.unregister_node(NodeId::XLOG);
        assert!(hub.duplicate_registrations().is_empty());
        // A node that re-registers after leaving is not a duplicate.
        hub.register_gauge_fn(NodeId::XLOG, "lag", || 3);
        assert_eq!(hub.snapshot().get(NodeId::XLOG, "lag"), Some(&MetricValue::Gauge(3)));
        assert!(hub.duplicate_registrations().is_empty());
    }
}

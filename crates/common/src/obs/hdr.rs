//! HDR-style log-linear latency histograms for the load observatory.
//!
//! The fixed [`crate::metrics::Histogram`] answers "roughly where is p99"
//! for always-on hub metrics. The open-loop load driver needs more: full
//! percentile *curves* (p50 through p99.99), tail resolution that does not
//! saturate, and recording cheap enough to sit on every simulated-client
//! operation without the clients contending on one cache line. This module
//! provides that primitive:
//!
//! - [`HdrHistogram`]: a log-linear (HdrHistogram-layout) histogram. Major
//!   buckets are powers of two; each major bucket is split into
//!   `2^sub_bits` linear sub-buckets, bounding relative error at
//!   `2^-sub_bits` across the whole `u64` range — no configured "max
//!   trackable value", no tail saturation.
//! - [`HdrShards`]: N independent histograms, one picked per recording
//!   thread, merged only when a snapshot is taken. Recording threads never
//!   share bucket cache lines; merging is the reader's problem.
//! - [`HdrSnapshot`]: an owned, mergeable copy of the bucket counts with
//!   exact side-stats, from which percentile curves are read.
//!
//! All recording-path operations are single relaxed atomic RMWs; snapshots
//! tolerate torn reads across cells (a sample may be visible in a bucket
//! before it is visible in `count`, skewing a percentile by at most the
//! in-flight samples, exactly like the fixed histogram).

use crate::metrics::HistogramSnapshot;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Sub-bucket resolution used by the hub-facing [`crate::metrics::Histogram`]
/// and by the load driver: 32 linear sub-buckets per power of two, relative
/// error ≤ 1/32 (≈3%) at every magnitude.
pub const DEFAULT_SUB_BITS: u32 = 5;

/// The quantile grid reported by [`HdrSnapshot::curve`]. Chosen so the knee
/// of a latency cliff is visible: the far tail (p99.9, p99.99) is exactly
/// where coordinated omission hides.
pub const CURVE_QUANTILES: [f64; 12] =
    [0.0, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.995, 0.999, 0.9999, 1.0];

/// Number of buckets for a given sub-bucket resolution: 64 major (one per
/// possible leading-bit position of a `u64`) × `2^sub_bits` linear.
pub const fn num_buckets(sub_bits: u32) -> usize {
    64 << sub_bits
}

/// The bucket a value lands in. Values below `2^sub_bits` map to their own
/// index (exact); above that, the top `sub_bits + 1` significant bits pick
/// (power, linear sub-bucket).
#[inline]
pub fn bucket_index(sub_bits: u32, v: u64) -> usize {
    let per = 1u64 << sub_bits;
    if v < per {
        return v as usize;
    }
    let pow = 63 - v.leading_zeros();
    let sub = (v >> (pow - sub_bits)) & (per - 1);
    ((pow << sub_bits) | sub as u32) as usize
}

/// The smallest value that maps to bucket `i` (what percentiles report).
///
/// Indices in the low-power region that `bucket_index` never produces
/// (values `< 2^sub_bits` use the identity mapping instead) keep the
/// identity floor so the floor stays monotone over the whole index range.
#[inline]
pub fn bucket_floor(sub_bits: u32, i: usize) -> u64 {
    let pow = (i >> sub_bits) as u32;
    if pow < sub_bits {
        return i as u64;
    }
    let sub = (i & ((1 << sub_bits) - 1)) as u64;
    (1u64 << pow) + (sub << (pow - sub_bits))
}

/// A lock-free log-linear histogram of `u64` samples (microseconds by
/// convention). See the module docs for the bucket layout.
#[derive(Debug)]
pub struct HdrHistogram {
    sub_bits: u32,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    sumsq: AtomicU64, // sum of squares, saturating
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new(DEFAULT_SUB_BITS)
    }
}

impl HdrHistogram {
    /// New, empty histogram with `2^sub_bits` linear sub-buckets per power
    /// of two. `sub_bits` must be in `1..=8` (2–256 sub-buckets; beyond
    /// that the table stops fitting in cache for no accuracy anyone needs).
    pub fn new(sub_bits: u32) -> HdrHistogram {
        assert!((1..=8).contains(&sub_bits), "sub_bits out of range: {sub_bits}");
        let buckets: Box<[AtomicU64]> =
            (0..num_buckets(sub_bits)).map(|_| AtomicU64::new(0)).collect();
        HdrHistogram {
            sub_bits,
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            sumsq: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// The configured sub-bucket resolution.
    pub fn sub_bits(&self) -> u32 {
        self.sub_bits
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` identical samples in one pass (used by merges and by
    /// callers that batch).
    pub fn record_n(&self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[bucket_index(self.sub_bits, v)].fetch_add(n, Ordering::Relaxed); // ordering: relaxed — independent statistic cells; snapshot tearing is fine
        self.count.fetch_add(n, Ordering::Relaxed); // ordering: relaxed — independent statistic cells; snapshot tearing is fine
        self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed); // ordering: relaxed — independent statistic cells; snapshot tearing is fine
        let sq = v.saturating_mul(v).saturating_mul(n);
        // Saturating accumulate: a plain fetch_add would wrap once the sum
        // of squares exceeds u64::MAX and corrupt the stddev.
        let mut cur = self.sumsq.load(Ordering::Relaxed); // ordering: relaxed — CAS loop re-reads on failure; value-only, no publication
        loop {
            let next = cur.saturating_add(sq);
            match self.sumsq.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) // ordering: relaxed — saturating stat accumulate; CAS needs no fences
            {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        self.min.fetch_min(v, Ordering::Relaxed); // ordering: relaxed — monotone min; ordering with other cells not needed
        self.max.fetch_max(v, Ordering::Relaxed); // ordering: relaxed — monotone max; ordering with other cells not needed
    }

    /// Record a [`std::time::Duration`] in microseconds.
    #[inline]
    pub fn record_duration(&self, d: std::time::Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed) // ordering: relaxed — monitoring read; staleness is acceptable
    }

    /// Value at quantile `q` in `[0, 1]` (bucket floor; relative error
    /// ≤ `2^-sub_bits`). Walks the live buckets without allocating.
    pub fn percentile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        // Clamp to the exact minimum: the lowest bucket's floor may sit
        // below the smallest recorded sample, and every quantile of the
        // data is ≥ min, so the clamp only improves accuracy (and keeps
        // percentile monotone against the exact-min q=0 read).
        let raw_min = self.min.load(Ordering::Relaxed); // ordering: relaxed — monitoring read; staleness is acceptable
        let min = match raw_min {
            u64::MAX => 0, // racing first record: bucket visible before min
            m => m,
        };
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed); // ordering: relaxed — bucket scan may tear vs. count; ≤1 sample skew
            if seen >= target {
                return bucket_floor(self.sub_bits, i).max(min);
            }
        }
        self.max.load(Ordering::Relaxed) // ordering: relaxed — monitoring read; staleness is acceptable
    }

    /// An owned, mergeable copy of the current state.
    pub fn snapshot(&self) -> HdrSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed)) // ordering: relaxed — snapshot tolerates torn cells by construction
            .collect();
        let count = buckets.iter().sum(); // derive from buckets so the snapshot is self-consistent
        HdrSnapshot {
            sub_bits: self.sub_bits,
            buckets,
            count,
            sum: self.sum.load(Ordering::Relaxed), // ordering: relaxed — snapshot tolerates torn cells by construction
            sumsq: self.sumsq.load(Ordering::Relaxed), // ordering: relaxed — snapshot tolerates torn cells by construction
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) }, // ordering: relaxed — snapshot tolerates torn cells by construction
            max: self.max.load(Ordering::Relaxed), // ordering: relaxed — snapshot tolerates torn cells by construction
        }
    }

    /// The fixed-summary view the exporters expect (same shape the
    /// pre-existing hub histograms produce, so output stays compatible).
    pub fn summary(&self) -> HistogramSnapshot {
        let count = self.count();
        let sum = self.sum.load(Ordering::Relaxed); // ordering: relaxed — snapshot tolerates torn cells by construction
        let sumsq = self.sumsq.load(Ordering::Relaxed); // ordering: relaxed — snapshot tolerates torn cells by construction
        let mean = if count == 0 { 0.0 } else { sum as f64 / count as f64 };
        let var =
            if count == 0 { 0.0 } else { (sumsq as f64 / count as f64 - mean * mean).max(0.0) };
        HistogramSnapshot {
            count,
            min_us: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) }, // ordering: relaxed — snapshot tolerates torn cells by construction
            max_us: self.max.load(Ordering::Relaxed), // ordering: relaxed — snapshot tolerates torn cells by construction
            mean_us: mean,
            stddev_us: var.sqrt(),
            p50_us: self.percentile(0.50),
            p90_us: self.percentile(0.90),
            p99_us: self.percentile(0.99),
        }
    }

    /// Forget all samples.
    pub fn reset(&self) {
        for b in self.buckets.iter() {
            b.store(0, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
        }
        self.count.store(0, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
        self.sum.store(0, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
        self.sumsq.store(0, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
        self.min.store(u64::MAX, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
        self.max.store(0, Ordering::Relaxed); // ordering: relaxed — reset races smear into neighbouring windows, by design
    }
}

/// One point of a percentile curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CurvePoint {
    /// The quantile in `[0, 1]`.
    pub q: f64,
    /// The value at that quantile (µs by convention).
    pub us: u64,
}

/// An owned copy of an [`HdrHistogram`]'s state: mergeable, readable
/// without touching the live atomics.
#[derive(Clone, Debug)]
pub struct HdrSnapshot {
    sub_bits: u32,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    sumsq: u64,
    min: u64,
    max: u64,
}

impl HdrSnapshot {
    /// An empty snapshot (identity element for [`HdrSnapshot::merge`]).
    pub fn empty(sub_bits: u32) -> HdrSnapshot {
        HdrSnapshot {
            sub_bits,
            buckets: vec![0; num_buckets(sub_bits)],
            count: 0,
            sum: 0,
            sumsq: 0,
            min: 0,
            max: 0,
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact minimum (0 when empty).
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Exact maximum.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Fold `other` into `self`. Bucket-wise addition plus exact side-stat
    /// combination — associative and commutative, which is what lets the
    /// shards be merged in any order.
    ///
    /// # Panics
    /// Panics if the two snapshots have different resolutions.
    pub fn merge(&mut self, other: &HdrSnapshot) {
        assert_eq!(self.sub_bits, other.sub_bits, "merging snapshots of different resolution");
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
        if other.count > 0 {
            self.min = if self.count == 0 { other.min } else { self.min.min(other.min) };
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.sumsq = self.sumsq.saturating_add(other.sumsq);
    }

    /// Value at quantile `q` in `[0, 1]`. `q = 0` reports the exact
    /// minimum and `q = 1` the exact maximum; interior quantiles report
    /// the bucket floor (relative error ≤ `2^-sub_bits`).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= target {
                // Clamp to the exact minimum: the lowest bucket's floor may
                // sit below the smallest sample; every data quantile is
                // ≥ min, so the clamp only improves accuracy and keeps the
                // curve monotone against the exact-min q=0 read.
                return bucket_floor(self.sub_bits, i).max(self.min);
            }
        }
        self.max
    }

    /// The full percentile curve over [`CURVE_QUANTILES`].
    pub fn curve(&self) -> Vec<CurvePoint> {
        CURVE_QUANTILES.iter().map(|&q| CurvePoint { q, us: self.percentile(q) }).collect()
    }

    /// The fixed-summary view the hub exporters expect.
    pub fn to_summary(&self) -> HistogramSnapshot {
        let mean = self.mean();
        let var = if self.count == 0 {
            0.0
        } else {
            (self.sumsq as f64 / self.count as f64 - mean * mean).max(0.0)
        };
        HistogramSnapshot {
            count: self.count,
            min_us: self.min,
            max_us: self.max,
            mean_us: mean,
            stddev_us: var.sqrt(),
            p50_us: self.percentile(0.50),
            p90_us: self.percentile(0.90),
            p99_us: self.percentile(0.99),
        }
    }
}

/// Round-robin shard assignment: each recording thread gets a sticky shard
/// index on first use. Threads never contend on assignment after that.
fn shard_hint() -> usize {
    use std::cell::Cell;
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    HINT.with(|h| {
        let mut v = h.get();
        if v == usize::MAX {
            v = NEXT.fetch_add(1, Ordering::Relaxed); // ordering: relaxed — unique ticket draw; no other state published
            h.set(v);
        }
        v
    })
}

/// A set of independent [`HdrHistogram`] shards merged only on snapshot.
///
/// Recording picks a per-thread shard, so concurrent recorders touch
/// disjoint cache lines; the merge cost is paid by the (rare) reader.
#[derive(Debug)]
pub struct HdrShards {
    shards: Box<[HdrHistogram]>,
}

impl HdrShards {
    /// `n_shards` independent histograms at `sub_bits` resolution.
    /// `n_shards` is rounded up to at least 1.
    pub fn new(n_shards: usize, sub_bits: u32) -> HdrShards {
        let n = n_shards.max(1);
        HdrShards { shards: (0..n).map(|_| HdrHistogram::new(sub_bits)).collect() }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Record into the calling thread's sticky shard.
    #[inline]
    pub fn record(&self, v: u64) {
        self.shards[shard_hint() % self.shards.len()].record(v);
    }

    /// Record into an explicit shard (for callers that already have a
    /// worker index; avoids the thread-local lookup).
    #[inline]
    pub fn record_in(&self, shard: usize, v: u64) {
        self.shards[shard % self.shards.len()].record(v);
    }

    /// Total samples across all shards.
    pub fn count(&self) -> u64 {
        self.shards.iter().map(|s| s.count()).sum()
    }

    /// Merge every shard into one owned snapshot.
    pub fn snapshot(&self) -> HdrSnapshot {
        let mut acc = HdrSnapshot::empty(self.shards[0].sub_bits());
        for s in self.shards.iter() {
            acc.merge(&s.snapshot());
        }
        acc
    }

    /// Reset every shard.
    pub fn reset(&self) {
        for s in self.shards.iter() {
            s.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_region_is_exact() {
        for sub_bits in [1u32, 4, 5, 8] {
            for v in 0..(1u64 << sub_bits) {
                let i = bucket_index(sub_bits, v);
                assert_eq!(i as u64, v);
                assert_eq!(bucket_floor(sub_bits, i), v);
            }
        }
    }

    #[test]
    fn floor_error_bounded_by_resolution() {
        for sub_bits in [2u32, 5, 8] {
            let bound = 1.0 / (1u64 << sub_bits) as f64;
            let mut v = 1u64;
            while v < u64::MAX / 3 {
                for probe in [v, v + 1, v + v / 3] {
                    let floor = bucket_floor(sub_bits, bucket_index(sub_bits, probe));
                    assert!(floor <= probe, "floor {floor} above sample {probe}");
                    let err = (probe - floor) as f64 / probe as f64;
                    assert!(err <= bound, "sub_bits={sub_bits} probe={probe} err={err}");
                }
                v = v.saturating_mul(2);
            }
        }
    }

    #[test]
    fn snapshot_percentiles_and_curve() {
        let h = HdrHistogram::new(5);
        for v in 1..=100_000u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100_000);
        assert_eq!(snap.percentile(0.0), 1);
        assert_eq!(snap.percentile(1.0), 100_000);
        for q in [0.10f64, 0.50, 0.90, 0.99, 0.999, 0.9999] {
            let exact = (q * 100_000.0).ceil();
            let got = snap.percentile(q) as f64;
            let err = (exact - got).abs() / exact;
            assert!(err <= 1.0 / 32.0, "q={q} got={got} exact={exact} err={err}");
        }
        let curve = snap.curve();
        assert_eq!(curve.len(), CURVE_QUANTILES.len());
        for w in curve.windows(2) {
            assert!(w[0].us <= w[1].us, "curve not monotone: {:?}", curve);
        }
    }

    #[test]
    fn shards_spread_and_merge() {
        let sh = HdrShards::new(4, 5);
        for i in 0..4 {
            sh.record_in(i, 100 * (i as u64 + 1));
        }
        assert_eq!(sh.count(), 4);
        let snap = sh.snapshot();
        assert_eq!(snap.count(), 4);
        assert_eq!(snap.min(), 100);
        assert_eq!(snap.max(), 400);
        sh.reset();
        assert_eq!(sh.count(), 0);
    }

    #[test]
    fn summary_matches_fixed_histogram_shape() {
        let h = HdrHistogram::new(DEFAULT_SUB_BITS);
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 4);
        assert_eq!(s.min_us, 10);
        assert_eq!(s.max_us, 40);
        assert!((s.mean_us - 25.0).abs() < 1e-9);
        let snap_s = h.snapshot().to_summary();
        assert_eq!(snap_s.count, s.count);
        assert_eq!(snap_s.p99_us, s.p99_us);
    }

    #[test]
    fn merge_is_associative_on_samples() {
        let mk = |vals: &[u64]| {
            let h = HdrHistogram::new(5);
            for &v in vals {
                h.record(v);
            }
            h.snapshot()
        };
        let (a, b, c) = (mk(&[1, 5, 9]), mk(&[1_000, 2_000]), mk(&[77; 10]));
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c.count(), a_bc.count());
        assert_eq!(ab_c.buckets, a_bc.buckets);
        assert_eq!(ab_c.min(), a_bc.min());
        assert_eq!(ab_c.max(), a_bc.max());
    }

    #[test]
    #[should_panic(expected = "different resolution")]
    fn merge_rejects_mismatched_resolution() {
        let mut a = HdrSnapshot::empty(4);
        a.merge(&HdrSnapshot::empty(5));
    }
}

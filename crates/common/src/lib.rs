//! Shared foundations for the socrates-rs workspace.
//!
//! This crate provides the vocabulary types used by every tier of the
//! Socrates architecture (LSNs, page/partition/transaction identifiers), a
//! common error type, latency models that stand in for the Azure storage
//! devices evaluated in the paper (XIO, DirectDrive, XStore, local SSD),
//! modelled CPU accounting used to reproduce the paper's CPU% measurements,
//! metrics primitives (counters and histograms), a CRC32 implementation for
//! page and log-block checksums, and deterministic random number generation
//! with the Zipf sampler used by the TPC-E-like workload.
//!
//! Nothing in this crate knows about databases; it is the substrate the rest
//! of the workspace is built on.

pub mod checksum;
pub mod error;
pub mod fault;
pub mod ids;
pub mod latency;
pub mod lock_rank;
pub mod lsn;
pub mod metrics;
pub mod obs;
pub mod rng;

pub use error::{Error, Result};
pub use ids::{BlobId, NodeId, PageId, PartitionId, ReplicaId, TableId, TxnId};
pub use lsn::Lsn;

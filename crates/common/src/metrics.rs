//! Metrics primitives: counters, gauges, latency histograms, and the
//! modelled-CPU accountant used to reproduce the paper's CPU% columns.
//!
//! All primitives are lock-free on the hot path (atomics only) so that
//! instrumentation does not perturb the throughput experiments.

use crate::ids::{NodeId, NodeKind};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ordering: relaxed — pure statistic; no reader infers other state from it
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed) // ordering: relaxed — monitoring read; staleness is acceptable
    }

    /// Reset to zero, returning the previous value.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed) // ordering: relaxed — reporting reset; races only smear one sample
    }
}

/// A point-in-time signed value (queue depths, LSN lags, cache residency).
///
/// Unlike [`Counter`] a gauge can go down; `add`/`sub` are atomic so
/// concurrent enter/leave call sites never lose updates.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// New gauge at zero.
    pub const fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed); // ordering: relaxed — gauge overwrite; last-writer-wins is the semantics
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed); // ordering: relaxed — pure statistic; no reader infers other state from it
    }

    /// Subtract `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed); // ordering: relaxed — pure statistic; no reader infers other state from it
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed) // ordering: relaxed — monitoring read; staleness is acceptable
    }
}

/// Resolution of the hub-facing histogram: 32 linear sub-buckets per power
/// of two. The original fixed layout used 16 and saturated percentile
/// accuracy at 1/16 in the tails; the shared HDR core halves that error
/// while keeping the identical snapshot/exporter surface.
const SUB_BITS: u32 = crate::obs::hdr::DEFAULT_SUB_BITS;
#[cfg(test)]
const NUM_BUCKETS: usize = crate::obs::hdr::num_buckets(SUB_BITS);

/// A lock-free, log-bucketed histogram of `u64` samples (microseconds by
/// convention). A thin facade over [`crate::obs::hdr::HdrHistogram`] at
/// 1/32 relative bucket error; exact min/max/mean/stddev are tracked on
/// the side. Callers that need full percentile curves or sharded
/// recording use the HDR type directly.
#[derive(Debug)]
pub struct Histogram {
    inner: crate::obs::hdr::HdrHistogram,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// New, empty histogram.
    pub fn new() -> Histogram {
        Histogram { inner: crate::obs::hdr::HdrHistogram::new(SUB_BITS) }
    }

    #[cfg(test)]
    fn bucket_index(v: u64) -> usize {
        crate::obs::hdr::bucket_index(SUB_BITS, v)
    }

    /// The smallest value that maps to bucket `i` (used when reporting).
    #[cfg(test)]
    fn bucket_floor(i: usize) -> u64 {
        crate::obs::hdr::bucket_floor(SUB_BITS, i)
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.inner.record(v);
    }

    /// Record a [`Duration`] in microseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_micros() as u64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.count()
    }

    /// Value at quantile `q` in `[0, 1]` (bucket floor; ≤ 1/32 relative
    /// error).
    pub fn percentile(&self, q: f64) -> u64 {
        self.inner.percentile(q)
    }

    /// A point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.inner.summary()
    }

    /// An owned full-resolution snapshot (bucket counts + percentile
    /// curves), for callers that need more than the fixed summary.
    pub fn hdr_snapshot(&self) -> crate::obs::hdr::HdrSnapshot {
        self.inner.snapshot()
    }

    /// Forget all samples.
    pub fn reset(&self) {
        self.inner.reset();
    }
}

/// Summary statistics of a [`Histogram`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Exact minimum (µs).
    pub min_us: u64,
    /// Exact maximum (µs).
    pub max_us: u64,
    /// Exact mean (µs).
    pub mean_us: f64,
    /// Exact standard deviation (µs).
    pub stddev_us: f64,
    /// Approximate median (µs).
    pub p50_us: u64,
    /// Approximate 90th percentile (µs).
    pub p90_us: u64,
    /// Approximate 99th percentile (µs).
    pub p99_us: u64,
}

/// Modelled CPU time accounting for one node.
///
/// Components charge CPU microseconds for the work they model (per-request
/// engine work, per-I/O driver cost, log apply, backup egress...). Dividing
/// charged time by wall time × cores yields the CPU% the paper reports.
/// Using modelled rather than measured CPU keeps architecture comparisons
/// (HADR vs Socrates, XIO vs DD) faithful to the paper even though all tiers
/// share one host here.
#[derive(Debug, Default)]
pub struct CpuAccountant {
    busy_us: AtomicU64,
}

impl CpuAccountant {
    /// New accountant at zero.
    pub const fn new() -> CpuAccountant {
        CpuAccountant { busy_us: AtomicU64::new(0) }
    }

    /// Charge `us` microseconds of modelled CPU.
    #[inline]
    pub fn charge_us(&self, us: u64) {
        self.busy_us.fetch_add(us, Ordering::Relaxed); // ordering: relaxed — pure statistic; no reader infers other state from it
    }

    /// Charge a [`Duration`] of modelled CPU.
    #[inline]
    pub fn charge(&self, d: Duration) {
        self.charge_us(d.as_micros() as u64);
    }

    /// Total charged microseconds.
    pub fn busy_us(&self) -> u64 {
        self.busy_us.load(Ordering::Relaxed) // ordering: relaxed — monitoring read; staleness is acceptable
    }

    /// CPU utilisation over `wall` on a `cores`-core node, as a percentage
    /// clamped to 100%.
    pub fn utilization_pct(&self, wall: Duration, cores: u32) -> f64 {
        let capacity = wall.as_micros() as f64 * cores as f64;
        if capacity <= 0.0 {
            return 0.0;
        }
        (self.busy_us() as f64 / capacity * 100.0).min(100.0)
    }

    /// Reset to zero, returning the previous total.
    pub fn reset(&self) -> u64 {
        self.busy_us.swap(0, Ordering::Relaxed) // ordering: relaxed — reporting reset; races only smear one sample
    }
}

/// Registry of per-node CPU accountants for a deployment.
///
/// Get-or-create semantics; cheap to clone (`Arc` inside).
#[derive(Clone, Default)]
pub struct CpuRegistry {
    inner: Arc<RwLock<HashMap<NodeId, Arc<CpuAccountant>>>>,
}

impl CpuRegistry {
    /// New empty registry.
    pub fn new() -> CpuRegistry {
        CpuRegistry::default()
    }

    /// The accountant for `node`, created on first use.
    pub fn accountant(&self, node: NodeId) -> Arc<CpuAccountant> {
        if let Some(a) = self.inner.read().get(&node) {
            return Arc::clone(a);
        }
        let mut w = self.inner.write();
        Arc::clone(w.entry(node).or_default())
    }

    /// Sum of charged CPU microseconds over all nodes of `kind`.
    pub fn busy_us_for_kind(&self, kind: NodeKind) -> u64 {
        self.inner.read().iter().filter(|(n, _)| n.kind == kind).map(|(_, a)| a.busy_us()).sum()
    }

    /// Sum of charged CPU microseconds over every node.
    pub fn total_busy_us(&self) -> u64 {
        self.inner.read().values().map(|a| a.busy_us()).sum()
    }

    /// Reset every accountant.
    pub fn reset_all(&self) {
        for a in self.inner.read().values() {
            a.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_basics() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.reset(), 5);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0);
        g.set(10);
        g.add(5);
        g.sub(20);
        assert_eq!(g.get(), -5);
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_concurrent_adds_never_lose_updates() {
        let g = Arc::new(Gauge::new());
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        g.add(2);
                        g.sub(1);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(g.get(), 4000);
    }

    #[test]
    fn histogram_exact_stats() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.min_us, 10);
        assert_eq!(s.max_us, 40);
        assert!((s.mean_us - 25.0).abs() < 1e-9);
        // population stddev of {10,20,30,40} = sqrt(125) ≈ 11.18
        assert!((s.stddev_us - 125f64.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn histogram_percentiles_bounded_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        for (q, expect) in [(0.5, 5_000f64), (0.9, 9_000.0), (0.99, 9_900.0)] {
            let got = h.percentile(q) as f64;
            let err = (got - expect).abs() / expect;
            assert!(err < 0.08, "q={q} got={got} expect={expect} err={err}");
        }
        assert_eq!(h.percentile(0.0), 1);
    }

    #[test]
    fn histogram_zero_sample() {
        let h = Histogram::new();
        h.record(0);
        let s = h.snapshot();
        assert_eq!((s.count, s.min_us, s.max_us), (1, 0, 0));
        assert_eq!(s.mean_us, 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.percentile(1.0), 0);
    }

    #[test]
    fn histogram_u64_max_sample() {
        let h = Histogram::new();
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.min_us, u64::MAX);
        assert_eq!(s.max_us, u64::MAX);
        // sumsq saturates rather than wrapping, so the variance clamp
        // yields a finite, non-negative stddev.
        assert!(s.stddev_us >= 0.0 && s.stddev_us.is_finite());
        // The percentile walk must find the top bucket, not fall off the end.
        let p = h.percentile(0.99);
        assert!(p >= u64::MAX - (u64::MAX >> 4));
    }

    #[test]
    fn histogram_sumsq_saturates_instead_of_wrapping() {
        let h = Histogram::new();
        // Seven samples of 4e9 (each square 1.6e19 is exact in u64, their
        // sum 1.12e20 is not) over a sea of zeros. True stddev ≈ 1.1e7.
        // Saturating sumsq keeps the estimate at ~4.3e6; a wrapping
        // accumulator loses six multiples of 2^64 and collapses it to
        // ~7e5, more than an order of magnitude below the truth.
        for _ in 0..1_000_000 {
            h.record(0);
        }
        for _ in 0..7 {
            h.record(4_000_000_000);
        }
        let s = h.snapshot();
        assert!(
            s.stddev_us > 2e6,
            "stddev {} suggests sumsq wrapped instead of saturating",
            s.stddev_us
        );
    }

    #[test]
    fn bucket_floor_within_sixteenth_relative_error() {
        // Documented bound: log-bucketing costs at most 1/16 relative error.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            for probe in [v, v + 1, v + v / 3] {
                let floor = Histogram::bucket_floor(Histogram::bucket_index(probe));
                assert!(floor <= probe, "floor {floor} above sample {probe}");
                let err = (probe - floor) as f64 / probe as f64;
                assert!(err <= 1.0 / 16.0, "probe {probe} floor {floor} err {err}");
            }
            v = v.saturating_mul(2);
        }
    }

    #[test]
    fn histogram_percentile_error_within_bucket_bound() {
        // End-to-end percentile accuracy on a uniform distribution: the
        // reported quantile must be within 1/16 of the exact one.
        let h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.10f64, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999] {
            let exact = (q * 100_000.0).ceil();
            let got = h.percentile(q) as f64;
            let err = (exact - got).abs() / exact;
            assert!(err <= 1.0 / 16.0, "q={q} got={got} exact={exact} err={err}");
        }
    }

    #[test]
    fn histogram_empty_and_reset() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
        h.record(100);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.snapshot().min_us, 0);
    }

    #[test]
    fn bucket_index_monotone_and_floor_consistent() {
        let mut last = 0usize;
        for v in [0u64, 1, 15, 16, 17, 100, 1000, 65_535, 65_536, 1 << 40] {
            let i = Histogram::bucket_index(v);
            assert!(i >= last, "index not monotone at {v}");
            last = i;
            assert!(Histogram::bucket_floor(i) <= v);
            if i + 1 < NUM_BUCKETS {
                assert!(Histogram::bucket_floor(i + 1) > v, "floor({}) too low for {v}", i + 1);
            }
        }
    }

    #[test]
    fn cpu_accounting_utilization() {
        let a = CpuAccountant::new();
        a.charge_us(500_000);
        // 0.5s busy over 1s wall on 1 core = 50%
        assert!((a.utilization_pct(Duration::from_secs(1), 1) - 50.0).abs() < 1e-9);
        // on 8 cores = 6.25%
        assert!((a.utilization_pct(Duration::from_secs(1), 8) - 6.25).abs() < 1e-9);
        // clamped at 100
        a.charge_us(10_000_000);
        assert_eq!(a.utilization_pct(Duration::from_secs(1), 1), 100.0);
    }

    #[test]
    fn registry_get_or_create_and_kind_sum() {
        let r = CpuRegistry::new();
        r.accountant(NodeId::PRIMARY).charge_us(10);
        r.accountant(NodeId::PRIMARY).charge_us(5);
        r.accountant(NodeId::secondary(0)).charge_us(7);
        r.accountant(NodeId::secondary(1)).charge_us(3);
        assert_eq!(r.busy_us_for_kind(NodeKind::Primary), 15);
        assert_eq!(r.busy_us_for_kind(NodeKind::Secondary), 10);
        assert_eq!(r.total_busy_us(), 25);
        r.reset_all();
        assert_eq!(r.total_busy_us(), 0);
    }
}

//! Property test: the XLOG pending area delivers exactly the hardened
//! prefix of the log, in order, no matter how the lossy feed drops,
//! duplicates, or reorders blocks.

use proptest::prelude::*;
use socrates_common::{Lsn, PageId, PartitionId, TxnId};
use socrates_storage::{Fcb, MemFcb};
use socrates_wal::block::{BlockBuilder, LogBlock};
use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
use socrates_wal::record::{LogPayload, LogRecord};
use socrates_xlog::service::{XLogConfig, XLogService};
use socrates_xstore::{XStore, XStoreConfig};
use std::sync::Arc;

fn make_chain(n: usize) -> Vec<LogBlock> {
    let mut start = Lsn::ZERO;
    (0..n)
        .map(|i| {
            let mut b = BlockBuilder::new(start, 1 << 16);
            b.append(
                &LogRecord {
                    txn: TxnId::new(i as u64),
                    payload: LogPayload::PageWrite {
                        page_id: PageId::new(i as u64 % 7),
                        op: vec![i as u8; 20 + i % 50],
                    },
                },
                Some(PartitionId::new((i % 3) as u32)),
            );
            let block = b.seal();
            start = block.end_lsn();
            block
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn released_is_exactly_the_hardened_prefix(
        n in 1usize..20,
        // For each block: (delivered to the feed?, delivery order key, duplicated?)
        behaviours in proptest::collection::vec((any::<bool>(), any::<u8>(), any::<bool>()), 20),
        hardened_upto in 0usize..=20,
    ) {
        let blocks = make_chain(n);
        let hardened_upto = hardened_upto.min(n);

        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
        ));
        let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
        let svc = XLogService::new(
            Arc::clone(&lz) as Arc<dyn socrates_wal::LogStore>,
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            xstore,
            XLogConfig::default(),
            Lsn::ZERO,
            "xlog/lt",
        ).unwrap();

        // Everything the primary *hardened* went through the LZ.
        for block in &blocks[..hardened_upto] {
            lz.write_block(block).unwrap();
        }
        // The feed delivers an arbitrary subset, in arbitrary order, with
        // duplicates — including blocks beyond the hardened point
        // (speculative).
        let mut deliveries: Vec<(u8, &LogBlock, bool)> = blocks
            .iter()
            .enumerate()
            .filter(|(i, _)| behaviours[*i].0)
            .map(|(i, b)| (behaviours[i].1, b, behaviours[i].2))
            .collect();
        deliveries.sort_by_key(|(k, _, _)| *k);
        for (_, block, dup) in deliveries {
            svc.offer_block(block.clone());
            if dup {
                svc.offer_block(block.clone());
            }
        }
        let hardened_lsn = if hardened_upto == 0 {
            Lsn::ZERO
        } else {
            blocks[hardened_upto - 1].end_lsn()
        };
        svc.report_hardened(hardened_lsn);

        // Invariant: released == hardened prefix exactly.
        prop_assert_eq!(svc.released_lsn(), hardened_lsn);
        // Every hardened block is served correctly, in order, with its
        // partition annotations intact.
        let pull = svc.pull_blocks(Lsn::ZERO, usize::MAX, None).unwrap();
        prop_assert_eq!(pull.next_lsn, hardened_lsn);
        prop_assert_eq!(pull.blocks.len(), hardened_upto);
        for (got, expect) in pull.blocks.iter().zip(&blocks[..hardened_upto]) {
            prop_assert_eq!(got, expect);
        }
        // Nothing speculative leaked.
        if hardened_upto < n {
            prop_assert!(svc.get_block(blocks[hardened_upto].start_lsn()).is_err());
        }
        // Destaging the released prefix always succeeds and truncates the LZ.
        let destaged = svc.destage_all().unwrap();
        prop_assert_eq!(destaged, hardened_upto);
        prop_assert_eq!(lz.tail(), hardened_lsn);
    }

    #[test]
    fn partition_filter_partitions_the_stream(
        n in 3usize..20,
    ) {
        let blocks = make_chain(n);
        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
        ));
        let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
        let svc = XLogService::new(
            Arc::clone(&lz) as Arc<dyn socrates_wal::LogStore>,
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            xstore,
            XLogConfig::default(),
            Lsn::ZERO,
            "xlog/lt",
        ).unwrap();
        for block in &blocks {
            lz.write_block(block).unwrap();
            svc.offer_block(block.clone());
            svc.report_hardened(block.end_lsn());
        }
        // The three partition streams together cover every block exactly
        // once (blocks here carry exactly one partition each).
        let mut total = 0usize;
        for p in 0..3u32 {
            let pull = svc.pull_blocks(Lsn::ZERO, usize::MAX, Some(PartitionId::new(p))).unwrap();
            prop_assert_eq!(pull.next_lsn, blocks.last().unwrap().end_lsn());
            for b in &pull.blocks {
                prop_assert!(b.affects_partition(PartitionId::new(p)));
            }
            total += pull.blocks.len();
        }
        prop_assert_eq!(total, n);
    }
}

//! The primary → XLOG feed: speculative, fire-and-forget block delivery.
//!
//! The primary writes each block to the landing zone *and* sends it to the
//! XLOG process in parallel (paper §4.3). The send side is lossy by design;
//! hardened reports travel reliably (they are tiny and piggyback on the
//! commit path). [`XLogFeed`] is the [`LogDisseminator`] the primary's
//! pipeline plugs in: blocks go over a [`LossyChannel`] drained by a pump
//! thread into [`XLogService::offer_block`], and hardened reports call
//! [`XLogService::report_hardened`] directly.

use crate::service::XLogService;
use socrates_common::fault::{sites, FaultRegistry};
use socrates_common::obs::{SpanKind, SpanRing};
use socrates_common::NodeId;
use socrates_rbio::lossy::{LossyChannel, LossyConfig};
use socrates_wal::block::LogBlock;
use socrates_wal::pipeline::LogDisseminator;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The feed adapter. Create with [`XLogFeed::start`]; dropping it stops the
/// pump thread.
pub struct XLogFeed {
    channel: LossyChannel<LogBlock>,
    svc: Arc<XLogService>,
    stop: Arc<AtomicBool>,
    pump: Option<std::thread::JoinHandle<()>>,
}

impl XLogFeed {
    /// Spawn the pump thread delivering blocks from the lossy channel into
    /// the service.
    pub fn start(svc: Arc<XLogService>, lossy: LossyConfig) -> XLogFeed {
        XLogFeed::start_with_faults(svc, lossy, FaultRegistry::disabled())
    }

    /// [`XLogFeed::start`], with a fault registry consulted at the
    /// `xlog.feed.poll` site for every delivered block. Any fired fault
    /// discards the block — safe by design: the feed is lossy and XLOG
    /// gap-fills from the landing zone.
    pub fn start_with_faults(
        svc: Arc<XLogService>,
        lossy: LossyConfig,
        faults: FaultRegistry,
    ) -> XLogFeed {
        XLogFeed::start_with_obs(svc, lossy, faults, None)
    }

    /// [`XLogFeed::start_with_faults`], recording an `xlog.feed` child
    /// span into `spans` for every delivered ctx-carrying block (the
    /// XLOG leg of a sampled commit's cross-tier trace).
    pub fn start_with_obs(
        svc: Arc<XLogService>,
        lossy: LossyConfig,
        faults: FaultRegistry,
        spans: Option<Arc<SpanRing>>,
    ) -> XLogFeed {
        let (channel, rx) = LossyChannel::<LogBlock>::new(lossy);
        let stop = Arc::new(AtomicBool::new(false));
        let pump = {
            let svc = Arc::clone(&svc);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("xlog-feed-pump".into())
                .spawn(move || {
                    // ordering: relaxed — shutdown poll; the channel drain below
                    // the loop delivers anything in flight
                    while !stop.load(Ordering::Relaxed) {
                        if let Some(block) = rx.recv_timeout(Duration::from_millis(10)) {
                            if faults
                                .check_at(sites::XLOG_FEED_POLL, Some(block.start_lsn()))
                                .is_some()
                            {
                                continue; // injected loss; LZ gap fill recovers
                            }
                            let span_start = match (&spans, block.ctx().sampled()) {
                                (Some(ring), true) => Some(ring.now_ns()),
                                _ => None,
                            };
                            let ctx = block.ctx();
                            svc.offer_block(block);
                            if let (Some(ring), Some(start)) = (&spans, span_start) {
                                let dur = ring.now_ns().saturating_sub(start);
                                ring.record_child(
                                    ctx,
                                    SpanKind::XlogFeed,
                                    NodeId::XLOG,
                                    start,
                                    dur,
                                );
                            }
                        }
                    }
                })
                .expect("spawn xlog feed pump")
        };
        XLogFeed { channel, svc, stop, pump: Some(pump) }
    }

    /// Number of blocks the lossy link dropped (diagnostics/tests).
    pub fn dropped_blocks(&self) -> u64 {
        self.channel.dropped.get()
    }

    /// Blocks sitting in the feed channel waiting for the pump thread —
    /// the feed's queue depth (saturation signal for the load observatory;
    /// a pump keeping up with the primary holds this near zero).
    pub fn queue_depth(&self) -> usize {
        self.channel.pending()
    }

    /// Register the feed's health metrics into the hub under `node`
    /// (conventionally [`NodeId::XLOG`], the tier the feed delivers to).
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: NodeId,
    ) {
        let f = Arc::clone(self);
        hub.register_counter_fn(node, "feed_dropped_blocks", move || f.dropped_blocks());
        let f = Arc::clone(self);
        hub.register_gauge_fn(node, "feed_queue_depth", move || f.queue_depth() as i64);
    }
}

impl LogDisseminator for XLogFeed {
    fn offer_block(&self, block: &LogBlock) {
        self.channel.send(block.clone());
    }

    fn report_hardened(&self, lsn: socrates_common::Lsn) {
        self.svc.report_hardened(lsn);
    }
}

impl Drop for XLogFeed {
    fn drop(&mut self) {
        // ordering: relaxed — poll flag; the pump join is the real sync point
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.pump.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::XLogConfig;
    use socrates_common::{Lsn, PageId, PartitionId, TxnId};
    use socrates_storage::{Fcb, MemFcb};
    use socrates_wal::block::BlockBuilder;
    use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
    use socrates_wal::pipeline::{LogPipeline, LogPipelineConfig};
    use socrates_wal::record::{LogPayload, LogRecord};
    use socrates_xstore::{XStore, XStoreConfig};
    use std::time::Instant;

    #[test]
    fn end_to_end_pipeline_to_xlog_with_loss() {
        // Full wiring: LogPipeline → (LZ harden) + (lossy feed → XLOG).
        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 4 << 20, write_quorum: 1 },
        ));
        let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
        let svc = XLogService::new(
            Arc::clone(&lz) as Arc<dyn socrates_wal::LogStore>,
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            xstore,
            XLogConfig::default(),
            Lsn::ZERO,
            "xlog/lt",
        )
        .unwrap();
        let feed =
            Arc::new(XLogFeed::start(Arc::clone(&svc), LossyConfig::unreliable(0.3, 0.2, 99)));
        let pipeline = LogPipeline::new(
            Arc::clone(&lz) as Arc<dyn socrates_wal::pipeline::BlockSink>,
            Arc::new(|p: PageId| PartitionId::new((p.raw() / 1000) as u32)),
            LogPipelineConfig { max_block_bytes: 256 },
            Lsn::ZERO,
        );
        pipeline.add_disseminator(feed.clone() as Arc<dyn LogDisseminator>);

        let mut last = Lsn::ZERO;
        for i in 0..200u64 {
            last = pipeline.append(&LogRecord {
                txn: TxnId::new(i),
                payload: LogPayload::PageWrite {
                    page_id: PageId::new(i * 37 % 5000),
                    op: vec![i as u8; 64],
                },
            });
            if i % 10 == 9 {
                pipeline.commit_wait(last).unwrap();
            }
        }
        pipeline.commit_wait(last).unwrap();

        // XLOG must converge to the hardened frontier despite loss and
        // reorder: gaps are filled from the LZ once the pump drains.
        let deadline = Instant::now() + std::time::Duration::from_secs(5);
        while svc.released_lsn() < pipeline.hardened_lsn() {
            assert!(Instant::now() < deadline, "XLOG never converged");
            // Late hardened reports re-trigger gap fill.
            svc.report_hardened(pipeline.hardened_lsn());
            std::thread::sleep(Duration::from_millis(1));
        }
        assert!(feed.dropped_blocks() > 0, "the lossy link must actually lose blocks");
        // Every record is present exactly once, in order.
        let pull = svc.pull_blocks(Lsn::ZERO, usize::MAX, None).unwrap();
        let mut expect_txn = 0u64;
        for block in &pull.blocks {
            for rec in block.records().unwrap() {
                if let LogPayload::PageWrite { .. } = rec.record.payload {
                    assert_eq!(rec.record.txn, TxnId::new(expect_txn));
                    expect_txn += 1;
                }
            }
        }
        assert_eq!(expect_txn, 200);
    }

    #[test]
    fn feed_without_loss_drops_nothing() {
        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 4 << 20, write_quorum: 1 },
        ));
        let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
        let svc = XLogService::new(
            Arc::clone(&lz) as Arc<dyn socrates_wal::LogStore>,
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            xstore,
            XLogConfig::default(),
            Lsn::ZERO,
            "xlog/lt",
        )
        .unwrap();
        let feed = XLogFeed::start(Arc::clone(&svc), LossyConfig::reliable());
        let mut b = BlockBuilder::new(Lsn::ZERO, 1 << 16);
        b.append(&LogRecord { txn: TxnId::new(1), payload: LogPayload::TxnBegin }, None);
        let block = b.seal();
        lz.write_block(&block).unwrap();
        feed.offer_block(&block);
        feed.report_hardened(block.end_lsn());
        let deadline = Instant::now() + std::time::Duration::from_secs(2);
        while svc.released_lsn() < block.end_lsn() {
            assert!(Instant::now() < deadline);
            svc.report_hardened(block.end_lsn());
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(feed.dropped_blocks(), 0);
        // Note: gap fills may still occur here — the hardened report is
        // synchronous while the offer rides the pump thread, and XLOG
        // rightly refuses to wait for a feed that might never deliver.
    }
}

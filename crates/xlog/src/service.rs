//! The XLOG service implementation.

use parking_lot::Mutex;
use socrates_common::lsn::AtomicLsn;
use socrates_common::metrics::Counter;
use socrates_common::{BlobId, Error, Lsn, PartitionId, Result};
use socrates_storage::Fcb;
use socrates_wal::block::{LogBlock, BLOCK_HEADER};
use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
use socrates_wal::store::LogStore;
use socrates_xstore::XStore;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// XLOG tuning knobs.
#[derive(Clone, Debug)]
pub struct XLogConfig {
    /// Byte budget of the in-memory sequence map (hot tail of the log).
    pub sequence_map_bytes: usize,
    /// Capacity of the local SSD block cache (second tier).
    pub ssd_cache_bytes: u64,
    /// Consumer lease time-to-live.
    pub lease_ttl: Duration,
    /// How long the destager sleeps when idle.
    pub destage_idle: Duration,
}

impl Default for XLogConfig {
    fn default() -> Self {
        XLogConfig {
            sequence_map_bytes: 8 << 20,
            ssd_cache_bytes: 32 << 20,
            lease_ttl: Duration::from_secs(30),
            destage_idle: Duration::from_millis(4),
        }
    }
}

/// Service counters.
#[derive(Debug, Default)]
pub struct XLogMetrics {
    /// Blocks offered by the primary (including duplicates).
    pub blocks_offered: Counter,
    /// Blocks released to the broker after hardening.
    pub blocks_released: Counter,
    /// Gap blocks refetched from the landing zone.
    pub gaps_filled_from_lz: Counter,
    /// Duplicate/stale offers dropped.
    pub duplicates_dropped: Counter,
    /// Blocks destaged to SSD + LT.
    pub blocks_destaged: Counter,
    /// Bytes destaged to LT.
    pub bytes_destaged: Counter,
    /// Consumer block reads served per tier.
    pub served_from_memory: Counter,
    /// Served from the SSD cache.
    pub served_from_ssd: Counter,
    /// Served from the landing zone.
    pub served_from_lz: Counter,
    /// Served from the long-term archive.
    pub served_from_lt: Counter,
}

/// Result of a consumer pull: the relevant blocks plus the cursor to pull
/// from next time. `next_lsn` advances across filtered-out blocks too, so a
/// page server's applied watermark keeps moving even when nothing in the
/// log concerns its partition.
#[derive(Clone, Debug)]
pub struct PullResult {
    /// Blocks relevant to the consumer's filter, in LSN order.
    pub blocks: Vec<LogBlock>,
    /// Where to pull from next; also the consumer's new applied frontier
    /// once it has applied `blocks`.
    pub next_lsn: Lsn,
}

struct Broker {
    /// The sequence map: the hot tail of the log, keyed by block start LSN.
    seq: BTreeMap<Lsn, LogBlock>,
    seq_bytes: usize,
    /// Out-of-order arrivals waiting for hardening/contiguity.
    pending: BTreeMap<Lsn, LogBlock>,
    /// Everything below this is released (contiguous + hardened).
    released_upto: Lsn,
    /// Blocks released but not yet destaged.
    destage_queue: VecDeque<LogBlock>,
}

struct Lease {
    progress: Lsn,
    renewed_at: Instant,
}

/// The XLOG service. One per deployment.
pub struct XLogService {
    lz: Arc<dyn LogStore>,
    xstore: Arc<XStore>,
    lt_blob: BlobId,
    lt_base: Lsn,
    ssd_cache: LandingZone,
    broker: Mutex<Broker>,
    hardened: AtomicLsn,
    destaged: AtomicLsn,
    leases: Mutex<HashMap<String, Lease>>,
    config: XLogConfig,
    metrics: XLogMetrics,
    stop: AtomicBool,
    destager: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl XLogService {
    /// Create the service: `lz` is the primary's durable log store — the
    /// landing zone or the quorum tier — (for gap fills and tier-3
    /// reads), `ssd` the local SSD device for the block cache, `xstore`
    /// the home of the long-term archive. `start` is the LSN the log
    /// begins at (zero for a fresh database).
    pub fn new(
        lz: Arc<dyn LogStore>,
        ssd: Arc<dyn Fcb>,
        xstore: Arc<XStore>,
        config: XLogConfig,
        start: Lsn,
        lt_name: &str,
    ) -> Result<Arc<XLogService>> {
        let lt_blob = xstore.create_blob(lt_name)?;
        let ssd_cache = LandingZone::with_start(
            vec![ssd],
            LandingZoneConfig { capacity: config.ssd_cache_bytes, write_quorum: 1 },
            start,
        );
        Ok(Arc::new(XLogService {
            lz,
            xstore,
            lt_blob,
            lt_base: start,
            ssd_cache,
            broker: Mutex::with_rank(
                Broker {
                    seq: BTreeMap::new(),
                    seq_bytes: 0,
                    pending: BTreeMap::new(),
                    released_upto: start,
                    destage_queue: VecDeque::new(),
                },
                socrates_common::lock_rank::XLOG_BROKER,
                "xlog.broker",
            ),
            hardened: AtomicLsn::new(start),
            destaged: AtomicLsn::new(start),
            leases: Mutex::with_rank(
                HashMap::new(),
                socrates_common::lock_rank::XLOG_LEASES,
                "xlog.leases",
            ),
            config,
            metrics: XLogMetrics::default(),
            stop: AtomicBool::new(false),
            destager: Mutex::with_rank(
                None,
                socrates_common::lock_rank::XLOG_DESTAGER,
                "xlog.destager",
            ),
        }))
    }

    /// Start the background destaging thread. Without it, destaging can be
    /// driven manually via [`XLogService::destage_once`] (deterministic
    /// tests do this).
    pub fn start_destager(self: &Arc<Self>) {
        let svc = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("xlog-destager".into())
            .spawn(move || {
                // ordering: relaxed — shutdown poll; one extra destage pass is fine
                while !svc.stop.load(Ordering::Relaxed) {
                    match svc.destage_once() {
                        Ok(0) => std::thread::sleep(svc.config.destage_idle),
                        Ok(_) => {}
                        Err(_) => {
                            // XStore outage etc.: back off and retry; blocks
                            // stay queued, the LZ keeps them durable.
                            std::thread::sleep(
                                svc.config.destage_idle.max(Duration::from_millis(5)),
                            );
                        }
                    }
                }
            })
            .expect("spawn xlog destager");
        *self.destager.lock() = Some(handle);
    }

    /// Stop the destaging thread (idempotent).
    pub fn shutdown(&self) {
        // ordering: relaxed — poll flag; the destager join is the real sync point
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.destager.lock().take() {
            let _ = h.join();
        }
    }

    /// Service counters.
    pub fn metrics(&self) -> &XLogMetrics {
        &self.metrics
    }

    /// Register the service's counters and LSN watermarks into the hub
    /// under `node` (closure-sampled; no hot-path cost).
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: socrates_common::NodeId,
    ) {
        macro_rules! counter {
            ($name:literal, $field:ident) => {{
                let svc = Arc::clone(self);
                hub.register_counter_fn(node, $name, move || svc.metrics.$field.get());
            }};
        }
        counter!("blocks_offered", blocks_offered);
        counter!("blocks_released", blocks_released);
        counter!("gaps_filled_from_lz", gaps_filled_from_lz);
        counter!("duplicates_dropped", duplicates_dropped);
        counter!("blocks_destaged", blocks_destaged);
        counter!("bytes_destaged", bytes_destaged);
        counter!("served_from_memory", served_from_memory);
        counter!("served_from_ssd", served_from_ssd);
        counter!("served_from_lz", served_from_lz);
        counter!("served_from_lt", served_from_lt);
        let svc = Arc::clone(self);
        hub.register_gauge_fn(node, "hardened_lsn", move || svc.hardened.load().offset() as i64);
        let svc = Arc::clone(self);
        hub.register_gauge_fn(node, "destaged_lsn", move || svc.destaged.load().offset() as i64);
        let svc = Arc::clone(self);
        hub.register_gauge_fn(node, "released_lsn", move || svc.released_lsn().offset() as i64);
        // The destage lag: bytes hardened in the landing zone but not yet
        // durable in the long-term archive (Socrates stalls commits when
        // this outgrows the LZ).
        let svc = Arc::clone(self);
        hub.register_gauge_fn(node, "destage_lag_bytes", move || {
            (svc.hardened.load().offset() as i64 - svc.destaged.load().offset() as i64).max(0)
        });
    }

    /// Every live consumer's applied progress, by lease name (lag
    /// watchers derive per-consumer gauges from this).
    pub fn consumer_progress(&self) -> Vec<(String, Lsn)> {
        let leases = self.leases.lock();
        let mut v: Vec<(String, Lsn)> =
            leases.iter().map(|(n, l)| (n.clone(), l.progress)).collect();
        v.sort();
        v
    }

    /// The hardened frontier reported by the primary.
    pub fn hardened_lsn(&self) -> Lsn {
        self.hardened.load()
    }

    /// Everything below this is durable in the long-term archive.
    pub fn destaged_lsn(&self) -> Lsn {
        self.destaged.load()
    }

    /// Everything below this has been released to consumers.
    pub fn released_lsn(&self) -> Lsn {
        self.broker.lock().released_upto
    }

    /// The LT archive location (for PITR workflows).
    pub fn lt_location(&self) -> (BlobId, Lsn) {
        (self.lt_blob, self.lt_base)
    }

    // ---- ingestion (called by the primary's feed) ----

    /// Offer a block from the primary's lossy feed. Tolerates duplicates,
    /// reordering, and loss.
    pub fn offer_block(&self, block: LogBlock) {
        self.metrics.blocks_offered.incr();
        let mut b = self.broker.lock();
        if block.start_lsn() < b.released_upto || b.pending.contains_key(&block.start_lsn()) {
            self.metrics.duplicates_dropped.incr();
            return;
        }
        b.pending.insert(block.start_lsn(), block);
        self.release_locked(&mut b);
    }

    /// The primary reports durability up to `lsn`; released blocks become
    /// visible to consumers.
    pub fn report_hardened(&self, lsn: Lsn) {
        self.hardened.advance_to(lsn);
        let mut b = self.broker.lock();
        self.release_locked(&mut b);
    }

    /// Move contiguous hardened blocks from the pending area to the broker,
    /// filling feed gaps from the landing zone.
    fn release_locked(&self, b: &mut Broker) {
        let hardened = self.hardened.load();
        loop {
            let expect = b.released_upto;
            if expect >= hardened {
                break;
            }
            let block = match b.pending.remove(&expect) {
                Some(blk) => blk,
                None => {
                    // The feed lost this block; the LZ has it (it is below
                    // the hardened frontier).
                    match self.lz.read_block(expect) {
                        Ok(blk) => {
                            self.metrics.gaps_filled_from_lz.incr();
                            blk
                        }
                        Err(_) => break, // LZ transiently unreadable; retry later
                    }
                }
            };
            if block.end_lsn() > hardened {
                // Can't happen with a correct primary (hardened moves in
                // block units), but never release speculative bytes.
                b.pending.insert(expect, block);
                break;
            }
            b.released_upto = block.end_lsn();
            b.seq_bytes += block.len();
            b.seq.insert(block.start_lsn(), block.clone());
            b.destage_queue.push_back(block);
            self.metrics.blocks_released.incr();
            // Trim the sequence map to its memory budget (oldest first).
            while b.seq_bytes > self.config.sequence_map_bytes {
                let Some((&first, _)) = b.seq.iter().next() else { break };
                let blk = b.seq.remove(&first).expect("key just seen");
                b.seq_bytes -= blk.len();
            }
        }
    }

    // ---- destaging ----

    /// Destage a batch of queued blocks to the SSD cache and LT; returns
    /// how many blocks were destaged (0 when idle, possibly many per call). Contiguous blocks are
    /// concatenated into a single LT append — "multiple I/Os being sent to
    /// XStore in a single large write operation" (§4.6 applies the same
    /// idea to checkpoints).
    pub fn destage_once(&self) -> Result<usize> {
        const MAX_BATCH_BYTES: usize = 4 << 20;
        let batch: Vec<LogBlock> = {
            let mut b = self.broker.lock();
            let mut batch = Vec::new();
            let mut bytes = 0usize;
            while bytes < MAX_BATCH_BYTES {
                match b.destage_queue.pop_front() {
                    Some(blk) => {
                        bytes += blk.len();
                        batch.push(blk);
                    }
                    None => break,
                }
            }
            batch
        };
        if batch.is_empty() {
            return Ok(0);
        }
        let n = batch.len();
        if let Err(e) = self.destage_batch(&batch) {
            // Put the batch back at the front; ordering must be preserved.
            let mut b = self.broker.lock();
            for blk in batch.into_iter().rev() {
                b.destage_queue.push_front(blk);
            }
            return Err(e);
        }
        Ok(n)
    }

    fn destage_batch(&self, batch: &[LogBlock]) -> Result<()> {
        // LT first: one concatenated append (blocks are LSN-contiguous, so
        // the blob offset keeps mirroring LSN space).
        let total: usize = batch.iter().map(|b| b.len()).sum();
        let mut image = Vec::with_capacity(total);
        for block in batch {
            image.extend_from_slice(block.as_bytes());
        }
        let off = self.xstore.append(self.lt_blob, &image)?;
        debug_assert_eq!(off, batch[0].start_lsn() - self.lt_base);
        let end = batch.last().expect("nonempty").end_lsn();
        for block in batch {
            self.ssd_write_best_effort(block);
            self.metrics.blocks_destaged.incr();
            self.metrics.bytes_destaged.add(block.len() as u64);
        }
        self.destaged.advance_to(end);
        self.lz.truncate_to(end);
        Ok(())
    }

    /// Drain the whole destage queue (used by deterministic tests and
    /// shutdown paths).
    pub fn destage_all(&self) -> Result<usize> {
        let mut n = 0;
        loop {
            match self.destage_once()? {
                0 => return Ok(n),
                k => n += k,
            }
        }
    }

    fn ssd_write_best_effort(&self, block: &LogBlock) {
        // Make room by truncating the circular cache window.
        let need = block.len() as u64;
        if self.ssd_cache.free_bytes() < need {
            let tail = self.ssd_cache.tail();
            let deficit = need - self.ssd_cache.free_bytes();
            self.ssd_cache.truncate_to(tail + deficit);
        }
        let _ = self.ssd_cache.write_block(block);
    }

    // ---- serving consumers ----

    /// Read the block starting at `lsn` through the tier hierarchy:
    /// sequence map → SSD cache → landing zone → long-term archive.
    pub fn get_block(&self, lsn: Lsn) -> Result<LogBlock> {
        if lsn >= self.released_lsn() {
            return Err(Error::NotFound(format!(
                "{lsn} not yet released (frontier {})",
                self.released_lsn()
            )));
        }
        if let Some(blk) = self.broker.lock().seq.get(&lsn) {
            self.metrics.served_from_memory.incr();
            return Ok(blk.clone());
        }
        if let Ok(blk) = self.ssd_cache.read_block(lsn) {
            self.metrics.served_from_ssd.incr();
            return Ok(blk);
        }
        if let Ok(blk) = self.lz.read_block(lsn) {
            self.metrics.served_from_lz.incr();
            return Ok(blk);
        }
        // Last resort: the LT, where the block is guaranteed to exist.
        let blk = self.read_from_lt(lsn)?;
        self.metrics.served_from_lt.incr();
        Ok(blk)
    }

    fn read_from_lt(&self, lsn: Lsn) -> Result<LogBlock> {
        if lsn < self.lt_base {
            return Err(Error::NotFound(format!("{lsn} predates the LT base {}", self.lt_base)));
        }
        let off = lsn - self.lt_base;
        let header = self.xstore.read_at(self.lt_blob, off, BLOCK_HEADER)?;
        let info = LogBlock::peek(&header)?;
        let image = self.xstore.read_at(self.lt_blob, off, info.total_len)?;
        LogBlock::decode(image)
    }

    /// Read the LT archive directly over an arbitrary blob — the PITR
    /// bootstrap path ("a new XLOG process is bootstrapped on the copied
    /// log blobs"). Returns blocks whose start LSN lies in `[from, to)`.
    pub fn read_lt_range(
        xstore: &XStore,
        blob: BlobId,
        base: Lsn,
        from: Lsn,
        to: Lsn,
    ) -> Result<Vec<LogBlock>> {
        let len = xstore.blob_len(blob)?;
        let end = base + len;
        let mut at = from.max(base);
        let mut out = Vec::new();
        while at < to.min(end) {
            let off = at - base;
            let header = xstore.read_at(blob, off, BLOCK_HEADER)?;
            let info = LogBlock::peek(&header)?;
            let image = xstore.read_at(blob, off, info.total_len)?;
            let block = LogBlock::decode(image)?;
            at = block.end_lsn();
            out.push(block);
        }
        Ok(out)
    }

    /// Pull released blocks for a consumer starting at `from`, up to
    /// `max_bytes` of block data, filtered to `partition` when given.
    pub fn pull_blocks(
        &self,
        from: Lsn,
        max_bytes: usize,
        partition: Option<PartitionId>,
    ) -> Result<PullResult> {
        let frontier = self.released_lsn();
        let mut at = from;
        let mut blocks = Vec::new();
        let mut bytes = 0usize;
        while at < frontier && bytes < max_bytes {
            let block = self.get_block(at)?;
            at = block.end_lsn();
            bytes += block.len();
            let relevant = partition.is_none_or(|p| block.affects_partition(p));
            if relevant {
                blocks.push(block);
            }
        }
        Ok(PullResult { blocks, next_lsn: at })
    }

    // ---- leases & progress ----

    /// Register (or renew) a consumer lease.
    pub fn register_consumer(&self, name: &str, progress: Lsn) {
        let mut leases = self.leases.lock();
        let lease = leases
            .entry(name.to_string())
            .or_insert(Lease { progress, renewed_at: Instant::now() });
        lease.renewed_at = Instant::now();
    }

    /// Report a consumer's applied progress (renews its lease).
    pub fn report_progress(&self, name: &str, progress: Lsn) {
        let mut leases = self.leases.lock();
        let lease = leases
            .entry(name.to_string())
            .or_insert(Lease { progress, renewed_at: Instant::now() });
        lease.progress = lease.progress.max(progress);
        lease.renewed_at = Instant::now();
    }

    /// The slowest live consumer's progress (diagnostics; a production
    /// system would gate LT garbage collection on this).
    pub fn min_consumer_progress(&self) -> Option<Lsn> {
        self.leases.lock().values().map(|l| l.progress).min()
    }

    /// Drop leases that have not been renewed within the TTL; returns the
    /// expired consumer names.
    pub fn expire_leases(&self) -> Vec<String> {
        let ttl = self.config.lease_ttl;
        let mut leases = self.leases.lock();
        let now = Instant::now();
        let expired: Vec<String> = leases
            .iter()
            .filter(|(_, l)| now.duration_since(l.renewed_at) > ttl)
            .map(|(n, _)| n.clone())
            .collect();
        for n in &expired {
            leases.remove(n);
        }
        expired
    }
}

impl Drop for XLogService {
    fn drop(&mut self) {
        // ordering: relaxed — poll flag; the destager join is the real sync point
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.destager.lock().take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socrates_common::{PageId, TxnId};
    use socrates_storage::MemFcb;
    use socrates_wal::block::BlockBuilder;
    use socrates_wal::record::{LogPayload, LogRecord};
    use socrates_xstore::XStoreConfig;

    fn block_at(start: Lsn, partition: u32, payload_len: usize) -> LogBlock {
        let mut b = BlockBuilder::new(start, 1 << 16);
        b.append(
            &LogRecord {
                txn: TxnId::new(1),
                payload: LogPayload::PageWrite {
                    page_id: PageId::new(partition as u64 * 1000),
                    op: vec![0xAB; payload_len],
                },
            },
            Some(PartitionId::new(partition)),
        );
        b.seal()
    }

    struct Fixture {
        lz: Arc<LandingZone>,
        svc: Arc<XLogService>,
        #[allow(dead_code)]
        xstore: Arc<XStore>,
    }

    fn fixture(config: XLogConfig) -> Fixture {
        let lz = Arc::new(LandingZone::new(
            vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
            LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
        ));
        let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
        let svc = XLogService::new(
            Arc::clone(&lz) as Arc<dyn LogStore>,
            Arc::new(MemFcb::new("xlog-ssd")) as Arc<dyn Fcb>,
            Arc::clone(&xstore),
            config,
            Lsn::ZERO,
            "xlog/lt",
        )
        .unwrap();
        Fixture { lz, svc, xstore }
    }

    /// Write a chain of blocks through the LZ + offer/report path.
    fn feed_chain(f: &Fixture, n: usize, lose: impl Fn(usize) -> bool) -> Vec<LogBlock> {
        let mut blocks = Vec::new();
        let mut start = Lsn::ZERO;
        for i in 0..n {
            let blk = block_at(start, (i % 3) as u32, 50 + i);
            f.lz.write_block(&blk).unwrap();
            if !lose(i) {
                f.svc.offer_block(blk.clone());
            }
            f.svc.report_hardened(blk.end_lsn());
            start = blk.end_lsn();
            blocks.push(blk);
        }
        blocks
    }

    #[test]
    fn release_requires_hardening() {
        let f = fixture(XLogConfig::default());
        let blk = block_at(Lsn::ZERO, 0, 10);
        f.svc.offer_block(blk.clone());
        // Not hardened: nothing released.
        assert_eq!(f.svc.released_lsn(), Lsn::ZERO);
        assert!(f.svc.get_block(Lsn::ZERO).is_err());
        f.lz.write_block(&blk).unwrap();
        f.svc.report_hardened(blk.end_lsn());
        assert_eq!(f.svc.released_lsn(), blk.end_lsn());
        assert_eq!(f.svc.get_block(Lsn::ZERO).unwrap(), blk);
    }

    #[test]
    fn lossy_feed_gaps_filled_from_lz() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 10, |i| i % 3 == 1); // drop a third
        assert_eq!(f.svc.released_lsn(), blocks.last().unwrap().end_lsn());
        assert!(f.svc.metrics().gaps_filled_from_lz.get() >= 3);
        // Every block is servable.
        for blk in &blocks {
            assert_eq!(&f.svc.get_block(blk.start_lsn()).unwrap(), blk);
        }
    }

    #[test]
    fn duplicates_and_stale_offers_dropped() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 3, |_| false);
        // Re-offer everything.
        for blk in &blocks {
            f.svc.offer_block(blk.clone());
        }
        assert_eq!(f.svc.metrics().duplicates_dropped.get(), 3);
        assert_eq!(f.svc.released_lsn(), blocks.last().unwrap().end_lsn());
    }

    #[test]
    fn pull_with_partition_filter_advances_cursor() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 9, |_| false); // partitions cycle 0,1,2
        let r = f.svc.pull_blocks(Lsn::ZERO, usize::MAX, Some(PartitionId::new(1))).unwrap();
        assert_eq!(r.next_lsn, blocks.last().unwrap().end_lsn());
        assert_eq!(r.blocks.len(), 3, "only partition 1's blocks delivered");
        for blk in &r.blocks {
            assert!(blk.affects_partition(PartitionId::new(1)));
        }
        // Unfiltered pull sees everything.
        let all = f.svc.pull_blocks(Lsn::ZERO, usize::MAX, None).unwrap();
        assert_eq!(all.blocks.len(), 9);
        // Byte-bounded pull stops early but still reports a valid cursor.
        let partial = f.svc.pull_blocks(Lsn::ZERO, 1, None).unwrap();
        assert_eq!(partial.blocks.len(), 1);
        assert_eq!(partial.next_lsn, blocks[0].end_lsn());
    }

    #[test]
    fn destaging_fills_lt_and_truncates_lz() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 5, |_| false);
        let n = f.svc.destage_all().unwrap();
        assert_eq!(n, 5);
        let end = blocks.last().unwrap().end_lsn();
        assert_eq!(f.svc.destaged_lsn(), end);
        assert_eq!(f.lz.tail(), end, "LZ truncated behind destage point");
        // Blocks are no longer in the LZ but still servable (SSD or LT).
        for blk in &blocks {
            assert_eq!(&f.svc.get_block(blk.start_lsn()).unwrap(), blk);
        }
    }

    #[test]
    fn tier_fallthrough_to_lt() {
        // Tiny memory + tiny SSD cache force reads from the LT.
        let config = XLogConfig {
            sequence_map_bytes: 1, // effectively nothing stays in memory
            ssd_cache_bytes: 256,  // too small for more than ~1 block
            ..XLogConfig::default()
        };
        let f = fixture(config);
        let blocks = feed_chain(&f, 8, |_| false);
        f.svc.destage_all().unwrap();
        // Old blocks must come from the LT now.
        let first = &blocks[0];
        assert_eq!(&f.svc.get_block(first.start_lsn()).unwrap(), first);
        assert!(f.svc.metrics().served_from_lt.get() >= 1, "LT tier must serve");
    }

    #[test]
    fn xstore_outage_pauses_destaging_without_loss() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 4, |_| false);
        f.xstore.set_available(false);
        assert!(f.svc.destage_once().is_err());
        // Nothing destaged; LZ still holds everything.
        assert_eq!(f.svc.destaged_lsn(), Lsn::ZERO);
        assert_eq!(f.lz.tail(), Lsn::ZERO);
        f.xstore.set_available(true);
        assert_eq!(f.svc.destage_all().unwrap(), 4);
        assert_eq!(f.svc.destaged_lsn(), blocks.last().unwrap().end_lsn());
    }

    #[test]
    fn background_destager_drains() {
        let f = fixture(XLogConfig::default());
        f.svc.start_destager();
        let blocks = feed_chain(&f, 20, |_| false);
        let end = blocks.last().unwrap().end_lsn();
        let deadline = Instant::now() + Duration::from_secs(5);
        while f.svc.destaged_lsn() < end {
            assert!(Instant::now() < deadline, "destager did not catch up");
            std::thread::sleep(Duration::from_millis(1));
        }
        f.svc.shutdown();
    }

    #[test]
    fn lt_range_reader_for_pitr() {
        let f = fixture(XLogConfig::default());
        let blocks = feed_chain(&f, 6, |_| false);
        f.svc.destage_all().unwrap();
        let (blob, base) = f.svc.lt_location();
        let mid = blocks[2].start_lsn();
        let got = XLogService::read_lt_range(
            &f.xstore,
            blob,
            base,
            mid,
            blocks.last().unwrap().end_lsn(),
        )
        .unwrap();
        assert_eq!(got.len(), 4);
        assert_eq!(got[0], blocks[2]);
        assert_eq!(&got[3], blocks.last().unwrap());
    }

    #[test]
    fn leases_and_progress() {
        let config = XLogConfig { lease_ttl: Duration::from_millis(20), ..XLogConfig::default() };
        let f = fixture(config);
        f.svc.register_consumer("pageserver-0", Lsn::ZERO);
        f.svc.report_progress("pageserver-0", Lsn::new(100));
        f.svc.report_progress("secondary-0", Lsn::new(50));
        assert_eq!(f.svc.min_consumer_progress(), Some(Lsn::new(50)));
        // Progress never regresses.
        f.svc.report_progress("pageserver-0", Lsn::new(90));
        assert_eq!(f.svc.min_consumer_progress(), Some(Lsn::new(50)));
        std::thread::sleep(Duration::from_millis(40));
        f.svc.report_progress("secondary-0", Lsn::new(60)); // renews
        let expired = f.svc.expire_leases();
        assert_eq!(expired, vec!["pageserver-0".to_string()]);
        assert_eq!(f.svc.min_consumer_progress(), Some(Lsn::new(60)));
    }
}

//! XLOG — the separate log service (paper §4.3, Figure 3).
//!
//! XLOG is what makes the log a first-class tier in Socrates. The primary
//! writes blocks synchronously to the landing zone (durability) and sends
//! the same blocks to XLOG in fire-and-forget style (availability). XLOG
//!
//! * keeps the blocks in a **pending area** until the primary reports them
//!   hardened — speculative log must never be disseminated, or a consumer
//!   could apply updates that a crash then un-commits;
//! * repairs the lossy feed by **filling gaps from the landing zone** and
//!   dropping duplicates/reorderings;
//! * serves consumers (secondaries, page servers) from a tiered hierarchy:
//!   the in-memory **sequence map**, then a local **SSD block cache**, then
//!   the landing zone, then the **long-term archive (LT)** on XStore where
//!   a block is guaranteed to be found;
//! * **destages** released blocks to the SSD cache and LT, and truncates
//!   the landing zone behind the destage point — the backpressure loop that
//!   bounds the expensive LZ;
//! * tracks consumer **leases and progress**, serving pull-based consumers
//!   so it never needs to know how many page servers exist.

pub mod feed;
pub mod service;

pub use feed::XLogFeed;
pub use service::{PullResult, XLogConfig, XLogMetrics, XLogService};

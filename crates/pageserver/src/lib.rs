//! Page servers — the Socrates storage tier (paper §4.6).
//!
//! Each page server owns one partition of the database page space and
//! does three jobs:
//!
//! 1. **Apply log.** It pulls only the log blocks relevant to its
//!    partition from XLOG (using the blocks' out-of-band partition
//!    annotations) and slices each record into the partition's **layered
//!    page-version store**: deltas accumulate in an open L0 layer, seal
//!    into immutable L0 delta layers, and background compaction merges
//!    them into sorted L1 image layers (RBPEX demoted to the L1 on-disk
//!    representation). Retention GC retires layers wholly below the PITR
//!    horizon.
//! 2. **Serve GetPage@LSN.** A request `getPage(X, X-LSN)` waits until the
//!    server's applied LSN reaches `X-LSN`, then returns the page — the
//!    freshness contract the compute tier's evicted-LSN map relies on.
//!    `get_page_at` serves **arbitrary historical LSNs** (newest image ≤
//!    LSN + ordered delta replay); multi-page range reads are served from
//!    the stride-preserving image layer in one device I/O. Copy-on-write
//!    branches share parent layers zero-copy and diverge via `ingest`.
//! 3. **Checkpoint & back up.** It regularly ships modified pages to its
//!    XStore data blob, records the checkpointed LSN, and takes backups as
//!    constant-time XStore snapshots. During an XStore outage it keeps
//!    serving and applying from RBPEX, remembers what could not be
//!    checkpointed, and catches up when the service returns (insulation).
//!
//! Page servers are *stateless* in the durability sense: the truth is
//! XStore + the log, so a lost page server is recreated by attaching the
//! blob and replaying from the recorded checkpoint LSN — and a brand-new
//! replica is **seeded asynchronously** while it is already serving
//! requests (misses fall through to XStore until seeding completes).

use parking_lot::{Condvar, Mutex};
use socrates_common::fault::{sites as fault_sites, FaultOutcome, FaultRegistry};
use socrates_common::lsn::AtomicLsn;
use socrates_common::metrics::{Counter, CpuAccountant};
use socrates_common::obs::{SpanKind, SpanRing, TraceCtx};
use socrates_common::{BlobId, Error, Lsn, NodeId, PageId, PartitionId, Result};
use socrates_rbio::proto::{RbioRequest, RbioResponse};
use socrates_rbio::transport::RbioHandler;
use socrates_storage::fcb::Fcb;
use socrates_storage::layer::{Delta, DeltaLayer, ImageLayer, LayerDeviceFactory, OpenLayer};
use socrates_storage::layermap::{LayerCounts, LayerMap};
use socrates_storage::page::{Page, PAGE_SIZE};
use socrates_storage::pageops::{apply_page_op, PageOp};
use socrates_storage::sched::IoScheduler;
use socrates_wal::record::LogPayload;
use socrates_xlog::XLogService;
use socrates_xstore::{SnapshotId, XStore};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::time::{Duration, Instant};

/// Pages held in the apply buffer before spilling to RBPEX.
const MEM_TIER_PAGES: usize = 256;

/// Static description of a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The partition id.
    pub id: PartitionId,
    /// First page id owned by this partition.
    pub base_page: u64,
    /// Number of page ids owned.
    pub span: u64,
}

impl PartitionSpec {
    /// Whether `page` belongs to this partition.
    pub fn contains(&self, page: PageId) -> bool {
        page.raw() >= self.base_page && page.raw() < self.base_page + self.span
    }
}

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct PageServerConfig {
    /// Max bytes pulled from XLOG per apply batch.
    pub pull_batch_bytes: usize,
    /// Checkpoint when this many pages are dirty.
    pub checkpoint_dirty_pages: usize,
    /// Apply-loop idle sleep.
    pub idle_sleep: Duration,
    /// GetPage@LSN wait deadline.
    pub get_page_timeout: Duration,
    /// Seal the open L0 delta layer once it retains this many bytes.
    pub layer_seal_bytes: u64,
    /// Schedule a background compaction once this many sealed L0s
    /// accumulate.
    pub layer_compact_threshold: usize,
    /// PITR retention: history further than this many log bytes behind
    /// the applied frontier may be garbage-collected. `u64::MAX`
    /// disables GC (retain everything).
    pub retention_window_bytes: u64,
    /// How long `branch_from` waits for the parent to apply up to the
    /// requested branch point.
    pub branch_wait: Duration,
}

impl Default for PageServerConfig {
    fn default() -> Self {
        PageServerConfig {
            pull_batch_bytes: 1 << 20,
            checkpoint_dirty_pages: 256,
            idle_sleep: Duration::from_micros(500),
            get_page_timeout: Duration::from_secs(10),
            layer_seal_bytes: 64 << 10,
            layer_compact_threshold: 4,
            retention_window_bytes: u64::MAX,
            branch_wait: Duration::from_secs(5),
        }
    }
}

/// Counters.
#[derive(Debug, Default)]
pub struct PageServerMetrics {
    /// Log records applied.
    pub records_applied: Counter,
    /// GetPage requests served.
    pub pages_served: Counter,
    /// GetPage requests that had to wait for log apply.
    pub get_page_waits: Counter,
    /// Pages shipped to XStore by checkpoints.
    pub pages_checkpointed: Counter,
    /// Checkpoint attempts deferred by an XStore outage.
    pub checkpoints_deferred: Counter,
    /// Pages restored from XStore on a cache miss (seeding fallback).
    pub xstore_fallback_reads: Counter,
    /// GetPageRange requests served.
    pub range_requests: Counter,
    /// Pages served through GetPageRange (vs. one-page GetPage).
    pub range_pages_served: Counter,
    /// Open L0 layers sealed into immutable delta layers.
    pub layers_sealed: Counter,
    /// Compaction passes that published an L1 image.
    pub compactions_run: Counter,
    /// Layer files dropped by retention GC.
    pub gc_layers_dropped: Counter,
    /// GetPage@LSN requests at an explicitly historical LSN.
    pub historical_reads: Counter,
    /// Wall time the apply loop spent doing productive work (pulling and
    /// applying non-empty batches), in microseconds. Delta over a window ÷
    /// window length = apply-loop utilization, the saturation signal the
    /// load observatory's bottleneck attribution reads.
    pub apply_busy_us: Counter,
}

/// Apply-progress callback: invoked with the new applied LSN after every
/// advance, so a fabric can wake compute-side freshness waiters without
/// polling.
pub type ApplyListener = Arc<dyn Fn(Lsn) + Send + Sync>;

/// One page server.
pub struct PageServer {
    name: String,
    spec: PartitionSpec,
    config: PageServerConfig,
    /// Latest-page cache: the most recently applied or served versions.
    /// Purely an accelerator now — every entry is reconstructible from
    /// the layer stack, so eviction is a plain drop, not a spill.
    mem: Mutex<HashMap<PageId, Page>>,
    /// The mutable head of the delta stack: WAL slices land here until
    /// the layer crosses `layer_seal_bytes` and is sealed into the map.
    open: Mutex<OpenLayer>,
    /// The immutable layer set: L1 images, sealed L0s, merged deltas.
    layers: LayerMap,
    /// The image layer backing the external base (RBPEX demoted to the
    /// L1 on-disk representation): attach-time blob content is seeded
    /// into it; blob fallback reads are adopted into it.
    base_image: Arc<ImageLayer>,
    xstore: Arc<XStore>,
    data_blob: BlobId,
    meta_blob: BlobId,
    xlog: Arc<XLogService>,
    applied: AtomicLsn,
    /// LSN up to which everything is durably checkpointed in XStore.
    checkpointed: AtomicLsn,
    /// Reads strictly below this LSN are no longer materializable: GC
    /// dropped the layers that held their history.
    gc_floor: AtomicLsn,
    dirty: Mutex<HashSet<PageId>>,
    checkpoint_lock: Mutex<()>,
    /// Serializes compaction passes; held while materializing pages
    /// through the layer map, hence ranked below it.
    compact_lock: Mutex<()>,
    /// At most one queued/running background compaction task.
    compacting: AtomicBool,
    /// Name sequence for L1 image devices.
    l1_seq: AtomicU64,
    /// Devices for new L1 images; defaults to in-memory devices.
    device_factory: OnceLock<LayerDeviceFactory>,
    /// Background-task lane that runs scheduled compactions.
    compactor: OnceLock<Arc<IoScheduler>>,
    /// Self-reference handed to scheduled compaction closures.
    self_weak: OnceLock<Weak<PageServer>>,
    /// Fault sites consulted by compaction (`ps.compact.merge`) and GC
    /// (`ps.gc.drop`).
    faults: OnceLock<FaultRegistry>,
    cpu: Arc<CpuAccountant>,
    metrics: PageServerMetrics,
    /// Condvar protocol for GetPage@LSN freshness waits: `wait_applied`
    /// sleeps here and every apply advance notifies, replacing the old
    /// 100 µs busy-poll.
    apply_mutex: Mutex<()>,
    apply_cv: Condvar,
    apply_listener: Mutex<Option<ApplyListener>>,
    stop: AtomicBool,
    seeded: AtomicBool,
    apply_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    ckpt_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    seed_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Causal span sink + this server's node identity. Set once at fabric
    /// wiring time; a lock-free `OnceLock` read on the hot paths (one
    /// atomic load when tracing is wired, and the recording sites only
    /// dereference it for ctx-carrying work).
    spans: std::sync::OnceLock<(Arc<SpanRing>, NodeId)>,
}

impl PageServer {
    /// Create a page server for a brand-new partition: fresh covering
    /// cache, fresh XStore blobs, apply cursor at `start_lsn`.
    #[allow(clippy::too_many_arguments)] // a constructor: every dependency is explicit
    pub fn create(
        name: &str,
        spec: PartitionSpec,
        config: PageServerConfig,
        ssd: Arc<dyn Fcb>,
        ssd_meta: Arc<dyn Fcb>,
        xstore: Arc<XStore>,
        xlog: Arc<XLogService>,
        cpu: Arc<CpuAccountant>,
        start_lsn: Lsn,
    ) -> Result<Arc<PageServer>> {
        let base_image = ImageLayer::create(start_lsn, ssd, ssd_meta, spec.base_page, spec.span)?;
        let data_blob = xstore.create_blob(&format!("data/{name}"))?;
        let meta_blob = xstore.create_blob(&format!("data/{name}.meta"))?;
        xstore.write_at(meta_blob, 0, &start_lsn.offset().to_le_bytes())?;
        let layers = LayerMap::new();
        layers.add_image(Arc::clone(&base_image));
        Ok(PageServer::build(
            name,
            spec,
            config,
            base_image,
            layers,
            xstore,
            data_blob,
            meta_blob,
            xlog,
            cpu,
            start_lsn,
            true,
            Lsn::ZERO,
        ))
    }

    /// Attach to an *existing* partition blob (replacement after a page
    /// server loss, a replica, or a PITR restore target). The local cache
    /// starts empty and is seeded asynchronously; the apply cursor resumes
    /// from the blob's recorded checkpoint LSN.
    #[allow(clippy::too_many_arguments)] // a constructor: every dependency is explicit
    pub fn attach(
        name: &str,
        spec: PartitionSpec,
        config: PageServerConfig,
        ssd: Arc<dyn Fcb>,
        ssd_meta: Arc<dyn Fcb>,
        xstore: Arc<XStore>,
        data_blob: BlobId,
        meta_blob: BlobId,
        xlog: Arc<XLogService>,
        cpu: Arc<CpuAccountant>,
    ) -> Result<Arc<PageServer>> {
        let meta = xstore.read_at(meta_blob, 0, 8)?;
        let start_lsn = Lsn::new(u64::from_le_bytes(meta[0..8].try_into().unwrap()));
        let base_image = ImageLayer::create(start_lsn, ssd, ssd_meta, spec.base_page, spec.span)?;
        let layers = LayerMap::new();
        layers.add_image(Arc::clone(&base_image));
        Ok(PageServer::build(
            name,
            spec,
            config,
            base_image,
            layers,
            xstore,
            data_blob,
            meta_blob,
            xlog,
            cpu,
            start_lsn,
            false,
            Lsn::ZERO,
        ))
    }

    /// Fork a copy-on-write branch of `parent` at `at_lsn`: the child
    /// shares every parent layer at or below the branch point zero-copy
    /// (`Arc` clones, caps clipped to `at_lsn`) and diverges through its
    /// own open layer via [`ingest`](Self::ingest). The child checkpoints
    /// to its own fresh XStore blobs and is never attached to the log —
    /// do not call [`start`](Self::start) on it.
    pub fn branch_from(
        parent: &Arc<PageServer>,
        name: &str,
        at_lsn: Lsn,
        cpu: Arc<CpuAccountant>,
    ) -> Result<Arc<PageServer>> {
        if !parent.is_seeded() {
            return Err(Error::InvalidState(format!(
                "cannot branch {}: its base image is still seeding",
                parent.name
            )));
        }
        let floor = parent.gc_floor.load();
        if at_lsn < floor {
            return Err(Error::InvalidArgument(format!(
                "branch point {at_lsn} is below the GC horizon {floor}"
            )));
        }
        parent.wait_applied_for(at_lsn, parent.config.branch_wait)?;
        // Seal the parent's open layer so every pre-branch delta is in
        // the shareable immutable set. As on the apply path, the sealed
        // L0 is published into the map under the open-layer lock so no
        // concurrent parent read observes the deltas in neither place.
        {
            let mut open = parent.open.lock();
            if let Some(l) = open.seal() {
                parent.metrics.layers_sealed.incr();
                parent.layers.add_sealed(l);
            }
        }
        let layers = parent.layers.fork_at(at_lsn);
        // A GC pass racing the wait/seal/fork above may have advanced the
        // floor and retired layers at or below `at_lsn`, leaving the fork
        // with a hole the floor check at entry did not see. Re-validate
        // against the post-fork floor so the child's recorded horizon
        // never understates the layer set it actually inherited.
        let floor = parent.gc_floor.load();
        if at_lsn < floor {
            return Err(Error::InvalidArgument(format!(
                "branch point {at_lsn} fell below the GC horizon {floor} while forking"
            )));
        }
        let data_blob = parent.xstore.create_blob(&format!("data/{name}"))?;
        let meta_blob = parent.xstore.create_blob(&format!("data/{name}.meta"))?;
        parent.xstore.write_at(meta_blob, 0, &at_lsn.offset().to_le_bytes())?;
        let child = PageServer::build(
            name,
            parent.spec,
            parent.config.clone(),
            Arc::clone(&parent.base_image),
            layers,
            Arc::clone(&parent.xstore),
            data_blob,
            meta_blob,
            Arc::clone(&parent.xlog),
            cpu,
            at_lsn,
            true,
            floor,
        );
        let _ = child.device_factory.set(parent.layer_devices());
        Ok(child)
    }

    #[allow(clippy::too_many_arguments)] // single assembly point for all three constructors
    fn build(
        name: &str,
        spec: PartitionSpec,
        config: PageServerConfig,
        base_image: Arc<ImageLayer>,
        layers: LayerMap,
        xstore: Arc<XStore>,
        data_blob: BlobId,
        meta_blob: BlobId,
        xlog: Arc<XLogService>,
        cpu: Arc<CpuAccountant>,
        start_lsn: Lsn,
        seeded: bool,
        gc_floor: Lsn,
    ) -> Arc<PageServer> {
        let ps = Arc::new(PageServer {
            name: name.to_string(),
            spec,
            config,
            mem: Mutex::with_rank(HashMap::new(), socrates_common::lock_rank::PS_MEM, "ps.mem"),
            open: Mutex::with_rank(
                OpenLayer::new(),
                socrates_common::lock_rank::PS_OPEN_LAYER,
                "ps.open",
            ),
            layers,
            base_image,
            xstore,
            data_blob,
            meta_blob,
            xlog,
            applied: AtomicLsn::new(start_lsn),
            checkpointed: AtomicLsn::new(start_lsn),
            gc_floor: AtomicLsn::new(gc_floor),
            dirty: Mutex::with_rank(
                HashSet::new(),
                socrates_common::lock_rank::PS_DIRTY,
                "ps.dirty",
            ),
            checkpoint_lock: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_CHECKPOINT,
                "ps.checkpoint_lock",
            ),
            compact_lock: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_COMPACT,
                "ps.compact_lock",
            ),
            compacting: AtomicBool::new(false),
            l1_seq: AtomicU64::new(0),
            device_factory: OnceLock::new(),
            compactor: OnceLock::new(),
            self_weak: OnceLock::new(),
            faults: OnceLock::new(),
            cpu,
            metrics: PageServerMetrics::default(),
            apply_mutex: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_APPLY,
                "ps.apply_mutex",
            ),
            apply_cv: Condvar::new(),
            apply_listener: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_LISTENER,
                "ps.apply_listener",
            ),
            stop: AtomicBool::new(false),
            seeded: AtomicBool::new(seeded),
            apply_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_HANDLE,
                "ps.apply_handle",
            ),
            ckpt_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_CKPT_HANDLE,
                "ps.ckpt_handle",
            ),
            seed_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_SEED_HANDLE,
                "ps.seed_handle",
            ),
            spans: std::sync::OnceLock::new(),
        });
        let _ = ps.self_weak.set(Arc::downgrade(&ps));
        ps
    }

    /// The server's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition this server owns.
    pub fn spec(&self) -> PartitionSpec {
        self.spec
    }

    /// Counters.
    pub fn metrics(&self) -> &PageServerMetrics {
        &self.metrics
    }

    /// Register this server's counters and LSN watermarks into the hub
    /// under `node`. The apply lag is derived against XLOG's released
    /// frontier — the log this server *could* have applied by now.
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: socrates_common::NodeId,
    ) {
        macro_rules! counter {
            ($name:literal, $field:ident) => {{
                let ps = Arc::clone(self);
                hub.register_counter_fn(node, $name, move || ps.metrics.$field.get());
            }};
        }
        counter!("records_applied", records_applied);
        counter!("pages_served", pages_served);
        counter!("get_page_waits", get_page_waits);
        counter!("pages_checkpointed", pages_checkpointed);
        counter!("checkpoints_deferred", checkpoints_deferred);
        counter!("xstore_fallback_reads", xstore_fallback_reads);
        counter!("range_requests", range_requests);
        counter!("range_pages_served", range_pages_served);
        counter!("layers_sealed", layers_sealed);
        counter!("compactions_run", compactions_run);
        counter!("gc_layers_dropped", gc_layers_dropped);
        counter!("historical_reads", historical_reads);
        counter!("apply_busy_us", apply_busy_us);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "layer_l0_count", move || ps.layers.counts().l0 as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "layer_l1_images", move || ps.layers.counts().images as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "layer_merged_deltas", move || {
            ps.layers.counts().merged as i64
        });
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "layer_open_bytes", move || ps.open.lock().bytes() as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "compaction_backlog", move || {
            ps.layers.counts().l0.saturating_sub(ps.config.layer_compact_threshold) as i64
        });
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "gc_horizon_lsn", move || ps.gc_floor.load().offset() as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "applied_lsn", move || ps.applied.load().offset() as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "checkpointed_lsn", move || {
            ps.checkpointed.load().offset() as i64
        });
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "apply_lag_bytes", move || {
            (ps.xlog.released_lsn().offset() as i64 - ps.applied.load().offset() as i64).max(0)
        });
    }

    /// Attach the causal span sink; spans are attributed to `node` (this
    /// server's fabric identity). First call wins — re-wiring a running
    /// server would tear spans across rings.
    pub fn set_span_ring(&self, ring: Arc<SpanRing>, node: NodeId) {
        let _ = self.spans.set((ring, node));
    }

    /// The span sink for ctx-carrying work, or `None` when tracing is
    /// unwired or `ctx` is unsampled.
    fn span_sink(&self, ctx: TraceCtx) -> Option<&(Arc<SpanRing>, NodeId)> {
        if !ctx.sampled() {
            return None;
        }
        self.spans.get()
    }

    /// The log-apply watermark.
    pub fn applied_lsn(&self) -> Lsn {
        self.applied.load()
    }

    /// Install a callback fired after every apply advance (at most one;
    /// replaces any previous listener). The fabric uses this to wake its
    /// own `wait_applied` sleepers.
    pub fn set_apply_listener(&self, listener: ApplyListener) {
        *self.apply_listener.lock() = Some(listener);
    }

    /// Record that `applied` advanced to `lsn`: wake freshness waiters and
    /// fire the listener. Taking `apply_mutex` around the notify closes the
    /// check-then-sleep race with `wait_applied`.
    fn note_applied(&self, lsn: Lsn) {
        {
            let _g = self.apply_mutex.lock();
            self.apply_cv.notify_all();
        }
        let listener = self.apply_listener.lock().clone();
        if let Some(l) = listener {
            l(lsn);
        }
    }

    /// Everything at or below this LSN is durable in XStore.
    pub fn checkpointed_lsn(&self) -> Lsn {
        self.checkpointed.load()
    }

    /// Whether asynchronous seeding has completed.
    pub fn is_seeded(&self) -> bool {
        // ordering: acquire — pairs with the release store in seed_loop so a
        // true result also publishes the seeded pages
        self.seeded.load(Ordering::Acquire)
    }

    /// The XStore blobs backing this partition (restore workflows).
    pub fn blobs(&self) -> (BlobId, BlobId) {
        (self.data_blob, self.meta_blob)
    }

    /// Install the fault registry consulted by compaction and GC.
    /// First call wins.
    pub fn set_faults(&self, faults: FaultRegistry) {
        let _ = self.faults.set(faults);
    }

    /// Install the background-task scheduler that runs compactions.
    /// First call wins; without one, compaction only runs when driven
    /// explicitly via [`compact_blocking`](Self::compact_blocking).
    pub fn set_compaction_scheduler(&self, sched: Arc<IoScheduler>) {
        let _ = self.compactor.set(sched);
    }

    /// Install the device factory for new L1 image layers. First call
    /// wins; the default hands out in-memory devices.
    pub fn set_layer_devices(&self, factory: LayerDeviceFactory) {
        let _ = self.device_factory.set(factory);
    }

    fn layer_devices(&self) -> LayerDeviceFactory {
        Arc::clone(self.device_factory.get_or_init(socrates_storage::layer::mem_device_factory))
    }

    /// The layer index (tests assert zero-copy sharing against it).
    pub fn layers(&self) -> &LayerMap {
        &self.layers
    }

    /// Current layer-set sizes.
    pub fn layer_counts(&self) -> LayerCounts {
        self.layers.counts()
    }

    /// Reads strictly below this LSN error: GC dropped their history.
    pub fn gc_floor_lsn(&self) -> Lsn {
        self.gc_floor.load()
    }

    /// Start the background apply loop (and the seeding thread for
    /// attached servers).
    pub fn start(self: &Arc<Self>) {
        if !self.is_seeded() {
            let me = Arc::clone(self);
            *self.seed_handle.lock() = Some(
                std::thread::Builder::new()
                    .name(format!("{}-seed", self.name))
                    .spawn(move || me.seed_loop())
                    .expect("spawn seeder"),
            );
        }
        let me = Arc::clone(self);
        *self.apply_handle.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-apply", self.name))
                .spawn(move || me.apply_loop())
                .expect("spawn apply loop"),
        );
        let me = Arc::clone(self);
        *self.ckpt_handle.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-ckpt", self.name))
                .spawn(move || me.checkpoint_loop())
                .expect("spawn checkpoint loop"),
        );
    }

    /// Stop background threads and join them.
    pub fn stop(&self) {
        // ordering: relaxed — poll flag; the joins below are the real sync point
        self.stop.store(true, Ordering::Relaxed);
        for handle in [&self.apply_handle, &self.ckpt_handle, &self.seed_handle] {
            if let Some(h) = handle.lock().take() {
                let _ = h.join();
            }
        }
    }

    // ---- log apply ----

    fn apply_loop(self: Arc<Self>) {
        // ordering: relaxed — shutdown poll; a late observation costs one iteration
        while !self.stop.load(Ordering::Relaxed) {
            match self.apply_once() {
                Ok(0) => std::thread::sleep(self.config.idle_sleep),
                Ok(_) => {}
                Err(_) => std::thread::sleep(self.config.idle_sleep.max(Duration::from_millis(2))),
            }
        }
    }

    /// The background checkpointer: runs on its own thread so slow XStore
    /// writes never stall log apply (which would stall GetPage@LSN).
    // soclint-allow: lock-order-transitive the dirty guard below is a
    // statement-scoped temporary (`.lock().len()`), already dropped when
    // checkpoint() runs; no dirty->checkpoint_lock nesting actually occurs.
    fn checkpoint_loop(self: Arc<Self>) {
        // ordering: relaxed — shutdown poll; a late observation costs one iteration
        while !self.stop.load(Ordering::Relaxed) {
            let dirty_count = self.dirty.lock().len();
            if dirty_count >= self.config.checkpoint_dirty_pages {
                let _ = self.checkpoint(); // deferred on outage
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    /// Pull and apply one batch; returns the number of records applied.
    /// Public so deterministic tests can drive the server without threads.
    pub fn apply_once(&self) -> Result<usize> {
        let busy_t0 = std::time::Instant::now();
        let cursor = self.applied.load();
        let pull =
            self.xlog.pull_blocks(cursor, self.config.pull_batch_bytes, Some(self.spec.id))?;
        let mut applied = 0usize;
        for block in &pull.blocks {
            let span = self
                .span_sink(block.ctx())
                // soclint-allow: span-pairing a records()/apply error abandons
                // the whole pull; the per-block span is deliberately dropped
                // with it and the retried pull re-samples.
                .map(|(ring, node)| (Arc::clone(ring), *node, ring.now_ns()));
            for rec in block.records()? {
                if let LogPayload::PageWrite { page_id, op } = &rec.record.payload {
                    if self.spec.contains(*page_id) {
                        self.apply_page_write(*page_id, op, rec.lsn)?;
                        applied += 1;
                    }
                }
            }
            if let Some((ring, node, start)) = span {
                let dur = ring.now_ns().saturating_sub(start);
                ring.record_child(block.ctx(), SpanKind::PsApply, node, start, dur);
            }
        }
        if pull.next_lsn > cursor {
            self.applied.advance_to(pull.next_lsn);
            self.xlog.report_progress(&self.name, pull.next_lsn);
            self.note_applied(pull.next_lsn);
        }
        self.metrics.records_applied.add(applied as u64);
        if applied > 0 {
            self.metrics.apply_busy_us.add(busy_t0.elapsed().as_micros() as u64);
        }
        Ok(applied)
    }

    /// Apply a slice of log blocks directly (bypassing XLOG), stopping at
    /// records with `lsn >= upto`. This is the PITR bootstrap path: "the
    /// log applied to bring the database all the way to the requested
    /// time" (paper §4.7), where the blocks come from the copied LT blobs.
    pub fn apply_blocks(
        &self,
        blocks: &[socrates_wal::block::LogBlock],
        upto: Lsn,
    ) -> Result<usize> {
        let mut applied = 0usize;
        for block in blocks {
            if block.start_lsn() >= upto {
                break;
            }
            for rec in block.records()? {
                if rec.lsn >= upto {
                    break;
                }
                if let LogPayload::PageWrite { page_id, op } = &rec.record.payload {
                    if self.spec.contains(*page_id) {
                        self.apply_page_write(*page_id, op, rec.lsn)?;
                        applied += 1;
                    }
                }
            }
            self.applied.advance_to(block.end_lsn().min(upto));
        }
        self.note_applied(self.applied.load());
        self.metrics.records_applied.add(applied as u64);
        Ok(applied)
    }

    fn apply_page_write(&self, page_id: PageId, op_bytes: &[u8], lsn: Lsn) -> Result<()> {
        // Model the apply CPU cost (decode + page edit).
        self.cpu.charge_us(2 + (op_bytes.len() as u64) / 512);
        let mut sealed = false;
        {
            let mut mem = self.mem.lock();
            let mut page = match mem.remove(&page_id) {
                Some(p) => p,
                None => match self.materialize(page_id, Lsn::MAX, TraceCtx::NONE)? {
                    Some(p) => p,
                    None => Page::new(page_id, socrates_storage::page::PageType::Free),
                },
            };
            if page.page_lsn() < lsn {
                let (op, _) = PageOp::decode(op_bytes)?;
                apply_page_op(&mut page, &op, lsn)?;
                self.dirty.lock().insert(page_id);
                let mut open = self.open.lock();
                open.push(page_id, lsn, op_bytes);
                if open.bytes() >= self.config.layer_seal_bytes {
                    // Publish into the map while still holding the open-layer
                    // lock (rank: PS_OPEN_LAYER 335 < STORAGE_LAYERMAP 545):
                    // sealing empties the open layer, and these deltas cover
                    // already-applied records, so `wait_applied` does not
                    // gate a concurrent reader. Publishing after release
                    // would open a window where the deltas are visible in
                    // neither the open layer nor the map, letting a read or
                    // a checkpoint materialize a stale older version.
                    if let Some(l) = open.seal() {
                        self.layers.add_sealed(l);
                        sealed = true;
                    }
                }
            }
            mem.insert(page_id, page);
            if mem.len() >= MEM_TIER_PAGES {
                // Evict by dropping: every version is reconstructible
                // from the layer stack (no spill tier anymore).
                mem.clear();
            }
        }
        if sealed {
            self.metrics.layers_sealed.incr();
            self.maybe_schedule_compaction();
        }
        Ok(())
    }

    /// Queue a background compaction on the task lane once enough sealed
    /// L0s accumulate. At most one task is in flight per server.
    fn maybe_schedule_compaction(&self) {
        if self.layers.counts().l0 < self.config.layer_compact_threshold {
            return;
        }
        let Some(sched) = self.compactor.get() else { return };
        if self
            .compacting
            // ordering: acqrel CAS — the winner owns the single task slot; the
            // release store in the task closure reopens it, failure acquire
            // observes that reopen
            .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return;
        }
        let Some(me) = self.self_weak.get().and_then(Weak::upgrade) else {
            // ordering: release — reopen the task slot for the next scheduler
            self.compacting.store(false, Ordering::Release);
            return;
        };
        let queued = sched.submit_task(Box::new(move || {
            let _ = me.compact_blocking();
            let _ = me.gc();
            // ordering: release — reopen the task slot after the pass
            me.compacting.store(false, Ordering::Release);
        }));
        if !queued {
            // ordering: release — reopen the task slot; the task never ran
            self.compacting.store(false, Ordering::Release);
        }
    }

    // ---- GetPage@LSN ----

    /// The GetPage@LSN protocol (paper §4.4): wait until applied ≥
    /// `min_lsn`, then serve the page.
    pub fn get_page(&self, page_id: PageId, min_lsn: Lsn) -> Result<Page> {
        self.get_page_ctx(page_id, min_lsn, TraceCtx::NONE)
    }

    /// [`get_page`](Self::get_page) carrying the caller's trace context,
    /// so an XStore fallback read lands in the trace as an `xstore.read`
    /// child span.
    pub fn get_page_ctx(&self, page_id: PageId, min_lsn: Lsn, ctx: TraceCtx) -> Result<Page> {
        self.check_partition(page_id)?;
        self.wait_applied(min_lsn)?;
        self.cpu.charge_us(5);
        if let Some(p) = self.mem.lock().get(&page_id) {
            self.metrics.pages_served.incr();
            return Ok(p.clone());
        }
        let at = self.applied.load();
        match self.materialize(page_id, at, ctx)? {
            Some(p) => {
                self.cache_latest(&p);
                self.metrics.pages_served.incr();
                Ok(p)
            }
            None => Err(Error::NotFound(format!("{page_id} has never been written"))),
        }
    }

    /// GetPage at an **arbitrary historical LSN** between the GC horizon
    /// and the applied frontier: resolved as the newest image at or
    /// below `lsn` plus ordered replay of the deltas in
    /// `(image, lsn]`. Errors cleanly below the GC horizon.
    pub fn get_page_at(&self, page_id: PageId, lsn: Lsn) -> Result<Page> {
        self.get_page_at_ctx(page_id, lsn, TraceCtx::NONE)
    }

    /// [`get_page_at`](Self::get_page_at) carrying a trace context.
    pub fn get_page_at_ctx(&self, page_id: PageId, lsn: Lsn, ctx: TraceCtx) -> Result<Page> {
        self.check_partition(page_id)?;
        let floor = self.gc_floor.load();
        if lsn < floor {
            return Err(Error::InvalidArgument(format!(
                "{page_id}@{lsn}: below the GC horizon {floor}; that history was retired"
            )));
        }
        self.wait_applied(lsn)?;
        self.cpu.charge_us(5);
        self.metrics.historical_reads.incr();
        let page = self.materialize(page_id, lsn, ctx)?;
        // The floor check above is only a snapshot: a GC pass racing the
        // materialization can retire the image/delta layers it was reading,
        // making the result a replay over a partial history. Re-check and
        // fail closed rather than return a silently wrong page.
        let floor = self.gc_floor.load();
        if lsn < floor {
            return Err(Error::InvalidArgument(format!(
                "{page_id}@{lsn}: below the GC horizon {floor}; that history was retired"
            )));
        }
        match page {
            Some(p) => {
                self.metrics.pages_served.incr();
                Ok(p)
            }
            None => Err(Error::NotFound(format!("{page_id} has no version at or below {lsn}"))),
        }
    }

    fn check_partition(&self, page_id: PageId) -> Result<()> {
        if !self.spec.contains(page_id) {
            return Err(Error::InvalidArgument(format!(
                "{page_id} is not in partition {} [{}, {})",
                self.spec.id,
                self.spec.base_page,
                self.spec.base_page + self.spec.span
            )));
        }
        Ok(())
    }

    /// Reconstruct `page_id` as of `lsn` from the layer stack: open-layer
    /// deltas first, then the immutable plan (a seal between the two
    /// reads duplicates deltas — harmless, replay is LSN-guarded — and
    /// never loses any), then the base (image layer, else the XStore
    /// blob, else an empty page under the deltas). Returns `None` when
    /// the page has no version at or below `lsn`.
    fn materialize(&self, page_id: PageId, lsn: Lsn, ctx: TraceCtx) -> Result<Option<Page>> {
        let mut deltas: Vec<Delta> = Vec::new();
        self.open.lock().deltas_for(page_id, Lsn::ZERO, lsn, &mut deltas);
        let (image, _base_lsn) = self.layers.plan_into(page_id, lsn, &mut deltas);
        let mut base_page = match &image {
            Some(img) => img.get(page_id)?,
            None => None,
        };
        if base_page.is_none() {
            // The external base: this partition's blob. A page absent
            // from the chosen image has no *local* history at or below
            // the image's LSN (superset-image invariant), so the blob
            // copy — if it is not from the future — is the right base.
            base_page = match self.read_page_from_xstore_ctx(page_id, ctx)? {
                Some(p) if p.page_lsn() <= lsn => Some(p),
                Some(p) => {
                    if self.is_seeded() {
                        // Seeding completed, so a page missing from the
                        // base image was born after attach: its delta
                        // history is complete and replays from empty.
                        None
                    } else {
                        return Err(Error::NotFound(format!(
                            "{page_id}@{lsn}: the base blob already holds {} and local \
                             history does not reach back",
                            p.page_lsn()
                        )));
                    }
                }
                None => None,
            };
            if let (Some(img), Some(p)) = (&image, &base_page) {
                // Adopt the blob read into the image so the next miss is
                // a local device read (the async-seeding fast path).
                if p.page_lsn() <= img.at_lsn() && !img.contains(page_id) {
                    let _ = img.put(p);
                }
            }
        }
        let mut page = match base_page {
            Some(p) => p,
            None if deltas.is_empty() => return Ok(None),
            None => Page::new(page_id, socrates_storage::page::PageType::Free),
        };
        for (l, op_bytes) in &deltas {
            if *l > page.page_lsn() {
                let (op, _) = PageOp::decode(op_bytes)?;
                apply_page_op(&mut page, &op, *l)?;
            }
        }
        Ok(Some(page))
    }

    /// Insert a freshly materialized latest page into the memory cache —
    /// but never overwrite a newer version raced in by the apply loop,
    /// and never trigger eviction from the read path.
    fn cache_latest(&self, page: &Page) {
        let mut mem = self.mem.lock();
        if mem.len() >= MEM_TIER_PAGES {
            return;
        }
        match mem.get(&page.page_id()) {
            Some(cur) if cur.page_lsn() >= page.page_lsn() => {}
            _ => {
                mem.insert(page.page_id(), page.clone());
            }
        }
    }

    /// Stride-preserving multi-page read: one image-layer device I/O for
    /// the whole range, the memory tier overlaid on top, and any deltas
    /// newer than the image replayed per page. A page missing from the
    /// newest image falls back to the single-page path (which reaches
    /// the external base); so does a page whose resolution plan races a
    /// concurrent compaction publishing a newer image mid-read.
    pub fn get_page_range(&self, first: PageId, count: u32, min_lsn: Lsn) -> Result<Vec<Page>> {
        let ids: Vec<PageId> = (first.raw()..first.raw() + count as u64).map(PageId::new).collect();
        for id in &ids {
            if !self.spec.contains(*id) {
                return Err(Error::InvalidArgument(format!(
                    "{id} is not in partition {}",
                    self.spec.id
                )));
            }
        }
        self.wait_applied(min_lsn)?;
        self.cpu.charge_us(5 + count as u64);
        self.metrics.range_requests.incr();
        let at = self.applied.load();
        let overlay: Vec<Option<Page>> = {
            let mem = self.mem.lock();
            ids.iter().map(|id| mem.get(id).cloned()).collect()
        };
        let image = self.layers.newest_image(at);
        let imaged: Vec<Option<Page>> = match &image {
            Some(img) => img.get_range_partial(&ids)?,
            None => vec![None; ids.len()],
        };
        let mut out = Vec::with_capacity(ids.len());
        let mut fallbacks = 0u64;
        for ((id, mem_page), img_page) in ids.iter().zip(overlay).zip(imaged) {
            if let Some(p) = mem_page {
                out.push(p);
                continue;
            }
            let mut served = None;
            if let Some(mut p) = img_page {
                let mut deltas: Vec<Delta> = Vec::new();
                self.open.lock().deltas_for(*id, Lsn::ZERO, at, &mut deltas);
                let (plan_img, _) = self.layers.plan_into(*id, at, &mut deltas);
                let stable = match (&image, &plan_img) {
                    (Some(a), Some(b)) => Arc::ptr_eq(a, b),
                    _ => false,
                };
                if stable {
                    for (l, op_bytes) in &deltas {
                        if *l > p.page_lsn() {
                            let (op, _) = PageOp::decode(op_bytes)?;
                            apply_page_op(&mut p, &op, *l)?;
                        }
                    }
                    served = Some(p);
                }
            }
            match served {
                Some(p) => out.push(p),
                None => {
                    // The single-page path counts itself in `pages_served`.
                    fallbacks += 1;
                    out.push(self.get_page(*id, Lsn::ZERO)?);
                }
            }
        }
        self.metrics.pages_served.add(ids.len() as u64 - fallbacks);
        self.metrics.range_pages_served.add(ids.len() as u64);
        Ok(out)
    }

    fn wait_applied(&self, min_lsn: Lsn) -> Result<()> {
        self.wait_applied_for(min_lsn, self.config.get_page_timeout)
    }

    fn wait_applied_for(&self, min_lsn: Lsn, timeout: Duration) -> Result<()> {
        if self.applied.load() >= min_lsn {
            return Ok(());
        }
        self.metrics.get_page_waits.incr();
        let deadline = Instant::now() + timeout;
        let mut guard = self.apply_mutex.lock();
        // Re-check under the lock: `note_applied` notifies while holding
        // it, so an advance between the check and the wait cannot be lost.
        // The capped wait is a backstop against a stopped apply loop.
        while self.applied.load() < min_lsn {
            let now = Instant::now();
            if now > deadline {
                return Err(Error::Timeout(format!(
                    "GetPage wait: applied {} < requested {min_lsn}",
                    self.applied.load()
                )));
            }
            let cap = deadline.saturating_duration_since(now).min(Duration::from_millis(5));
            self.apply_cv.wait_for(&mut guard, cap);
        }
        Ok(())
    }

    // ---- checkpointing, backup, seeding ----

    /// Ship all dirty pages to XStore and advance the checkpointed LSN.
    /// During an XStore outage this returns `Unavailable` and keeps the
    /// dirty set intact (the insulation mode of §4.6).
    pub fn checkpoint(&self) -> Result<Lsn> {
        let _g = self.checkpoint_lock.lock();
        let at = self.applied.load();
        let batch: Vec<PageId> = {
            let dirty = self.dirty.lock();
            dirty.iter().copied().collect()
        };
        if batch.is_empty() {
            // Still advance the recorded LSN: everything applied is clean.
            self.write_checkpoint_meta(at)?;
            return Ok(at);
        }
        if !self.xstore.is_available() {
            self.metrics.checkpoints_deferred.incr();
            return Err(Error::Unavailable("xstore outage; checkpoint deferred".into()));
        }
        // Checkpoints are trace roots of their own: they are not caused by
        // any one commit, so they self-sample at the ring's rate.
        let ckpt_span = self.spans.get().and_then(|(ring, node)| {
            // soclint-allow: span-pairing a materialize/write_batch error
            // abandons the checkpoint; its root span is deliberately dropped.
            ring.try_sample().map(|ctx| (Arc::clone(ring), *node, ctx, ring.now_ns()))
        });
        // Aggregate the dirty pages into large batched writes (§4.6).
        let mut shipped: Vec<(PageId, Lsn)> = Vec::with_capacity(batch.len());
        for chunk in batch.chunks(128) {
            let mut images = Vec::with_capacity(chunk.len());
            for page_id in chunk {
                // Freshest-at-`at` wins: serve the memory tier if it still
                // holds the page, else rebuild the version at `at` through
                // the layer stack. Shipping a stale image and clearing the
                // dirty bit would lose the update in XStore — a replacement
                // server attaching at the recorded LSN would never replay
                // it — hence the LSN-checked clear below.
                let page = match self.mem.lock().get(page_id).cloned() {
                    Some(p) => p,
                    None => match self.materialize(*page_id, at, TraceCtx::NONE)? {
                        Some(p) => p,
                        None => continue,
                    },
                };
                let off = (page_id.raw() - self.spec.base_page) * PAGE_SIZE as u64;
                shipped.push((*page_id, page.page_lsn()));
                images.push((off, page.to_io_bytes()));
                self.cpu.charge_us(10);
            }
            let writes: Vec<(u64, &[u8])> =
                images.iter().map(|(off, img)| (*off, img.as_slice())).collect();
            // soclint-allow: span-pairing a write_batch failure aborts the
            // checkpoint; the in-flight put child is dropped with it.
            let put_start = ckpt_span.as_ref().map(|(ring, ..)| ring.now_ns());
            self.xstore.write_batch(self.data_blob, &writes)?;
            if let (Some((ring, _, ctx, _)), Some(start)) = (&ckpt_span, put_start) {
                let dur = ring.now_ns().saturating_sub(start);
                ring.record_child(*ctx, SpanKind::XstorePut, NodeId::XSTORE, start, dur);
            }
            self.metrics.pages_checkpointed.add(writes.len() as u64);
        }
        {
            // Clear dirty bits only for pages whose shipped image is still
            // current; a page re-applied mid-checkpoint stays dirty so the
            // next checkpoint ships the newer version. "Current" is the
            // newest LSN any tier knows: memory, the open layer, or any
            // delta layer in the map.
            let mem = self.mem.lock();
            let mut dirty = self.dirty.lock();
            let open = self.open.lock();
            for (p, lsn) in &shipped {
                let current = mem
                    .get(p)
                    .map(|pg| pg.page_lsn())
                    .into_iter()
                    .chain(open.latest_lsn_of(*p))
                    .chain(self.layers.latest_delta_lsn_of(*p))
                    .max();
                if current.is_none_or(|c| c <= *lsn) {
                    dirty.remove(p);
                }
            }
        }
        self.write_checkpoint_meta(at)?;
        if let Some((ring, node, ctx, start)) = ckpt_span {
            let dur = ring.now_ns().saturating_sub(start);
            ring.record_root(ctx, SpanKind::PsCheckpoint, node, start, dur);
        }
        Ok(at)
    }

    fn write_checkpoint_meta(&self, lsn: Lsn) -> Result<()> {
        self.xstore.write_at(self.meta_blob, 0, &lsn.offset().to_le_bytes())?;
        self.checkpointed.advance_to(lsn);
        Ok(())
    }

    /// Take a backup: checkpoint, then snapshot the data blob. Returns the
    /// snapshot and the LSN it is consistent with. Constant-time in
    /// partition size (paper §3.5) — the snapshot is a metadata operation.
    pub fn backup(&self) -> Result<(SnapshotId, Lsn)> {
        let lsn = self.checkpoint()?;
        let snap = self.xstore.snapshot(self.data_blob)?;
        Ok((snap, lsn))
    }

    fn read_page_from_xstore(&self, page_id: PageId) -> Result<Option<Page>> {
        self.read_page_from_xstore_ctx(page_id, TraceCtx::NONE)
    }

    fn read_page_from_xstore_ctx(&self, page_id: PageId, ctx: TraceCtx) -> Result<Option<Page>> {
        let off = (page_id.raw() - self.spec.base_page) * PAGE_SIZE as u64;
        let len = self.xstore.blob_len(self.data_blob)?;
        if off + PAGE_SIZE as u64 > len {
            return Ok(None);
        }
        let span = self.span_sink(ctx).map(|(ring, _)| (Arc::clone(ring), ring.now_ns()));
        let res = self.xstore.read_at(self.data_blob, off, PAGE_SIZE);
        if let Some((ring, start)) = span {
            // Attributed to the XStore tier: the blob service did the work.
            // Recorded even when the read fails — failed fallback reads are
            // exactly what an outage trace needs to show.
            let dur = ring.now_ns().saturating_sub(start);
            ring.record_child(ctx, SpanKind::XstoreRead, NodeId::XSTORE, start, dur);
        }
        let bytes = res?;
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None); // never-written hole
        }
        self.metrics.xstore_fallback_reads.incr();
        Ok(Some(Page::from_io_bytes(page_id, &bytes)?))
    }

    fn seed_loop(self: Arc<Self>) {
        for off in 0..self.spec.span {
            // ordering: relaxed — shutdown poll; a late observation costs one page
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let page_id = PageId::new(self.spec.base_page + off);
            if self.base_image.contains(page_id) {
                continue; // already adopted by a fallback read
            }
            match self.read_page_from_xstore(page_id) {
                Ok(Some(page)) => {
                    // A checkpoint racing the seeder may have overwritten
                    // the blob with a version newer than the base LSN;
                    // that version is reachable through the delta stack,
                    // so never fold it into the attach-time image.
                    if page.page_lsn() <= self.base_image.at_lsn()
                        && !self.base_image.contains(page_id)
                    {
                        let _ = self.base_image.put(&page);
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    // Outage: retry this page after a pause.
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // ordering: release — publishes every base-image page stored above to
        // readers that observe is_seeded() == true
        self.seeded.store(true, Ordering::Release);
    }

    /// Drive seeding synchronously (deterministic tests).
    pub fn seed_blocking(self: &Arc<Self>) {
        Arc::clone(self).seed_loop();
    }

    // ---- compaction, GC, branches ----

    /// Run one compaction pass synchronously: merge every currently
    /// sealed L0 (clipped to its cap) into one sorted delta layer, and
    /// publish a new L1 image at the cutoff LSN materializing the prior
    /// image's pages ∪ every delta-touched page (the superset-image
    /// invariant the resolution planner relies on). Returns whether a
    /// pass ran. Consults the `ps.compact.merge` fault site.
    pub fn compact_blocking(&self) -> Result<bool> {
        if !self.is_seeded() {
            // Never fold an incompletely seeded base image into an L1:
            // the superset invariant would be silently violated.
            return Ok(false);
        }
        let _g = self.compact_lock.lock();
        if let Some(faults) = self.faults.get() {
            match faults.check(fault_sites::PS_COMPACT_MERGE) {
                Some(FaultOutcome::Err(e)) => return Err(e),
                Some(FaultOutcome::Drop) => return Ok(false),
                Some(FaultOutcome::Crash) => {
                    self.stop();
                    return Err(Error::Unavailable(
                        "fault: page server crashed mid-compaction".into(),
                    ));
                }
                None => {}
            }
        }
        let (input, prior) = self.layers.compaction_input();
        if input.is_empty() {
            return Ok(false);
        }
        // Compactions are trace roots of their own (like checkpoints):
        // not caused by any one commit, so they self-sample.
        let span = self.spans.get().and_then(|(ring, node)| {
            // soclint-allow: span-pairing a create/materialize/put error
            // abandons the compaction pass; its root span is deliberately
            // dropped with it.
            ring.try_sample().map(|ctx| (Arc::clone(ring), *node, ctx, ring.now_ns()))
        });
        let cutoff = input.iter().map(|(l, cap)| l.end().min(*cap)).max().unwrap_or(Lsn::ZERO);
        let mut pages: BTreeSet<PageId> = input.iter().flat_map(|(l, _)| l.pages()).collect();
        if let Some(img) = &prior {
            pages.extend(img.page_ids());
        }
        // ordering: relaxed — a device-name sequence, not a sync point
        let seq = self.l1_seq.fetch_add(1, Ordering::Relaxed);
        let (data, meta) = (self.layer_devices())(&format!("{}-l1-{seq}", self.name));
        let image = ImageLayer::create(cutoff, data, meta, self.spec.base_page, self.spec.span)?;
        for page_id in &pages {
            if let Some(p) = self.materialize(*page_id, cutoff, TraceCtx::NONE)? {
                image.put(&p)?;
            }
            self.cpu.charge_us(4);
        }
        let merged = DeltaLayer::merge(&input);
        self.layers.apply_compaction(&input, merged, image);
        self.metrics.compactions_run.incr();
        if let Some((ring, node, ctx, start)) = span {
            let dur = ring.now_ns().saturating_sub(start);
            ring.record_root(ctx, SpanKind::PsCompact, node, start, dur);
        }
        Ok(true)
    }

    /// Retention GC: compute the horizon (`applied - retention window`),
    /// pick the newest image at or below it as the floor, and drop every
    /// layer wholly below the floor. Returns the new floor when anything
    /// was retired. Consults the `ps.gc.drop` fault site.
    pub fn gc(&self) -> Result<Option<Lsn>> {
        if self.config.retention_window_bytes == u64::MAX {
            return Ok(None); // retention disabled: keep all history
        }
        if let Some(faults) = self.faults.get() {
            match faults.check(fault_sites::PS_GC_DROP) {
                Some(FaultOutcome::Err(e)) => return Err(e),
                Some(FaultOutcome::Drop) => return Ok(None),
                Some(FaultOutcome::Crash) => {
                    self.stop();
                    return Err(Error::Unavailable("fault: page server crashed during gc".into()));
                }
                None => {}
            }
        }
        let horizon = Lsn::new(
            self.applied.load().offset().saturating_sub(self.config.retention_window_bytes),
        );
        match self.layers.gc(horizon) {
            Some((dropped, floor)) => {
                self.metrics.gc_layers_dropped.add(dropped as u64);
                self.gc_floor.advance_to(floor);
                Ok(Some(floor))
            }
            None => Ok(None),
        }
    }

    /// Apply one divergent write to a branch (the branch's analogue of
    /// log apply — branches are not attached to the shared log).
    pub fn ingest(&self, page_id: PageId, op: &PageOp, lsn: Lsn) -> Result<()> {
        self.check_partition(page_id)?;
        if lsn <= self.applied.load() {
            return Err(Error::InvalidArgument(format!(
                "ingest at {lsn} does not advance the branch frontier {}",
                self.applied.load()
            )));
        }
        let mut bytes = Vec::new();
        op.encode(&mut bytes);
        self.apply_page_write(page_id, &bytes, lsn)?;
        self.applied.advance_to(lsn);
        self.metrics.records_applied.incr();
        self.note_applied(lsn);
        Ok(())
    }
}

impl Drop for PageServer {
    fn drop(&mut self) {
        // ordering: relaxed — poll flag; the joins below are the real sync point
        self.stop.store(true, Ordering::Relaxed);
        for handle in [&self.apply_handle, &self.ckpt_handle, &self.seed_handle] {
            if let Some(h) = handle.lock().take() {
                let _ = h.join();
            }
        }
    }
}

/// RBIO adapter: lets compute nodes reach the page server over the typed
/// protocol.
pub struct PageServerHandler {
    ps: Arc<PageServer>,
    faults: FaultRegistry,
}

impl PageServerHandler {
    /// Adapter with fault injection disabled.
    pub fn new(ps: Arc<PageServer>) -> PageServerHandler {
        PageServerHandler::with_faults(ps, FaultRegistry::disabled())
    }

    /// Adapter consulting the `pageserver.serve` site on every request.
    /// This is the one site with true crash semantics: a `Crash` action
    /// stops the page server's threads, so subsequent requests fail until
    /// the fabric restarts the partition.
    pub fn with_faults(ps: Arc<PageServer>, faults: FaultRegistry) -> PageServerHandler {
        PageServerHandler { ps, faults }
    }

    fn check_serve_fault(&self, req: &RbioRequest) -> Result<()> {
        let lsn = match req {
            RbioRequest::GetPage { min_lsn, .. } | RbioRequest::GetPageRange { min_lsn, .. } => {
                Some(*min_lsn)
            }
            _ => None,
        };
        match self.faults.check_at(fault_sites::PAGESERVER_SERVE, lsn) {
            Some(FaultOutcome::Err(e)) => Err(e),
            Some(FaultOutcome::Drop) => {
                Err(Error::Unavailable("fault: page server dropped the request".into()))
            }
            Some(FaultOutcome::Crash) => {
                self.ps.stop();
                Err(Error::Unavailable("fault: page server crashed".into()))
            }
            None => Ok(()),
        }
    }
}

impl RbioHandler for PageServerHandler {
    fn handle(&self, req: RbioRequest) -> Result<RbioResponse> {
        self.handle_ctx(req, TraceCtx::NONE)
    }

    fn handle_ctx(&self, req: RbioRequest, ctx: TraceCtx) -> Result<RbioResponse> {
        self.check_serve_fault(&req)?;
        // A sampled GetPage records a `ps.serve` child under the caller's
        // span; its XStore fallback (if any) nests a further child.
        let span =
            self.ps.span_sink(ctx).map(|(ring, node)| (Arc::clone(ring), *node, ring.now_ns()));
        let record_serve = |resp: &Result<RbioResponse>| {
            if let (Some((ring, node, start)), Ok(_)) = (&span, resp) {
                let dur = ring.now_ns().saturating_sub(*start);
                ring.record_child(ctx, SpanKind::PsServe, *node, *start, dur);
            }
        };
        match req {
            RbioRequest::GetPage { page_id, min_lsn } => {
                let t0 = std::time::Instant::now();
                let resp =
                    self.ps.get_page_ctx(page_id, min_lsn, ctx).map(|page| RbioResponse::Page {
                        bytes: page.to_io_bytes().to_vec(),
                        serve_us: (t0.elapsed().as_micros() as u64).max(1),
                    });
                record_serve(&resp);
                resp
            }
            RbioRequest::GetPageRange { first, count, min_lsn } => {
                let t0 = std::time::Instant::now();
                let resp = self.ps.get_page_range(first, count, min_lsn).map(|pages| {
                    RbioResponse::PageRange {
                        pages: pages.iter().map(|p| p.to_io_bytes().to_vec()).collect(),
                        serve_us: (t0.elapsed().as_micros() as u64).max(1),
                    }
                });
                record_serve(&resp);
                resp
            }
            RbioRequest::Ping => Ok(RbioResponse::Pong),
            RbioRequest::GetAppliedLsn => {
                Ok(RbioResponse::AppliedLsn { lsn: self.ps.applied_lsn() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socrates_common::TxnId;
    use socrates_storage::page::PageType;
    use socrates_storage::slotted::Slotted;
    use socrates_storage::MemFcb;
    use socrates_wal::block::BlockBuilder;
    use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
    use socrates_wal::record::LogRecord;
    use socrates_xlog::service::XLogConfig;
    use socrates_xstore::XStoreConfig;

    struct Fixture {
        lz: Arc<LandingZone>,
        xlog: Arc<XLogService>,
        xstore: Arc<XStore>,
        next_lsn: Lsn,
    }

    impl Fixture {
        fn new() -> Fixture {
            let lz = Arc::new(LandingZone::new(
                vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
                LandingZoneConfig { capacity: 8 << 20, write_quorum: 1 },
            ));
            let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
            let xlog = XLogService::new(
                Arc::clone(&lz) as Arc<dyn socrates_wal::LogStore>,
                Arc::new(MemFcb::new("xlog-ssd")) as Arc<dyn Fcb>,
                Arc::clone(&xstore),
                XLogConfig::default(),
                Lsn::ZERO,
                "xlog/lt",
            )
            .unwrap();
            Fixture { lz, xlog, xstore, next_lsn: Lsn::ZERO }
        }

        fn server(&self, name: &str, spec: PartitionSpec) -> Arc<PageServer> {
            PageServer::create(
                name,
                spec,
                PageServerConfig::default(),
                Arc::new(MemFcb::new(format!("{name}-ssd"))) as Arc<dyn Fcb>,
                Arc::new(MemFcb::new(format!("{name}-meta"))) as Arc<dyn Fcb>,
                Arc::clone(&self.xstore),
                Arc::clone(&self.xlog),
                Arc::new(CpuAccountant::new()),
                Lsn::ZERO,
            )
            .unwrap()
        }

        /// Emit one log block of page ops and release it through XLOG.
        fn emit(&mut self, ops: &[(u64, PageOp)]) -> Lsn {
            let mut b = BlockBuilder::new(self.next_lsn, 1 << 16);
            for (page, op) in ops {
                let mut bytes = Vec::new();
                op.encode(&mut bytes);
                b.append(
                    &LogRecord {
                        txn: TxnId::new(1),
                        payload: LogPayload::PageWrite { page_id: PageId::new(*page), op: bytes },
                    },
                    Some(PartitionId::new((*page / 100) as u32)),
                );
            }
            let block = b.seal();
            self.lz.write_block(&block).unwrap();
            self.xlog.offer_block(block.clone());
            self.xlog.report_hardened(block.end_lsn());
            self.next_lsn = block.end_lsn();
            self.next_lsn
        }
    }

    fn spec(id: u32) -> PartitionSpec {
        PartitionSpec { id: PartitionId::new(id), base_page: id as u64 * 100, span: 100 }
    }

    fn insert_op(bytes: &[u8]) -> PageOp {
        PageOp::Insert { idx: 0, bytes: bytes.to_vec() }
    }

    #[test]
    fn applies_only_its_partition() {
        let mut f = Fixture::new();
        let ps0 = f.server("ps0", spec(0));
        let ps1 = f.server("ps1", spec(1));
        let end = f.emit(&[
            (5, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (105, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (5, insert_op(b"zero")),
            (105, insert_op(b"one")),
        ]);
        ps0.apply_once().unwrap();
        ps1.apply_once().unwrap();
        assert_eq!(ps0.applied_lsn(), end);
        assert_eq!(ps1.applied_lsn(), end);
        let p5 = ps0.get_page(PageId::new(5), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&p5, 0).unwrap(), b"zero");
        let p105 = ps1.get_page(PageId::new(105), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&p105, 0).unwrap(), b"one");
        // Wrong-partition requests are rejected.
        assert!(ps0.get_page(PageId::new(105), Lsn::ZERO).is_err());
        assert_eq!(ps0.metrics().records_applied.get(), 2);
    }

    #[test]
    fn get_page_at_lsn_waits_for_apply() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let end1 = f.emit(&[(7, PageOp::Format { ptype: PageType::BTreeLeaf })]);
        ps.apply_once().unwrap();
        // Emit a second block but don't apply yet.
        let end2 = f.emit(&[(7, insert_op(b"fresh"))]);
        assert!(end2 > end1);
        // A request at end2 must block until apply catches up; drive apply
        // from another thread after a delay.
        let ps2 = Arc::clone(&ps);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            ps2.apply_once().unwrap();
        });
        let page = ps.get_page(PageId::new(7), end2).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"fresh");
        assert_eq!(ps.metrics().get_page_waits.get(), 1);
        t.join().unwrap();
    }

    #[test]
    fn get_page_timeout_when_log_never_arrives() {
        let f = Fixture::new();
        let ps = PageServer::create(
            "ps0",
            spec(0),
            PageServerConfig { get_page_timeout: Duration::from_millis(50), ..Default::default() },
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
            Lsn::ZERO,
        )
        .unwrap();
        let err = ps.get_page(PageId::new(1), Lsn::new(1_000_000)).unwrap_err();
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn checkpoint_ships_pages_and_survives_replacement() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let end = f.emit(&[
            (3, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (3, insert_op(b"durable")),
            (4, PageOp::Format { ptype: PageType::VersionStore }),
        ]);
        ps.apply_once().unwrap();
        let ck = ps.checkpoint().unwrap();
        assert_eq!(ck, end);
        assert_eq!(ps.checkpointed_lsn(), end);
        assert_eq!(ps.metrics().pages_checkpointed.get(), 2);
        let (data_blob, meta_blob) = ps.blobs();
        drop(ps); // the page server dies

        // A replacement attaches to the same blobs and serves immediately.
        let ps2 = PageServer::attach(
            "ps0b",
            spec(0),
            PageServerConfig::default(),
            Arc::new(MemFcb::new("ssd2")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta2")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            data_blob,
            meta_blob,
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
        )
        .unwrap();
        assert_eq!(ps2.applied_lsn(), end, "cursor resumes from checkpoint meta");
        assert!(!ps2.is_seeded());
        let page = ps2.get_page(PageId::new(3), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"durable");
        assert!(ps2.metrics().xstore_fallback_reads.get() >= 1);
        // Blocking seed completes and future reads come from RBPEX.
        ps2.seed_blocking();
        assert!(ps2.is_seeded());
        let before = ps2.metrics().xstore_fallback_reads.get();
        ps2.get_page(PageId::new(4), Lsn::ZERO).unwrap();
        assert_eq!(ps2.metrics().xstore_fallback_reads.get(), before);
    }

    #[test]
    fn xstore_outage_insulation() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        f.emit(&[(1, PageOp::Format { ptype: PageType::BTreeLeaf })]);
        ps.apply_once().unwrap();
        f.xstore.set_available(false);
        // Applying continues during the outage.
        let end = f.emit(&[(1, insert_op(b"during-outage"))]);
        ps.apply_once().unwrap();
        assert_eq!(ps.applied_lsn(), end);
        // Serving continues from RBPEX.
        let page = ps.get_page(PageId::new(1), end).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"during-outage");
        // Checkpoint defers.
        assert!(ps.checkpoint().unwrap_err().is_transient());
        assert_eq!(ps.metrics().checkpoints_deferred.get(), 1);
        // Recovery: checkpoint catches up.
        f.xstore.set_available(true);
        let ck = ps.checkpoint().unwrap();
        assert_eq!(ck, end);
        assert_eq!(ps.metrics().pages_checkpointed.get(), 1);
    }

    #[test]
    fn backup_is_a_snapshot_and_restores() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        f.emit(&[(2, PageOp::Format { ptype: PageType::BTreeLeaf }), (2, insert_op(b"backed-up"))]);
        ps.apply_once().unwrap();
        let (snap, lsn) = ps.backup().unwrap();
        assert_eq!(lsn, ps.applied_lsn());
        // Mutate after the backup.
        f.emit(&[(2, insert_op(b"after-backup"))]);
        ps.apply_once().unwrap();
        ps.checkpoint().unwrap();
        // Restore the snapshot into a new blob + new page server.
        let restored = f.xstore.restore_snapshot(snap, "data/restored").unwrap();
        let meta2 = f.xstore.create_blob("data/restored.meta").unwrap();
        f.xstore.write_at(meta2, 0, &lsn.offset().to_le_bytes()).unwrap();
        let ps2 = PageServer::attach(
            "restored",
            spec(0),
            PageServerConfig::default(),
            Arc::new(MemFcb::new("ssd-r")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta-r")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            restored,
            meta2,
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
        )
        .unwrap();
        let page = ps2.get_page(PageId::new(2), Lsn::ZERO).unwrap();
        // Only the pre-backup record is present.
        assert_eq!(Slotted::slot_count(&page), 1);
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"backed-up");
        // The restored server can catch up from the log to the present.
        ps2.apply_once().unwrap();
        let page = ps2.get_page(PageId::new(2), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::slot_count(&page), 2);
    }

    #[test]
    fn range_read_is_served_from_covering_cache() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let mut ops = Vec::new();
        for p in 10..20u64 {
            ops.push((p, PageOp::Format { ptype: PageType::BTreeLeaf }));
        }
        f.emit(&ops);
        ps.apply_once().unwrap();
        let pages = ps.get_page_range(PageId::new(10), 10, Lsn::ZERO).unwrap();
        assert_eq!(pages.len(), 10);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.page_id(), PageId::new(10 + i as u64));
        }
        // Out-of-partition ranges rejected.
        assert!(ps.get_page_range(PageId::new(95), 10, Lsn::ZERO).is_err());
    }

    #[test]
    fn ctx_carrying_blocks_record_apply_and_serve_spans() {
        let f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let ring = Arc::new(SpanRing::new(32, 1));
        let node = NodeId::page_server(0);
        ps.set_span_ring(Arc::clone(&ring), node);
        let root = ring.try_sample().expect("1-in-1 sampling");
        // Emit a block carrying the sampled ctx.
        let mut b = BlockBuilder::new(f.next_lsn, 1 << 16);
        let mut bytes = Vec::new();
        PageOp::Format { ptype: PageType::BTreeLeaf }.encode(&mut bytes);
        b.append(
            &LogRecord {
                txn: TxnId::new(1),
                payload: LogPayload::PageWrite { page_id: PageId::new(5), op: bytes },
            },
            Some(PartitionId::new(0)),
        );
        b.set_ctx(root);
        let block = b.seal();
        f.lz.write_block(&block).unwrap();
        f.xlog.offer_block(block.clone());
        f.xlog.report_hardened(block.end_lsn());
        ps.apply_once().unwrap();
        let spans = ring.spans();
        assert_eq!(spans.len(), 1, "apply must record one ps.apply span");
        assert_eq!(spans[0].kind, SpanKind::PsApply);
        assert_eq!(spans[0].trace_id, root.trace_id);
        assert_eq!(spans[0].parent_id, root.span_id);
        // Serving with a ctx records ps.serve under the caller's span.
        let handler = PageServerHandler::new(Arc::clone(&ps));
        let serve_ctx = ring.try_sample().expect("sampled");
        handler
            .handle_ctx(
                RbioRequest::GetPage { page_id: PageId::new(5), min_lsn: Lsn::ZERO },
                serve_ctx,
            )
            .unwrap();
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].kind, SpanKind::PsServe);
        assert_eq!(spans[1].parent_id, serve_ctx.span_id);
        // An unsampled request records nothing.
        handler
            .handle_ctx(
                RbioRequest::GetPage { page_id: PageId::new(5), min_lsn: Lsn::ZERO },
                TraceCtx::NONE,
            )
            .unwrap();
        assert_eq!(ring.spans().len(), 2);
    }

    /// A config that seals the open layer after every few small ops.
    fn tiny_layer_config() -> PageServerConfig {
        PageServerConfig { layer_seal_bytes: 64, layer_compact_threshold: 2, ..Default::default() }
    }

    fn layered_server(f: &Fixture, name: &str, spec: PartitionSpec) -> Arc<PageServer> {
        PageServer::create(
            name,
            spec,
            tiny_layer_config(),
            Arc::new(MemFcb::new(format!("{name}-ssd"))) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new(format!("{name}-meta"))) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
            Lsn::ZERO,
        )
        .unwrap()
    }

    #[test]
    fn get_page_at_returns_each_retained_version() {
        let mut f = Fixture::new();
        let ps = layered_server(&f, "ps0", spec(0));
        // Version 0: format. Versions 1..=5: one insert each.
        let mut frontiers = vec![f.emit(&[(9, PageOp::Format { ptype: PageType::BTreeLeaf })])];
        for i in 1..=5u8 {
            frontiers.push(f.emit(&[(9, insert_op(&[i; 8]))]));
        }
        ps.apply_once().unwrap();
        assert!(
            ps.metrics().layers_sealed.get() >= 1,
            "tiny seal threshold must have produced L0s"
        );
        // Compact mid-history so resolution exercises image + replay.
        assert!(ps.compact_blocking().unwrap());
        for (i, at) in frontiers.iter().enumerate() {
            let p = ps.get_page_at(PageId::new(9), *at).unwrap();
            assert_eq!(Slotted::slot_count(&p), i, "version at frontier {i}");
        }
        // An LSN *between* two versions resolves to the older one.
        let mid = Lsn::new(frontiers[2].offset() + 1);
        assert!(mid < frontiers[3]);
        let p = ps.get_page_at(PageId::new(9), mid).unwrap();
        assert_eq!(Slotted::slot_count(&p), 2);
        // Reading a page before it existed is a clean NotFound.
        assert_eq!(ps.get_page_at(PageId::new(10), frontiers[5]).unwrap_err().kind(), "not_found");
        assert_eq!(ps.metrics().historical_reads.get(), 8);
    }

    #[test]
    fn compaction_preserves_latest_and_history() {
        let mut f = Fixture::new();
        let ps = layered_server(&f, "ps0", spec(0));
        let mut ops = vec![(11u64, PageOp::Format { ptype: PageType::BTreeLeaf })];
        for i in 0..20u8 {
            ops.push((11, insert_op(&[i; 16])));
        }
        let v1 = f.emit(&ops);
        ps.apply_once().unwrap();
        let before = ps.layer_counts();
        assert!(before.l0 >= 2, "several sealed L0s expected, got {before:?}");
        assert!(ps.compact_blocking().unwrap());
        let after = ps.layer_counts();
        assert_eq!(after.l0, 0, "compaction consumes every sealed L0");
        assert_eq!(after.images, before.images + 1);
        assert_eq!(after.merged, 1);
        // Latest read is image-backed now (mem may have been evicted).
        let p = ps.get_page(PageId::new(11), v1).unwrap();
        assert_eq!(Slotted::slot_count(&p), 20);
        // History below the new image still resolves through the merged
        // delta layer.
        let hist = ps.get_page_at(PageId::new(11), Lsn::new(v1.offset() / 2)).unwrap();
        assert!(Slotted::slot_count(&hist) < 20);
        // A second pass with no new L0s is a no-op.
        assert!(!ps.compact_blocking().unwrap());
    }

    #[test]
    fn gc_retires_history_and_floors_reads() {
        let mut f = Fixture::new();
        let ps = PageServer::create(
            "ps0",
            spec(0),
            PageServerConfig {
                layer_seal_bytes: 64,
                layer_compact_threshold: 2,
                retention_window_bytes: 1, // nearly everything is past retention
                ..Default::default()
            },
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
            Lsn::ZERO,
        )
        .unwrap();
        let early = f.emit(&[(5, PageOp::Format { ptype: PageType::BTreeLeaf })]);
        let mut ops = Vec::new();
        for i in 0..20u8 {
            ops.push((5u64, insert_op(&[i; 16])));
        }
        let v = f.emit(&ops);
        ps.apply_once().unwrap();
        assert!(ps.compact_blocking().unwrap());
        let floor = ps.gc().unwrap().expect("an image below the horizon exists");
        assert!(floor > Lsn::ZERO);
        assert_eq!(ps.gc_floor_lsn(), floor);
        assert!(ps.metrics().gc_layers_dropped.get() >= 1);
        // Below the floor: clean error, not a wrong page.
        let err = ps.get_page_at(PageId::new(5), early).unwrap_err();
        assert_eq!(err.kind(), "invalid_argument");
        // At and above the floor: still correct.
        let p = ps.get_page_at(PageId::new(5), v).unwrap();
        assert_eq!(Slotted::slot_count(&p), 20);
    }

    #[test]
    fn branch_shares_layers_zero_copy_and_diverges() {
        let mut f = Fixture::new();
        let parent = layered_server(&f, "ps0", spec(0));
        let mut ops = vec![(7u64, PageOp::Format { ptype: PageType::BTreeLeaf })];
        for i in 0..10u8 {
            ops.push((7, insert_op(&[i; 16])));
        }
        let branch_point = f.emit(&ops);
        parent.apply_once().unwrap();
        let child = PageServer::branch_from(
            &parent,
            "branch0",
            branch_point,
            Arc::new(CpuAccountant::new()),
        )
        .unwrap();
        // Zero-copy: every child delta layer is the parent's allocation.
        let parent_layers = parent.layers().delta_layers();
        let child_layers = child.layers().delta_layers();
        assert!(!child_layers.is_empty());
        for cl in &child_layers {
            assert!(
                parent_layers.iter().any(|pl| Arc::ptr_eq(pl, cl)),
                "child delta layer not shared with parent"
            );
        }
        for ci in &child.layers().image_layers() {
            assert!(parent.layers().image_layers().iter().any(|pi| Arc::ptr_eq(pi, ci)));
        }
        // Pre-branch history serves identically from both.
        let from_parent = parent.get_page_at(PageId::new(7), branch_point).unwrap();
        let from_child = child.get_page_at(PageId::new(7), branch_point).unwrap();
        assert_eq!(from_parent.body(), from_child.body());
        // Parent moves on; the child does not see post-branch writes.
        let parent_v2 = f.emit(&[(7, insert_op(b"parent-only"))]);
        parent.apply_once().unwrap();
        assert_eq!(Slotted::slot_count(&parent.get_page(PageId::new(7), parent_v2).unwrap()), 11);
        assert_eq!(
            Slotted::slot_count(&child.get_page(PageId::new(7), Lsn::ZERO).unwrap()),
            10,
            "branch is isolated from parent's divergent future"
        );
        // The child diverges via ingest; the parent does not see it.
        let child_lsn = Lsn::new(branch_point.offset() + 1000);
        child
            .ingest(PageId::new(8), &PageOp::Format { ptype: PageType::BTreeLeaf }, child_lsn)
            .unwrap();
        child
            .ingest(PageId::new(8), &insert_op(b"child-only"), Lsn::new(child_lsn.offset() + 1))
            .unwrap();
        let p8 = child.get_page(PageId::new(8), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&p8, 0).unwrap(), b"child-only");
        assert_eq!(parent.get_page(PageId::new(8), Lsn::ZERO).unwrap_err().kind(), "not_found");
        // Child compaction stays private: parent layer set is unchanged.
        let parent_counts = parent.layer_counts();
        child.compact_blocking().unwrap();
        assert_eq!(parent.layer_counts(), parent_counts);
        // Stale ingest LSNs are rejected.
        assert!(child.ingest(PageId::new(8), &insert_op(b"x"), child_lsn).is_err());
    }

    #[test]
    fn compact_and_gc_fault_sites_fire() {
        use socrates_common::fault::sites;
        let mut f = Fixture::new();
        let ps = layered_server(&f, "ps0", spec(0));
        let faults = FaultRegistry::new(7);
        faults
            .install_spec(&format!("{}@always=error:unavailable", sites::PS_COMPACT_MERGE))
            .unwrap();
        faults.install_spec(&format!("{}@always=error:unavailable", sites::PS_GC_DROP)).unwrap();
        ps.set_faults(faults.clone());
        let mut ops = vec![(3u64, PageOp::Format { ptype: PageType::BTreeLeaf })];
        for i in 0..10u8 {
            ops.push((3, insert_op(&[i; 16])));
        }
        f.emit(&ops);
        ps.apply_once().unwrap();
        assert!(ps.compact_blocking().unwrap_err().is_transient());
        assert_eq!(faults.fired_count(sites::PS_COMPACT_MERGE), 1);
        assert_eq!(ps.metrics().compactions_run.get(), 0);
        // GC checks its own site (force a finite window so it gets there).
        let ps2 = PageServer::create(
            "ps2",
            spec(1),
            PageServerConfig { retention_window_bytes: 1, ..tiny_layer_config() },
            Arc::new(MemFcb::new("ssd2")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta2")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
            Lsn::ZERO,
        )
        .unwrap();
        ps2.set_faults(faults.clone());
        assert!(ps2.gc().unwrap_err().is_transient());
        assert_eq!(faults.fired_count(sites::PS_GC_DROP), 1);
    }

    #[test]
    fn background_apply_thread() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        ps.start();
        let end =
            f.emit(&[(8, PageOp::Format { ptype: PageType::BTreeLeaf }), (8, insert_op(b"bg"))]);
        let deadline = Instant::now() + Duration::from_secs(5);
        while ps.applied_lsn() < end {
            assert!(Instant::now() < deadline, "apply thread never caught up");
            std::thread::sleep(Duration::from_millis(1));
        }
        let page = ps.get_page(PageId::new(8), end).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"bg");
        ps.stop();
    }
}

//! Page servers — the Socrates storage tier (paper §4.6).
//!
//! Each page server owns one partition of the database page space and
//! does three jobs:
//!
//! 1. **Apply log.** It pulls only the log blocks relevant to its
//!    partition from XLOG (using the blocks' out-of-band partition
//!    annotations) and replays them into its covering RBPEX cache.
//! 2. **Serve GetPage@LSN.** A request `getPage(X, X-LSN)` waits until the
//!    server's applied LSN reaches `X-LSN`, then returns the page — the
//!    freshness contract the compute tier's evicted-LSN map relies on.
//!    Multi-page range reads are served from the stride-preserving covering
//!    cache in one device I/O.
//! 3. **Checkpoint & back up.** It regularly ships modified pages to its
//!    XStore data blob, records the checkpointed LSN, and takes backups as
//!    constant-time XStore snapshots. During an XStore outage it keeps
//!    serving and applying from RBPEX, remembers what could not be
//!    checkpointed, and catches up when the service returns (insulation).
//!
//! Page servers are *stateless* in the durability sense: the truth is
//! XStore + the log, so a lost page server is recreated by attaching the
//! blob and replaying from the recorded checkpoint LSN — and a brand-new
//! replica is **seeded asynchronously** while it is already serving
//! requests (misses fall through to XStore until seeding completes).

use parking_lot::{Condvar, Mutex};
use socrates_common::fault::{sites as fault_sites, FaultOutcome, FaultRegistry};
use socrates_common::lsn::AtomicLsn;
use socrates_common::metrics::{Counter, CpuAccountant};
use socrates_common::obs::{SpanKind, SpanRing, TraceCtx};
use socrates_common::{BlobId, Error, Lsn, NodeId, PageId, PartitionId, Result};
use socrates_rbio::proto::{RbioRequest, RbioResponse};
use socrates_rbio::transport::RbioHandler;
use socrates_storage::fcb::Fcb;
use socrates_storage::page::{Page, PAGE_SIZE};
use socrates_storage::pageops::{apply_page_op, PageOp};
use socrates_storage::rbpex::{Rbpex, RbpexPolicy};
use socrates_wal::record::LogPayload;
use socrates_xlog::XLogService;
use socrates_xstore::{SnapshotId, XStore};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pages held in the apply buffer before spilling to RBPEX.
const MEM_TIER_PAGES: usize = 256;

/// Static description of a partition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PartitionSpec {
    /// The partition id.
    pub id: PartitionId,
    /// First page id owned by this partition.
    pub base_page: u64,
    /// Number of page ids owned.
    pub span: u64,
}

impl PartitionSpec {
    /// Whether `page` belongs to this partition.
    pub fn contains(&self, page: PageId) -> bool {
        page.raw() >= self.base_page && page.raw() < self.base_page + self.span
    }
}

/// Tuning knobs.
#[derive(Clone, Debug)]
pub struct PageServerConfig {
    /// Max bytes pulled from XLOG per apply batch.
    pub pull_batch_bytes: usize,
    /// Checkpoint when this many pages are dirty.
    pub checkpoint_dirty_pages: usize,
    /// Apply-loop idle sleep.
    pub idle_sleep: Duration,
    /// GetPage@LSN wait deadline.
    pub get_page_timeout: Duration,
}

impl Default for PageServerConfig {
    fn default() -> Self {
        PageServerConfig {
            pull_batch_bytes: 1 << 20,
            checkpoint_dirty_pages: 256,
            idle_sleep: Duration::from_micros(500),
            get_page_timeout: Duration::from_secs(10),
        }
    }
}

/// Counters.
#[derive(Debug, Default)]
pub struct PageServerMetrics {
    /// Log records applied.
    pub records_applied: Counter,
    /// GetPage requests served.
    pub pages_served: Counter,
    /// GetPage requests that had to wait for log apply.
    pub get_page_waits: Counter,
    /// Pages shipped to XStore by checkpoints.
    pub pages_checkpointed: Counter,
    /// Checkpoint attempts deferred by an XStore outage.
    pub checkpoints_deferred: Counter,
    /// Pages restored from XStore on a cache miss (seeding fallback).
    pub xstore_fallback_reads: Counter,
    /// GetPageRange requests served.
    pub range_requests: Counter,
    /// Pages served through GetPageRange (vs. one-page GetPage).
    pub range_pages_served: Counter,
}

/// Apply-progress callback: invoked with the new applied LSN after every
/// advance, so a fabric can wake compute-side freshness waiters without
/// polling.
pub type ApplyListener = Arc<dyn Fn(Lsn) + Send + Sync>;

/// One page server.
pub struct PageServer {
    name: String,
    spec: PartitionSpec,
    config: PageServerConfig,
    /// Hot apply buffer: the most recently applied pages live in memory
    /// and spill to RBPEX in batches ("Page Servers keep all their data in
    /// main memory or locally attached SSDs", §4.2). Without it every log
    /// record would pay a full SSD write.
    mem: Mutex<HashMap<PageId, Page>>,
    rbpex: Rbpex,
    xstore: Arc<XStore>,
    data_blob: BlobId,
    meta_blob: BlobId,
    xlog: Arc<XLogService>,
    applied: AtomicLsn,
    /// LSN up to which everything is durably checkpointed in XStore.
    checkpointed: AtomicLsn,
    dirty: Mutex<HashSet<PageId>>,
    checkpoint_lock: Mutex<()>,
    cpu: Arc<CpuAccountant>,
    metrics: PageServerMetrics,
    /// Condvar protocol for GetPage@LSN freshness waits: `wait_applied`
    /// sleeps here and every apply advance notifies, replacing the old
    /// 100 µs busy-poll.
    apply_mutex: Mutex<()>,
    apply_cv: Condvar,
    apply_listener: Mutex<Option<ApplyListener>>,
    stop: AtomicBool,
    seeded: AtomicBool,
    apply_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    ckpt_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    seed_handle: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Causal span sink + this server's node identity. Set once at fabric
    /// wiring time; a lock-free `OnceLock` read on the hot paths (one
    /// atomic load when tracing is wired, and the recording sites only
    /// dereference it for ctx-carrying work).
    spans: std::sync::OnceLock<(Arc<SpanRing>, NodeId)>,
}

impl PageServer {
    /// Create a page server for a brand-new partition: fresh covering
    /// cache, fresh XStore blobs, apply cursor at `start_lsn`.
    #[allow(clippy::too_many_arguments)] // a constructor: every dependency is explicit
    pub fn create(
        name: &str,
        spec: PartitionSpec,
        config: PageServerConfig,
        ssd: Arc<dyn Fcb>,
        ssd_meta: Arc<dyn Fcb>,
        xstore: Arc<XStore>,
        xlog: Arc<XLogService>,
        cpu: Arc<CpuAccountant>,
        start_lsn: Lsn,
    ) -> Result<Arc<PageServer>> {
        let rbpex = Rbpex::create(
            ssd,
            ssd_meta,
            RbpexPolicy::Covering { base: spec.base_page, span: spec.span },
        )?;
        let data_blob = xstore.create_blob(&format!("data/{name}"))?;
        let meta_blob = xstore.create_blob(&format!("data/{name}.meta"))?;
        xstore.write_at(meta_blob, 0, &start_lsn.offset().to_le_bytes())?;
        Ok(Arc::new(PageServer {
            name: name.to_string(),
            spec,
            config,
            mem: Mutex::with_rank(HashMap::new(), socrates_common::lock_rank::PS_MEM, "ps.mem"),
            rbpex,
            xstore,
            data_blob,
            meta_blob,
            xlog,
            applied: AtomicLsn::new(start_lsn),
            checkpointed: AtomicLsn::new(start_lsn),
            dirty: Mutex::with_rank(
                HashSet::new(),
                socrates_common::lock_rank::PS_DIRTY,
                "ps.dirty",
            ),
            checkpoint_lock: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_CHECKPOINT,
                "ps.checkpoint_lock",
            ),
            cpu,
            metrics: PageServerMetrics::default(),
            apply_mutex: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_APPLY,
                "ps.apply_mutex",
            ),
            apply_cv: Condvar::new(),
            apply_listener: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_LISTENER,
                "ps.apply_listener",
            ),
            stop: AtomicBool::new(false),
            seeded: AtomicBool::new(true),
            apply_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_HANDLE,
                "ps.apply_handle",
            ),
            ckpt_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_CKPT_HANDLE,
                "ps.ckpt_handle",
            ),
            seed_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_SEED_HANDLE,
                "ps.seed_handle",
            ),
            spans: std::sync::OnceLock::new(),
        }))
    }

    /// Attach to an *existing* partition blob (replacement after a page
    /// server loss, a replica, or a PITR restore target). The local cache
    /// starts empty and is seeded asynchronously; the apply cursor resumes
    /// from the blob's recorded checkpoint LSN.
    #[allow(clippy::too_many_arguments)] // a constructor: every dependency is explicit
    pub fn attach(
        name: &str,
        spec: PartitionSpec,
        config: PageServerConfig,
        ssd: Arc<dyn Fcb>,
        ssd_meta: Arc<dyn Fcb>,
        xstore: Arc<XStore>,
        data_blob: BlobId,
        meta_blob: BlobId,
        xlog: Arc<XLogService>,
        cpu: Arc<CpuAccountant>,
    ) -> Result<Arc<PageServer>> {
        let rbpex = Rbpex::create(
            ssd,
            ssd_meta,
            RbpexPolicy::Covering { base: spec.base_page, span: spec.span },
        )?;
        let meta = xstore.read_at(meta_blob, 0, 8)?;
        let start_lsn = Lsn::new(u64::from_le_bytes(meta[0..8].try_into().unwrap()));
        Ok(Arc::new(PageServer {
            name: name.to_string(),
            spec,
            config,
            mem: Mutex::with_rank(HashMap::new(), socrates_common::lock_rank::PS_MEM, "ps.mem"),
            rbpex,
            xstore,
            data_blob,
            meta_blob,
            xlog,
            applied: AtomicLsn::new(start_lsn),
            checkpointed: AtomicLsn::new(start_lsn),
            dirty: Mutex::with_rank(
                HashSet::new(),
                socrates_common::lock_rank::PS_DIRTY,
                "ps.dirty",
            ),
            checkpoint_lock: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_CHECKPOINT,
                "ps.checkpoint_lock",
            ),
            cpu,
            metrics: PageServerMetrics::default(),
            apply_mutex: Mutex::with_rank(
                (),
                socrates_common::lock_rank::PS_APPLY,
                "ps.apply_mutex",
            ),
            apply_cv: Condvar::new(),
            apply_listener: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_LISTENER,
                "ps.apply_listener",
            ),
            stop: AtomicBool::new(false),
            seeded: AtomicBool::new(false),
            apply_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_APPLY_HANDLE,
                "ps.apply_handle",
            ),
            ckpt_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_CKPT_HANDLE,
                "ps.ckpt_handle",
            ),
            seed_handle: Mutex::with_rank(
                None,
                socrates_common::lock_rank::PS_SEED_HANDLE,
                "ps.seed_handle",
            ),
            spans: std::sync::OnceLock::new(),
        }))
    }

    /// The server's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The partition this server owns.
    pub fn spec(&self) -> PartitionSpec {
        self.spec
    }

    /// Counters.
    pub fn metrics(&self) -> &PageServerMetrics {
        &self.metrics
    }

    /// Register this server's counters and LSN watermarks into the hub
    /// under `node`. The apply lag is derived against XLOG's released
    /// frontier — the log this server *could* have applied by now.
    pub fn register_metrics(
        self: &Arc<Self>,
        hub: &socrates_common::obs::MetricsHub,
        node: socrates_common::NodeId,
    ) {
        macro_rules! counter {
            ($name:literal, $field:ident) => {{
                let ps = Arc::clone(self);
                hub.register_counter_fn(node, $name, move || ps.metrics.$field.get());
            }};
        }
        counter!("records_applied", records_applied);
        counter!("pages_served", pages_served);
        counter!("get_page_waits", get_page_waits);
        counter!("pages_checkpointed", pages_checkpointed);
        counter!("checkpoints_deferred", checkpoints_deferred);
        counter!("xstore_fallback_reads", xstore_fallback_reads);
        counter!("range_requests", range_requests);
        counter!("range_pages_served", range_pages_served);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "applied_lsn", move || ps.applied.load().offset() as i64);
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "checkpointed_lsn", move || {
            ps.checkpointed.load().offset() as i64
        });
        let ps = Arc::clone(self);
        hub.register_gauge_fn(node, "apply_lag_bytes", move || {
            (ps.xlog.released_lsn().offset() as i64 - ps.applied.load().offset() as i64).max(0)
        });
    }

    /// Attach the causal span sink; spans are attributed to `node` (this
    /// server's fabric identity). First call wins — re-wiring a running
    /// server would tear spans across rings.
    pub fn set_span_ring(&self, ring: Arc<SpanRing>, node: NodeId) {
        let _ = self.spans.set((ring, node));
    }

    /// The span sink for ctx-carrying work, or `None` when tracing is
    /// unwired or `ctx` is unsampled.
    fn span_sink(&self, ctx: TraceCtx) -> Option<&(Arc<SpanRing>, NodeId)> {
        if !ctx.sampled() {
            return None;
        }
        self.spans.get()
    }

    /// The log-apply watermark.
    pub fn applied_lsn(&self) -> Lsn {
        self.applied.load()
    }

    /// Install a callback fired after every apply advance (at most one;
    /// replaces any previous listener). The fabric uses this to wake its
    /// own `wait_applied` sleepers.
    pub fn set_apply_listener(&self, listener: ApplyListener) {
        *self.apply_listener.lock() = Some(listener);
    }

    /// Record that `applied` advanced to `lsn`: wake freshness waiters and
    /// fire the listener. Taking `apply_mutex` around the notify closes the
    /// check-then-sleep race with `wait_applied`.
    fn note_applied(&self, lsn: Lsn) {
        {
            let _g = self.apply_mutex.lock();
            self.apply_cv.notify_all();
        }
        let listener = self.apply_listener.lock().clone();
        if let Some(l) = listener {
            l(lsn);
        }
    }

    /// Everything at or below this LSN is durable in XStore.
    pub fn checkpointed_lsn(&self) -> Lsn {
        self.checkpointed.load()
    }

    /// Whether asynchronous seeding has completed.
    pub fn is_seeded(&self) -> bool {
        // ordering: acquire — pairs with the release store in seed_loop so a
        // true result also publishes the seeded pages
        self.seeded.load(Ordering::Acquire)
    }

    /// The XStore blobs backing this partition (restore workflows).
    pub fn blobs(&self) -> (BlobId, BlobId) {
        (self.data_blob, self.meta_blob)
    }

    /// Start the background apply loop (and the seeding thread for
    /// attached servers).
    pub fn start(self: &Arc<Self>) {
        if !self.is_seeded() {
            let me = Arc::clone(self);
            *self.seed_handle.lock() = Some(
                std::thread::Builder::new()
                    .name(format!("{}-seed", self.name))
                    .spawn(move || me.seed_loop())
                    .expect("spawn seeder"),
            );
        }
        let me = Arc::clone(self);
        *self.apply_handle.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-apply", self.name))
                .spawn(move || me.apply_loop())
                .expect("spawn apply loop"),
        );
        let me = Arc::clone(self);
        *self.ckpt_handle.lock() = Some(
            std::thread::Builder::new()
                .name(format!("{}-ckpt", self.name))
                .spawn(move || me.checkpoint_loop())
                .expect("spawn checkpoint loop"),
        );
    }

    /// Stop background threads and join them.
    pub fn stop(&self) {
        // ordering: relaxed — poll flag; the joins below are the real sync point
        self.stop.store(true, Ordering::Relaxed);
        for handle in [&self.apply_handle, &self.ckpt_handle, &self.seed_handle] {
            if let Some(h) = handle.lock().take() {
                let _ = h.join();
            }
        }
    }

    // ---- log apply ----

    fn apply_loop(self: Arc<Self>) {
        // ordering: relaxed — shutdown poll; a late observation costs one iteration
        while !self.stop.load(Ordering::Relaxed) {
            match self.apply_once() {
                Ok(0) => std::thread::sleep(self.config.idle_sleep),
                Ok(_) => {}
                Err(_) => std::thread::sleep(self.config.idle_sleep.max(Duration::from_millis(2))),
            }
        }
    }

    /// The background checkpointer: runs on its own thread so slow XStore
    /// writes never stall log apply (which would stall GetPage@LSN).
    fn checkpoint_loop(self: Arc<Self>) {
        // ordering: relaxed — shutdown poll; a late observation costs one iteration
        while !self.stop.load(Ordering::Relaxed) {
            let dirty_count = self.dirty.lock().len();
            if dirty_count >= self.config.checkpoint_dirty_pages {
                let _ = self.checkpoint(); // deferred on outage
            } else {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }

    /// Pull and apply one batch; returns the number of records applied.
    /// Public so deterministic tests can drive the server without threads.
    pub fn apply_once(&self) -> Result<usize> {
        let cursor = self.applied.load();
        let pull =
            self.xlog.pull_blocks(cursor, self.config.pull_batch_bytes, Some(self.spec.id))?;
        let mut applied = 0usize;
        for block in &pull.blocks {
            let span = self
                .span_sink(block.ctx())
                .map(|(ring, node)| (Arc::clone(ring), *node, ring.now_ns()));
            for rec in block.records()? {
                if let LogPayload::PageWrite { page_id, op } = &rec.record.payload {
                    if self.spec.contains(*page_id) {
                        self.apply_page_write(*page_id, op, rec.lsn)?;
                        applied += 1;
                    }
                }
            }
            if let Some((ring, node, start)) = span {
                ring.record_child(
                    block.ctx(),
                    SpanKind::PsApply,
                    node,
                    start,
                    ring.now_ns().saturating_sub(start),
                );
            }
        }
        if pull.next_lsn > cursor {
            self.applied.advance_to(pull.next_lsn);
            self.xlog.report_progress(&self.name, pull.next_lsn);
            self.note_applied(pull.next_lsn);
        }
        self.metrics.records_applied.add(applied as u64);
        Ok(applied)
    }

    /// Apply a slice of log blocks directly (bypassing XLOG), stopping at
    /// records with `lsn >= upto`. This is the PITR bootstrap path: "the
    /// log applied to bring the database all the way to the requested
    /// time" (paper §4.7), where the blocks come from the copied LT blobs.
    pub fn apply_blocks(
        &self,
        blocks: &[socrates_wal::block::LogBlock],
        upto: Lsn,
    ) -> Result<usize> {
        let mut applied = 0usize;
        for block in blocks {
            if block.start_lsn() >= upto {
                break;
            }
            for rec in block.records()? {
                if rec.lsn >= upto {
                    break;
                }
                if let LogPayload::PageWrite { page_id, op } = &rec.record.payload {
                    if self.spec.contains(*page_id) {
                        self.apply_page_write(*page_id, op, rec.lsn)?;
                        applied += 1;
                    }
                }
            }
            self.applied.advance_to(block.end_lsn().min(upto));
        }
        self.note_applied(self.applied.load());
        self.metrics.records_applied.add(applied as u64);
        Ok(applied)
    }

    fn apply_page_write(&self, page_id: PageId, op_bytes: &[u8], lsn: Lsn) -> Result<()> {
        // Model the apply CPU cost (decode + page edit).
        self.cpu.charge_us(2 + (op_bytes.len() as u64) / 512);
        let mut mem = self.mem.lock();
        let mut page = match mem.remove(&page_id) {
            Some(p) => p,
            None => match self.rbpex.get(page_id)? {
                Some(p) => p,
                None => match self.read_page_from_xstore(page_id)? {
                    Some(p) => p,
                    None => Page::new(page_id, socrates_storage::page::PageType::Free),
                },
            },
        };
        if page.page_lsn() < lsn {
            let (op, _) = PageOp::decode(op_bytes)?;
            apply_page_op(&mut page, &op, lsn)?;
            self.dirty.lock().insert(page_id);
        }
        mem.insert(page_id, page);
        if mem.len() >= MEM_TIER_PAGES {
            self.spill_mem_locked(&mut mem)?;
        }
        Ok(())
    }

    /// Write every memory-tier page down to RBPEX and clear the tier.
    fn spill_mem_locked(&self, mem: &mut HashMap<PageId, Page>) -> Result<()> {
        for (_, page) in mem.drain() {
            self.rbpex.put(&page)?;
        }
        Ok(())
    }

    /// Flush the memory tier (before checkpoints and backups).
    fn flush_mem(&self) -> Result<()> {
        let mut mem = self.mem.lock();
        self.spill_mem_locked(&mut mem)
    }

    // ---- GetPage@LSN ----

    /// The GetPage@LSN protocol (paper §4.4): wait until applied ≥
    /// `min_lsn`, then serve the page.
    pub fn get_page(&self, page_id: PageId, min_lsn: Lsn) -> Result<Page> {
        self.get_page_ctx(page_id, min_lsn, TraceCtx::NONE)
    }

    /// [`get_page`](Self::get_page) carrying the caller's trace context,
    /// so an XStore fallback read lands in the trace as an `xstore.read`
    /// child span.
    pub fn get_page_ctx(&self, page_id: PageId, min_lsn: Lsn, ctx: TraceCtx) -> Result<Page> {
        if !self.spec.contains(page_id) {
            return Err(Error::InvalidArgument(format!(
                "{page_id} is not in partition {} [{}, {})",
                self.spec.id,
                self.spec.base_page,
                self.spec.base_page + self.spec.span
            )));
        }
        self.wait_applied(min_lsn)?;
        self.cpu.charge_us(5);
        if let Some(p) = self.mem.lock().get(&page_id) {
            self.metrics.pages_served.incr();
            return Ok(p.clone());
        }
        let page = match self.rbpex.get(page_id)? {
            Some(p) => p,
            None => match self.read_page_from_xstore_ctx(page_id, ctx)? {
                Some(p) => {
                    // Adopt into the covering cache for next time.
                    self.rbpex.put(&p)?;
                    p
                }
                None => return Err(Error::NotFound(format!("{page_id} has never been written"))),
            },
        };
        self.metrics.pages_served.incr();
        Ok(page)
    }

    /// Stride-preserving multi-page read: one covering-cache device I/O for
    /// the whole range, with the memory tier overlaid on top. A page applied
    /// since its last spill lives only in `mem` and its RBPEX frame may be
    /// stale, so the overlay always wins; flushing `mem` here instead would
    /// put a burst of device writes on the read path and stall every
    /// concurrent GetPage behind the `mem` lock.
    pub fn get_page_range(&self, first: PageId, count: u32, min_lsn: Lsn) -> Result<Vec<Page>> {
        let ids: Vec<PageId> = (first.raw()..first.raw() + count as u64).map(PageId::new).collect();
        for id in &ids {
            if !self.spec.contains(*id) {
                return Err(Error::InvalidArgument(format!(
                    "{id} is not in partition {}",
                    self.spec.id
                )));
            }
        }
        self.wait_applied(min_lsn)?;
        self.cpu.charge_us(5 + count as u64);
        self.metrics.range_requests.incr();
        let overlay: Vec<Option<Page>> = {
            let mem = self.mem.lock();
            ids.iter().map(|id| mem.get(id).cloned()).collect()
        };
        let ssd = self.rbpex.get_range_partial(&ids)?;
        let mut out = Vec::with_capacity(ids.len());
        let mut fallbacks = 0u64;
        for ((id, mem_page), ssd_page) in ids.iter().zip(overlay).zip(ssd) {
            match mem_page.or(ssd_page) {
                Some(p) => out.push(p),
                None => {
                    // Neither tier has it (e.g. checkpointed long ago and
                    // dropped): the single-page path reaches XStore. It
                    // counts itself in `pages_served`.
                    fallbacks += 1;
                    out.push(self.get_page(*id, Lsn::ZERO)?);
                }
            }
        }
        self.metrics.pages_served.add(ids.len() as u64 - fallbacks);
        self.metrics.range_pages_served.add(ids.len() as u64);
        Ok(out)
    }

    fn wait_applied(&self, min_lsn: Lsn) -> Result<()> {
        if self.applied.load() >= min_lsn {
            return Ok(());
        }
        self.metrics.get_page_waits.incr();
        let deadline = Instant::now() + self.config.get_page_timeout;
        let mut guard = self.apply_mutex.lock();
        // Re-check under the lock: `note_applied` notifies while holding
        // it, so an advance between the check and the wait cannot be lost.
        // The capped wait is a backstop against a stopped apply loop.
        while self.applied.load() < min_lsn {
            let now = Instant::now();
            if now > deadline {
                return Err(Error::Timeout(format!(
                    "GetPage wait: applied {} < requested {min_lsn}",
                    self.applied.load()
                )));
            }
            let cap = deadline.saturating_duration_since(now).min(Duration::from_millis(5));
            self.apply_cv.wait_for(&mut guard, cap);
        }
        Ok(())
    }

    // ---- checkpointing, backup, seeding ----

    /// Ship all dirty pages to XStore and advance the checkpointed LSN.
    /// During an XStore outage this returns `Unavailable` and keeps the
    /// dirty set intact (the insulation mode of §4.6).
    pub fn checkpoint(&self) -> Result<Lsn> {
        let _g = self.checkpoint_lock.lock();
        self.flush_mem()?;
        let at = self.applied.load();
        let batch: Vec<PageId> = {
            let dirty = self.dirty.lock();
            dirty.iter().copied().collect()
        };
        if batch.is_empty() {
            // Still advance the recorded LSN: everything applied is clean.
            self.write_checkpoint_meta(at)?;
            return Ok(at);
        }
        if !self.xstore.is_available() {
            self.metrics.checkpoints_deferred.incr();
            return Err(Error::Unavailable("xstore outage; checkpoint deferred".into()));
        }
        // Checkpoints are trace roots of their own: they are not caused by
        // any one commit, so they self-sample at the ring's rate.
        let ckpt_span = self.spans.get().and_then(|(ring, node)| {
            ring.try_sample().map(|ctx| (Arc::clone(ring), *node, ctx, ring.now_ns()))
        });
        // Aggregate the dirty pages into large batched writes (§4.6).
        let mut shipped: Vec<(PageId, Lsn)> = Vec::with_capacity(batch.len());
        for chunk in batch.chunks(128) {
            let mut images = Vec::with_capacity(chunk.len());
            for page_id in chunk {
                // Freshest tier wins: the apply loop keeps running while we
                // checkpoint, so a page updated since flush_mem lives only
                // in `mem` and its RBPEX image is stale. Shipping the stale
                // image and clearing the dirty bit would lose the update in
                // XStore — a replacement server attaching at the recorded
                // LSN would never replay it.
                let page = match self.mem.lock().get(page_id).cloned() {
                    Some(p) => p,
                    None => match self.rbpex.get(*page_id)? {
                        Some(p) => p,
                        None => continue,
                    },
                };
                let off = (page_id.raw() - self.spec.base_page) * PAGE_SIZE as u64;
                shipped.push((*page_id, page.page_lsn()));
                images.push((off, page.to_io_bytes()));
                self.cpu.charge_us(10);
            }
            let writes: Vec<(u64, &[u8])> =
                images.iter().map(|(off, img)| (*off, img.as_slice())).collect();
            let put_start = ckpt_span.as_ref().map(|(ring, ..)| ring.now_ns());
            self.xstore.write_batch(self.data_blob, &writes)?;
            if let (Some((ring, _, ctx, _)), Some(start)) = (&ckpt_span, put_start) {
                ring.record_child(
                    *ctx,
                    SpanKind::XstorePut,
                    NodeId::XSTORE,
                    start,
                    ring.now_ns().saturating_sub(start),
                );
            }
            self.metrics.pages_checkpointed.add(writes.len() as u64);
        }
        {
            // Clear dirty bits only for pages whose shipped image is still
            // current; a page re-applied mid-checkpoint stays dirty so the
            // next checkpoint ships the newer version.
            let mem = self.mem.lock();
            let mut dirty = self.dirty.lock();
            for (p, lsn) in &shipped {
                let current = mem.get(p).map(|pg| pg.page_lsn()).or_else(|| self.rbpex.lsn_of(*p));
                if current.is_none_or(|c| c <= *lsn) {
                    dirty.remove(p);
                }
            }
        }
        self.write_checkpoint_meta(at)?;
        if let Some((ring, node, ctx, start)) = ckpt_span {
            ring.record_root(
                ctx,
                SpanKind::PsCheckpoint,
                node,
                start,
                ring.now_ns().saturating_sub(start),
            );
        }
        Ok(at)
    }

    fn write_checkpoint_meta(&self, lsn: Lsn) -> Result<()> {
        self.xstore.write_at(self.meta_blob, 0, &lsn.offset().to_le_bytes())?;
        self.checkpointed.advance_to(lsn);
        Ok(())
    }

    /// Take a backup: checkpoint, then snapshot the data blob. Returns the
    /// snapshot and the LSN it is consistent with. Constant-time in
    /// partition size (paper §3.5) — the snapshot is a metadata operation.
    pub fn backup(&self) -> Result<(SnapshotId, Lsn)> {
        let lsn = self.checkpoint()?;
        let snap = self.xstore.snapshot(self.data_blob)?;
        Ok((snap, lsn))
    }

    fn read_page_from_xstore(&self, page_id: PageId) -> Result<Option<Page>> {
        self.read_page_from_xstore_ctx(page_id, TraceCtx::NONE)
    }

    fn read_page_from_xstore_ctx(&self, page_id: PageId, ctx: TraceCtx) -> Result<Option<Page>> {
        let off = (page_id.raw() - self.spec.base_page) * PAGE_SIZE as u64;
        let span = self.span_sink(ctx).map(|(ring, _)| (Arc::clone(ring), ring.now_ns()));
        let len = self.xstore.blob_len(self.data_blob)?;
        if off + PAGE_SIZE as u64 > len {
            return Ok(None);
        }
        let bytes = self.xstore.read_at(self.data_blob, off, PAGE_SIZE)?;
        if let Some((ring, start)) = span {
            // Attributed to the XStore tier: the blob service did the work.
            ring.record_child(
                ctx,
                SpanKind::XstoreRead,
                NodeId::XSTORE,
                start,
                ring.now_ns().saturating_sub(start),
            );
        }
        if bytes.iter().all(|&b| b == 0) {
            return Ok(None); // never-written hole
        }
        self.metrics.xstore_fallback_reads.incr();
        Ok(Some(Page::from_io_bytes(page_id, &bytes)?))
    }

    fn seed_loop(self: Arc<Self>) {
        for off in 0..self.spec.span {
            // ordering: relaxed — shutdown poll; a late observation costs one page
            if self.stop.load(Ordering::Relaxed) {
                return;
            }
            let page_id = PageId::new(self.spec.base_page + off);
            if self.rbpex.contains(page_id) {
                continue; // already fetched by a request or log apply
            }
            match self.read_page_from_xstore(page_id) {
                Ok(Some(page)) => {
                    // Don't clobber a newer page applied by the log.
                    if !self.rbpex.contains(page_id) {
                        let _ = self.rbpex.put(&page);
                    }
                }
                Ok(None) => {}
                Err(_) => {
                    // Outage: retry this page after a pause.
                    std::thread::sleep(Duration::from_millis(5));
                }
            }
        }
        // ordering: release — publishes every rbpex page stored above to readers
        // that observe is_seeded() == true
        self.seeded.store(true, Ordering::Release);
    }

    /// Drive seeding synchronously (deterministic tests).
    pub fn seed_blocking(self: &Arc<Self>) {
        Arc::clone(self).seed_loop();
    }
}

impl Drop for PageServer {
    fn drop(&mut self) {
        // ordering: relaxed — poll flag; the joins below are the real sync point
        self.stop.store(true, Ordering::Relaxed);
        for handle in [&self.apply_handle, &self.ckpt_handle, &self.seed_handle] {
            if let Some(h) = handle.lock().take() {
                let _ = h.join();
            }
        }
    }
}

/// RBIO adapter: lets compute nodes reach the page server over the typed
/// protocol.
pub struct PageServerHandler {
    ps: Arc<PageServer>,
    faults: FaultRegistry,
}

impl PageServerHandler {
    /// Adapter with fault injection disabled.
    pub fn new(ps: Arc<PageServer>) -> PageServerHandler {
        PageServerHandler::with_faults(ps, FaultRegistry::disabled())
    }

    /// Adapter consulting the `pageserver.serve` site on every request.
    /// This is the one site with true crash semantics: a `Crash` action
    /// stops the page server's threads, so subsequent requests fail until
    /// the fabric restarts the partition.
    pub fn with_faults(ps: Arc<PageServer>, faults: FaultRegistry) -> PageServerHandler {
        PageServerHandler { ps, faults }
    }

    fn check_serve_fault(&self, req: &RbioRequest) -> Result<()> {
        let lsn = match req {
            RbioRequest::GetPage { min_lsn, .. } | RbioRequest::GetPageRange { min_lsn, .. } => {
                Some(*min_lsn)
            }
            _ => None,
        };
        match self.faults.check_at(fault_sites::PAGESERVER_SERVE, lsn) {
            Some(FaultOutcome::Err(e)) => Err(e),
            Some(FaultOutcome::Drop) => {
                Err(Error::Unavailable("fault: page server dropped the request".into()))
            }
            Some(FaultOutcome::Crash) => {
                self.ps.stop();
                Err(Error::Unavailable("fault: page server crashed".into()))
            }
            None => Ok(()),
        }
    }
}

impl RbioHandler for PageServerHandler {
    fn handle(&self, req: RbioRequest) -> Result<RbioResponse> {
        self.handle_ctx(req, TraceCtx::NONE)
    }

    fn handle_ctx(&self, req: RbioRequest, ctx: TraceCtx) -> Result<RbioResponse> {
        self.check_serve_fault(&req)?;
        // A sampled GetPage records a `ps.serve` child under the caller's
        // span; its XStore fallback (if any) nests a further child.
        let span =
            self.ps.span_sink(ctx).map(|(ring, node)| (Arc::clone(ring), *node, ring.now_ns()));
        let record_serve = |resp: &Result<RbioResponse>| {
            if let (Some((ring, node, start)), Ok(_)) = (&span, resp) {
                ring.record_child(
                    ctx,
                    SpanKind::PsServe,
                    *node,
                    *start,
                    ring.now_ns().saturating_sub(*start),
                );
            }
        };
        match req {
            RbioRequest::GetPage { page_id, min_lsn } => {
                let t0 = std::time::Instant::now();
                let resp =
                    self.ps.get_page_ctx(page_id, min_lsn, ctx).map(|page| RbioResponse::Page {
                        bytes: page.to_io_bytes().to_vec(),
                        serve_us: (t0.elapsed().as_micros() as u64).max(1),
                    });
                record_serve(&resp);
                resp
            }
            RbioRequest::GetPageRange { first, count, min_lsn } => {
                let t0 = std::time::Instant::now();
                let resp = self.ps.get_page_range(first, count, min_lsn).map(|pages| {
                    RbioResponse::PageRange {
                        pages: pages.iter().map(|p| p.to_io_bytes().to_vec()).collect(),
                        serve_us: (t0.elapsed().as_micros() as u64).max(1),
                    }
                });
                record_serve(&resp);
                resp
            }
            RbioRequest::Ping => Ok(RbioResponse::Pong),
            RbioRequest::GetAppliedLsn => {
                Ok(RbioResponse::AppliedLsn { lsn: self.ps.applied_lsn() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socrates_common::TxnId;
    use socrates_storage::page::PageType;
    use socrates_storage::slotted::Slotted;
    use socrates_storage::MemFcb;
    use socrates_wal::block::BlockBuilder;
    use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
    use socrates_wal::record::LogRecord;
    use socrates_xlog::service::XLogConfig;
    use socrates_xstore::XStoreConfig;

    struct Fixture {
        lz: Arc<LandingZone>,
        xlog: Arc<XLogService>,
        xstore: Arc<XStore>,
        next_lsn: Lsn,
    }

    impl Fixture {
        fn new() -> Fixture {
            let lz = Arc::new(LandingZone::new(
                vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
                LandingZoneConfig { capacity: 8 << 20, write_quorum: 1 },
            ));
            let xstore = Arc::new(XStore::new(XStoreConfig::instant()));
            let xlog = XLogService::new(
                Arc::clone(&lz),
                Arc::new(MemFcb::new("xlog-ssd")) as Arc<dyn Fcb>,
                Arc::clone(&xstore),
                XLogConfig::default(),
                Lsn::ZERO,
                "xlog/lt",
            )
            .unwrap();
            Fixture { lz, xlog, xstore, next_lsn: Lsn::ZERO }
        }

        fn server(&self, name: &str, spec: PartitionSpec) -> Arc<PageServer> {
            PageServer::create(
                name,
                spec,
                PageServerConfig::default(),
                Arc::new(MemFcb::new(format!("{name}-ssd"))) as Arc<dyn Fcb>,
                Arc::new(MemFcb::new(format!("{name}-meta"))) as Arc<dyn Fcb>,
                Arc::clone(&self.xstore),
                Arc::clone(&self.xlog),
                Arc::new(CpuAccountant::new()),
                Lsn::ZERO,
            )
            .unwrap()
        }

        /// Emit one log block of page ops and release it through XLOG.
        fn emit(&mut self, ops: &[(u64, PageOp)]) -> Lsn {
            let mut b = BlockBuilder::new(self.next_lsn, 1 << 16);
            for (page, op) in ops {
                let mut bytes = Vec::new();
                op.encode(&mut bytes);
                b.append(
                    &LogRecord {
                        txn: TxnId::new(1),
                        payload: LogPayload::PageWrite { page_id: PageId::new(*page), op: bytes },
                    },
                    Some(PartitionId::new((*page / 100) as u32)),
                );
            }
            let block = b.seal();
            self.lz.write_block(&block).unwrap();
            self.xlog.offer_block(block.clone());
            self.xlog.report_hardened(block.end_lsn());
            self.next_lsn = block.end_lsn();
            self.next_lsn
        }
    }

    fn spec(id: u32) -> PartitionSpec {
        PartitionSpec { id: PartitionId::new(id), base_page: id as u64 * 100, span: 100 }
    }

    fn insert_op(bytes: &[u8]) -> PageOp {
        PageOp::Insert { idx: 0, bytes: bytes.to_vec() }
    }

    #[test]
    fn applies_only_its_partition() {
        let mut f = Fixture::new();
        let ps0 = f.server("ps0", spec(0));
        let ps1 = f.server("ps1", spec(1));
        let end = f.emit(&[
            (5, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (105, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (5, insert_op(b"zero")),
            (105, insert_op(b"one")),
        ]);
        ps0.apply_once().unwrap();
        ps1.apply_once().unwrap();
        assert_eq!(ps0.applied_lsn(), end);
        assert_eq!(ps1.applied_lsn(), end);
        let p5 = ps0.get_page(PageId::new(5), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&p5, 0).unwrap(), b"zero");
        let p105 = ps1.get_page(PageId::new(105), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&p105, 0).unwrap(), b"one");
        // Wrong-partition requests are rejected.
        assert!(ps0.get_page(PageId::new(105), Lsn::ZERO).is_err());
        assert_eq!(ps0.metrics().records_applied.get(), 2);
    }

    #[test]
    fn get_page_at_lsn_waits_for_apply() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let end1 = f.emit(&[(7, PageOp::Format { ptype: PageType::BTreeLeaf })]);
        ps.apply_once().unwrap();
        // Emit a second block but don't apply yet.
        let end2 = f.emit(&[(7, insert_op(b"fresh"))]);
        assert!(end2 > end1);
        // A request at end2 must block until apply catches up; drive apply
        // from another thread after a delay.
        let ps2 = Arc::clone(&ps);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            ps2.apply_once().unwrap();
        });
        let page = ps.get_page(PageId::new(7), end2).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"fresh");
        assert_eq!(ps.metrics().get_page_waits.get(), 1);
        t.join().unwrap();
    }

    #[test]
    fn get_page_timeout_when_log_never_arrives() {
        let f = Fixture::new();
        let ps = PageServer::create(
            "ps0",
            spec(0),
            PageServerConfig { get_page_timeout: Duration::from_millis(50), ..Default::default() },
            Arc::new(MemFcb::new("ssd")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
            Lsn::ZERO,
        )
        .unwrap();
        let err = ps.get_page(PageId::new(1), Lsn::new(1_000_000)).unwrap_err();
        assert_eq!(err.kind(), "timeout");
    }

    #[test]
    fn checkpoint_ships_pages_and_survives_replacement() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let end = f.emit(&[
            (3, PageOp::Format { ptype: PageType::BTreeLeaf }),
            (3, insert_op(b"durable")),
            (4, PageOp::Format { ptype: PageType::VersionStore }),
        ]);
        ps.apply_once().unwrap();
        let ck = ps.checkpoint().unwrap();
        assert_eq!(ck, end);
        assert_eq!(ps.checkpointed_lsn(), end);
        assert_eq!(ps.metrics().pages_checkpointed.get(), 2);
        let (data_blob, meta_blob) = ps.blobs();
        drop(ps); // the page server dies

        // A replacement attaches to the same blobs and serves immediately.
        let ps2 = PageServer::attach(
            "ps0b",
            spec(0),
            PageServerConfig::default(),
            Arc::new(MemFcb::new("ssd2")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta2")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            data_blob,
            meta_blob,
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
        )
        .unwrap();
        assert_eq!(ps2.applied_lsn(), end, "cursor resumes from checkpoint meta");
        assert!(!ps2.is_seeded());
        let page = ps2.get_page(PageId::new(3), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"durable");
        assert!(ps2.metrics().xstore_fallback_reads.get() >= 1);
        // Blocking seed completes and future reads come from RBPEX.
        ps2.seed_blocking();
        assert!(ps2.is_seeded());
        let before = ps2.metrics().xstore_fallback_reads.get();
        ps2.get_page(PageId::new(4), Lsn::ZERO).unwrap();
        assert_eq!(ps2.metrics().xstore_fallback_reads.get(), before);
    }

    #[test]
    fn xstore_outage_insulation() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        f.emit(&[(1, PageOp::Format { ptype: PageType::BTreeLeaf })]);
        ps.apply_once().unwrap();
        f.xstore.set_available(false);
        // Applying continues during the outage.
        let end = f.emit(&[(1, insert_op(b"during-outage"))]);
        ps.apply_once().unwrap();
        assert_eq!(ps.applied_lsn(), end);
        // Serving continues from RBPEX.
        let page = ps.get_page(PageId::new(1), end).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"during-outage");
        // Checkpoint defers.
        assert!(ps.checkpoint().unwrap_err().is_transient());
        assert_eq!(ps.metrics().checkpoints_deferred.get(), 1);
        // Recovery: checkpoint catches up.
        f.xstore.set_available(true);
        let ck = ps.checkpoint().unwrap();
        assert_eq!(ck, end);
        assert_eq!(ps.metrics().pages_checkpointed.get(), 1);
    }

    #[test]
    fn backup_is_a_snapshot_and_restores() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        f.emit(&[(2, PageOp::Format { ptype: PageType::BTreeLeaf }), (2, insert_op(b"backed-up"))]);
        ps.apply_once().unwrap();
        let (snap, lsn) = ps.backup().unwrap();
        assert_eq!(lsn, ps.applied_lsn());
        // Mutate after the backup.
        f.emit(&[(2, insert_op(b"after-backup"))]);
        ps.apply_once().unwrap();
        ps.checkpoint().unwrap();
        // Restore the snapshot into a new blob + new page server.
        let restored = f.xstore.restore_snapshot(snap, "data/restored").unwrap();
        let meta2 = f.xstore.create_blob("data/restored.meta").unwrap();
        f.xstore.write_at(meta2, 0, &lsn.offset().to_le_bytes()).unwrap();
        let ps2 = PageServer::attach(
            "restored",
            spec(0),
            PageServerConfig::default(),
            Arc::new(MemFcb::new("ssd-r")) as Arc<dyn Fcb>,
            Arc::new(MemFcb::new("meta-r")) as Arc<dyn Fcb>,
            Arc::clone(&f.xstore),
            restored,
            meta2,
            Arc::clone(&f.xlog),
            Arc::new(CpuAccountant::new()),
        )
        .unwrap();
        let page = ps2.get_page(PageId::new(2), Lsn::ZERO).unwrap();
        // Only the pre-backup record is present.
        assert_eq!(Slotted::slot_count(&page), 1);
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"backed-up");
        // The restored server can catch up from the log to the present.
        ps2.apply_once().unwrap();
        let page = ps2.get_page(PageId::new(2), Lsn::ZERO).unwrap();
        assert_eq!(Slotted::slot_count(&page), 2);
    }

    #[test]
    fn range_read_is_served_from_covering_cache() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let mut ops = Vec::new();
        for p in 10..20u64 {
            ops.push((p, PageOp::Format { ptype: PageType::BTreeLeaf }));
        }
        f.emit(&ops);
        ps.apply_once().unwrap();
        let pages = ps.get_page_range(PageId::new(10), 10, Lsn::ZERO).unwrap();
        assert_eq!(pages.len(), 10);
        for (i, p) in pages.iter().enumerate() {
            assert_eq!(p.page_id(), PageId::new(10 + i as u64));
        }
        // Out-of-partition ranges rejected.
        assert!(ps.get_page_range(PageId::new(95), 10, Lsn::ZERO).is_err());
    }

    #[test]
    fn ctx_carrying_blocks_record_apply_and_serve_spans() {
        let f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        let ring = Arc::new(SpanRing::new(32, 1));
        let node = NodeId::page_server(0);
        ps.set_span_ring(Arc::clone(&ring), node);
        let root = ring.try_sample().expect("1-in-1 sampling");
        // Emit a block carrying the sampled ctx.
        let mut b = BlockBuilder::new(f.next_lsn, 1 << 16);
        let mut bytes = Vec::new();
        PageOp::Format { ptype: PageType::BTreeLeaf }.encode(&mut bytes);
        b.append(
            &LogRecord {
                txn: TxnId::new(1),
                payload: LogPayload::PageWrite { page_id: PageId::new(5), op: bytes },
            },
            Some(PartitionId::new(0)),
        );
        b.set_ctx(root);
        let block = b.seal();
        f.lz.write_block(&block).unwrap();
        f.xlog.offer_block(block.clone());
        f.xlog.report_hardened(block.end_lsn());
        ps.apply_once().unwrap();
        let spans = ring.spans();
        assert_eq!(spans.len(), 1, "apply must record one ps.apply span");
        assert_eq!(spans[0].kind, SpanKind::PsApply);
        assert_eq!(spans[0].trace_id, root.trace_id);
        assert_eq!(spans[0].parent_id, root.span_id);
        // Serving with a ctx records ps.serve under the caller's span.
        let handler = PageServerHandler::new(Arc::clone(&ps));
        let serve_ctx = ring.try_sample().expect("sampled");
        handler
            .handle_ctx(
                RbioRequest::GetPage { page_id: PageId::new(5), min_lsn: Lsn::ZERO },
                serve_ctx,
            )
            .unwrap();
        let spans = ring.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[1].kind, SpanKind::PsServe);
        assert_eq!(spans[1].parent_id, serve_ctx.span_id);
        // An unsampled request records nothing.
        handler
            .handle_ctx(
                RbioRequest::GetPage { page_id: PageId::new(5), min_lsn: Lsn::ZERO },
                TraceCtx::NONE,
            )
            .unwrap();
        assert_eq!(ring.spans().len(), 2);
    }

    #[test]
    fn background_apply_thread() {
        let mut f = Fixture::new();
        let ps = f.server("ps0", spec(0));
        ps.start();
        let end =
            f.emit(&[(8, PageOp::Format { ptype: PageType::BTreeLeaf }), (8, insert_op(b"bg"))]);
        let deadline = Instant::now() + Duration::from_secs(5);
        while ps.applied_lsn() < end {
            assert!(Instant::now() < deadline, "apply thread never caught up");
            std::thread::sleep(Duration::from_millis(1));
        }
        let page = ps.get_page(PageId::new(8), end).unwrap();
        assert_eq!(Slotted::get(&page, 0).unwrap(), b"bg");
        ps.stop();
    }
}

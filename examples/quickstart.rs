//! Quickstart: launch a Socrates deployment, run transactions, read your
//! writes from a secondary, and survive a primary crash.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use socrates::{Socrates, SocratesConfig};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::time::Duration;

fn main() -> socrates_common::Result<()> {
    // A deployment: primary + 1 secondary + page servers + XLOG + XStore,
    // all in-process. `fast_test` disables simulated device latencies;
    // `SocratesConfig::realistic(seed)` turns them on.
    let config = SocratesConfig::fast_test().with_secondaries(1);
    let sys = Socrates::launch(config)?;
    let primary = sys.primary()?;
    let db = primary.db();

    // DDL: a table whose first column is the primary key.
    db.create_table(
        "inventory",
        Schema::new(
            vec![
                ("sku".into(), ColumnType::Int),
                ("name".into(), ColumnType::Str),
                ("stock".into(), ColumnType::Int),
            ],
            1,
        ),
    )?;

    // A read-write transaction.
    let txn = db.begin();
    db.insert(&txn, "inventory", &[Value::Int(1), Value::Str("anvil".into()), Value::Int(12)])?;
    db.insert(&txn, "inventory", &[Value::Int(2), Value::Str("rope".into()), Value::Int(80)])?;
    db.commit(txn)?;
    println!("committed 2 rows; log hardened to {}", primary.pipeline().hardened_lsn());

    // Snapshot isolation: a reader that starts now never sees later writes.
    let snapshot = db.begin();
    let writer = db.begin();
    db.update(&writer, "inventory", &[Value::Int(1), Value::Str("anvil".into()), Value::Int(7)])?;
    db.commit(writer)?;
    let row = db.get(&snapshot, "inventory", &[Value::Int(1)])?.expect("visible");
    println!("old snapshot still sees stock = {} (now 7)", row[2]);

    // Read scale-out: the secondary applies the log and serves snapshots.
    let secondary = sys.secondary(0)?;
    secondary.wait_applied(primary.pipeline().hardened_lsn(), Duration::from_secs(5))?;
    let r = secondary.db().begin();
    let row = secondary.db().get(&r, "inventory", &[Value::Int(1)])?.expect("replicated");
    println!("secondary reads stock = {}", row[2]);

    // Compute is stateless: kill the primary, fail over, nothing is lost.
    sys.kill_primary();
    let new_primary = sys.failover()?;
    let r = new_primary.db().begin();
    let row = new_primary.db().get(&r, "inventory", &[Value::Int(2)])?.expect("durable");
    println!("after failover, rope stock = {}", row[2]);

    sys.shutdown();
    println!("quickstart OK");
    Ok(())
}

//! A tour of the durability/availability separation (paper §6).
//!
//! In Socrates, durability lives in the log (landing zone + LT archive)
//! and XStore; compute nodes and page servers exist only for availability.
//! This example commits data, then destroys each availability tier in turn
//! — the primary, then every page server — injects an XStore outage for
//! good measure, and shows the data unharmed each time.
//!
//! ```sh
//! cargo run --example durability_tour
//! ```

use socrates::{Socrates, SocratesConfig};
use socrates_common::PartitionId;
use socrates_engine::value::{ColumnType, Schema, Value};
use std::time::Duration;

fn main() -> socrates_common::Result<()> {
    let mut config = SocratesConfig::fast_test();
    // Small partitions so step 4's growth visibly crosses page servers.
    config.pages_per_partition = 64;
    let sys = Socrates::launch(config)?;
    let primary = sys.primary()?;
    let db = primary.db();
    db.create_table(
        "facts",
        Schema::new(vec![("id".into(), ColumnType::Int), ("fact".into(), ColumnType::Str)], 1),
    )?;
    let h = db.begin();
    for i in 0..500 {
        db.insert(&h, "facts", &[Value::Int(i), Value::Str(format!("fact #{i}"))])?;
    }
    db.commit(h)?;
    let committed_lsn = primary.pipeline().hardened_lsn();
    println!("500 facts committed (log hardened to {committed_lsn})");

    // 1. Kill the primary. Compute is stateless; a new one recovers with
    //    analysis only (no undo, no page copying).
    sys.kill_primary();
    let t0 = std::time::Instant::now();
    let primary = sys.failover()?;
    println!("primary failover in {:?} — O(1) in data size", t0.elapsed());
    let r = primary.db().begin();
    assert_eq!(primary.db().scan_table(&r, "facts", usize::MAX)?.len(), 500);

    // 2. Kill every page server. Their truth lives in XStore + the log;
    //    replacements attach to the blobs and replay the tail.
    sys.checkpoint()?; // ship dirty pages so replacements start warm
    let fabric = sys.fabric();
    for pid in fabric.partition_ids() {
        let handle = fabric.kill_partition(pid).expect("partition existed");
        let (data_blob, meta_blob) = handle.servers[0].blobs();
        drop(handle);
        println!("killed page servers of {pid}; attaching a replacement...");
        let ps = socrates_pageserver::PageServer::attach(
            &format!("replacement-{}", pid.raw()),
            fabric.partition_spec(pid),
            fabric.config.page_server.clone(),
            std::sync::Arc::new(socrates_storage::MemFcb::new("repl-ssd")),
            std::sync::Arc::new(socrates_storage::MemFcb::new("repl-meta")),
            std::sync::Arc::clone(&fabric.xstore),
            data_blob,
            meta_blob,
            std::sync::Arc::clone(&fabric.xlog),
            fabric.cpu.accountant(socrates_common::NodeId::page_server(99)),
        )?;
        ps.start();
        fabric.install_partition(pid, vec![ps])?;
    }
    fabric.wait_applied(committed_lsn, Duration::from_secs(10))?;
    // A fresh primary (cold cache) must read everything through the
    // replacement page servers.
    sys.kill_primary();
    let primary = sys.failover()?;
    let r = primary.db().begin();
    assert_eq!(primary.db().scan_table(&r, "facts", usize::MAX)?.len(), 500);
    println!("all page servers replaced; 500 facts intact");

    // 3. XStore outage: page servers insulate — they keep serving and
    //    applying; checkpoints catch up when the service returns.
    fabric.xstore.set_available(false);
    let h = primary.db().begin();
    primary.db().insert(&h, "facts", &[Value::Int(1000), Value::Str("during outage".into())])?;
    primary.db().commit(h)?;
    let r = primary.db().begin();
    assert!(primary.db().get(&r, "facts", &[Value::Int(1000)])?.is_some());
    println!("committed and read during a full XStore outage");
    fabric.xstore.set_available(true);
    sys.checkpoint()?;
    println!("outage over; checkpoints caught up");

    // 4. Grow the database into new partitions: page servers appear on
    //    demand, no data moves (O(1) upsize).
    let before = fabric.partition_ids().len();
    let h = primary.db().begin();
    for i in 0..2000 {
        primary.db().insert(&h, "facts", &[Value::Int(10_000 + i), Value::Str("x".repeat(200))])?;
    }
    primary.db().commit(h)?;
    let after = fabric.partition_ids().len();
    println!("database grew: {before} → {after} partitions (servers spun up on demand)");
    assert!(after >= before);
    let _ = PartitionId::new(0);

    sys.shutdown();
    println!("durability tour OK");
    Ok(())
}

//! A concurrent OLTP scenario: bank transfers under snapshot isolation.
//!
//! Eight client threads move money between accounts while an auditor takes
//! consistent snapshots. Write-write conflicts abort and retry; the total
//! balance is invariant in every audit — across conflicts, group commit,
//! the lossy XLOG feed, and a mid-run primary failover.
//!
//! ```sh
//! cargo run --example bank_transfers
//! ```

use socrates::{Socrates, SocratesConfig};
use socrates_common::rng::Rng;
use socrates_engine::value::{ColumnType, Schema, Value};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const ACCOUNTS: i64 = 200;
const INITIAL: i64 = 1_000;

fn balance_of(row: &[Value]) -> i64 {
    match row[1] {
        Value::Int(v) => v,
        _ => unreachable!("balance column is Int"),
    }
}

fn main() -> socrates_common::Result<()> {
    let sys = Arc::new(Socrates::launch(SocratesConfig::fast_test())?);
    let primary = sys.primary()?;
    let db = primary.db();
    db.create_table(
        "accounts",
        Schema::new(vec![("id".into(), ColumnType::Int), ("balance".into(), ColumnType::Int)], 1),
    )?;
    let setup = db.begin();
    for id in 0..ACCOUNTS {
        db.insert(&setup, "accounts", &[Value::Int(id), Value::Int(INITIAL)])?;
    }
    db.commit(setup)?;

    let stop = Arc::new(AtomicBool::new(false));
    let transfers = Arc::new(AtomicU64::new(0));
    let conflicts = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| -> socrates_common::Result<()> {
        for worker in 0..8u64 {
            let stop = Arc::clone(&stop);
            let transfers = Arc::clone(&transfers);
            let conflicts = Arc::clone(&conflicts);
            let sys = Arc::clone(&sys);
            scope.spawn(move || {
                let mut rng = Rng::new(worker + 1);
                while !stop.load(Ordering::Relaxed) {
                    // Always talk to the *current* primary (failover-aware).
                    let Ok(primary) = sys.primary() else { continue };
                    let db = primary.db();
                    let from = rng.gen_range(ACCOUNTS as u64) as i64;
                    let to = rng.gen_range(ACCOUNTS as u64) as i64;
                    if from == to {
                        continue;
                    }
                    let amount = 1 + rng.gen_range(50) as i64;
                    let h = db.begin();
                    let result = (|| -> socrates_common::Result<bool> {
                        let Some(src) = db.get(&h, "accounts", &[Value::Int(from)])? else {
                            return Ok(false);
                        };
                        if balance_of(&src) < amount {
                            return Ok(false); // insufficient funds
                        }
                        let dst = db.get(&h, "accounts", &[Value::Int(to)])?.expect("exists");
                        db.update(
                            &h,
                            "accounts",
                            &[Value::Int(from), Value::Int(balance_of(&src) - amount)],
                        )?;
                        db.update(
                            &h,
                            "accounts",
                            &[Value::Int(to), Value::Int(balance_of(&dst) + amount)],
                        )?;
                        Ok(true)
                    })();
                    match result {
                        Ok(true) => {
                            if db.commit(h).is_ok() {
                                transfers.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Ok(false) => db.abort(h),
                        Err(e) if e.kind() == "write_conflict" => {
                            db.abort(h);
                            conflicts.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => db.abort(h),
                    }
                }
            });
        }

        // Audit while transfers are running: every snapshot must balance.
        for audit in 0..5 {
            std::thread::sleep(std::time::Duration::from_millis(150));
            let primary = sys.primary()?;
            let db = primary.db();
            let h = db.begin();
            let rows = db.scan_range(
                &h,
                "accounts",
                &[Value::Int(0)],
                &[Value::Int(ACCOUNTS)],
                ACCOUNTS as usize,
            )?;
            let total: i64 = rows.iter().map(|r| balance_of(r)).sum();
            assert_eq!(total, ACCOUNTS * INITIAL, "audit {audit} found money leak!");
            println!(
                "audit {audit}: {} accounts, total balance {} ✓ ({} transfers, {} conflicts)",
                rows.len(),
                total,
                transfers.load(Ordering::Relaxed),
                conflicts.load(Ordering::Relaxed)
            );
            if audit == 2 {
                // Mid-run disaster: the primary dies. Committed transfers
                // survive; in-flight ones vanish atomically.
                println!("  !! killing the primary mid-workload");
                sys.kill_primary();
                sys.failover()?;
            }
        }
        stop.store(true, Ordering::SeqCst);
        Ok(())
    })?;

    // Final audit after the dust settles.
    let primary = sys.primary()?;
    let db = primary.db();
    let h = db.begin();
    let rows = db.scan_range(
        &h,
        "accounts",
        &[Value::Int(0)],
        &[Value::Int(ACCOUNTS)],
        ACCOUNTS as usize,
    )?;
    let total: i64 = rows.iter().map(|r| balance_of(r)).sum();
    assert_eq!(total, ACCOUNTS * INITIAL);
    println!(
        "final: {} transfers committed, {} conflicts retried, books balance at {total}",
        Arc::try_unwrap(transfers).map(|a| a.into_inner()).unwrap_or(0),
        Arc::try_unwrap(conflicts).map(|a| a.into_inner()).unwrap_or(0),
    );
    sys.shutdown();
    Ok(())
}

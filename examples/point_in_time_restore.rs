//! Point-in-time restore: recover from a fat-fingered bulk delete.
//!
//! Backups in Socrates are constant-time XStore snapshots; a restore
//! attaches the snapshots to fresh page servers and replays only the log
//! between the backup and the requested instant (paper §4.7). This example
//! takes a backup, commits more work, "accidentally" wipes a table, and
//! then restores to the LSN just before the disaster.
//!
//! ```sh
//! cargo run --example point_in_time_restore
//! ```

use socrates::{Socrates, SocratesConfig};
use socrates_engine::value::{ColumnType, Schema, Value};

fn count_rows(db: &socrates_engine::Database, table: &str) -> socrates_common::Result<usize> {
    let h = db.begin();
    Ok(db.scan_table(&h, table, usize::MAX)?.len())
}

fn main() -> socrates_common::Result<()> {
    let sys = Socrates::launch(SocratesConfig::fast_test())?;
    let primary = sys.primary()?;
    let db = primary.db();
    db.create_table(
        "ledger",
        Schema::new(vec![("id".into(), ColumnType::Int), ("entry".into(), ColumnType::Str)], 1),
    )?;

    // Era 1: 100 entries, then a backup.
    let h = db.begin();
    for i in 0..100 {
        db.insert(&h, "ledger", &[Value::Int(i), Value::Str(format!("entry-{i}"))])?;
    }
    db.commit(h)?;
    sys.checkpoint()?;
    let backup = sys.backup()?;
    println!("backup taken at {} (constant-time snapshots)", backup.backup_lsn);

    // Era 2: 50 more entries — work we want to keep.
    let h = db.begin();
    for i in 100..150 {
        db.insert(&h, "ledger", &[Value::Int(i), Value::Str(format!("entry-{i}"))])?;
    }
    db.commit(h)?;
    let good_lsn = primary.pipeline().hardened_lsn();
    println!("150 entries at {good_lsn}");

    // Era 3: the disaster — everything gets deleted.
    let h = db.begin();
    for i in 0..150 {
        db.delete(&h, "ledger", &[Value::Int(i)])?;
    }
    db.commit(h)?;
    println!("disaster: table wiped ({} rows visible)", count_rows(db, "ledger")?);

    // Restore to the moment before the disaster. The live deployment is
    // untouched; PITR produces a brand-new one.
    let restored = sys.restore_pitr(&backup, good_lsn)?;
    let rprimary = restored.primary()?;
    let rdb = rprimary.db();
    let n = count_rows(rdb, "ledger")?;
    println!("restored deployment sees {n} rows (expected 150)");
    assert_eq!(n, 150);
    // It is fully writable — a real fork of history.
    let h = rdb.begin();
    rdb.insert(&h, "ledger", &[Value::Int(999), Value::Str("post-restore".into())])?;
    rdb.commit(h)?;
    assert_eq!(count_rows(rdb, "ledger")?, 151);

    // And the original (wiped) deployment is still independently alive.
    assert_eq!(count_rows(db, "ledger")?, 0);
    println!("restore OK: history forked at {good_lsn}");
    restored.shutdown();
    sys.shutdown();
    Ok(())
}

//! Workspace-local `criterion` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! provides a minimal benchmark harness with criterion's API shape:
//! `Criterion::benchmark_group`, `sample_size`, `throughput`,
//! `bench_function` with `Bencher::iter` / `iter_batched`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Statistics are deliberately simple — each sample is one timed run of
//! the routine, and the report prints min / mean / max per-iteration time
//! (plus derived throughput when configured). There is no HTML report, no
//! outlier analysis, and no saved baselines; numbers print to stdout.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` should size its input batches. The shim always runs
/// one input per timed routine call, so the variants only exist for source
/// compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs (ignored by the shim).
    SmallInput,
    /// Large inputs (ignored by the shim).
    LargeInput,
    /// One fresh input per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Top-level handle passed to every benchmark function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.into(), sample_size: 10, throughput: None }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declare per-iteration work so the report can derive a rate.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Run one benchmark. `f` receives a [`Bencher`] and must call
    /// [`Bencher::iter`] or [`Bencher::iter_batched`] exactly once.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher { sample_size: self.sample_size, samples: Vec::new() };
        f(&mut bencher);
        report(&self.name, &id, &bencher.samples, self.throughput);
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; times the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `routine` for the configured number of samples (after one
    /// untimed warm-up call).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.samples = (0..self.sample_size)
            .map(|_| {
                let start = Instant::now();
                black_box(routine());
                start.elapsed()
            })
            .collect();
    }

    /// Time `routine` over inputs built by `setup`; setup time is untimed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.samples = (0..self.sample_size)
            .map(|_| {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                start.elapsed()
            })
            .collect();
    }
}

fn report(group: &str, id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples (bencher closure never called iter)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("nonempty");
    let max = *samples.iter().max().expect("nonempty");
    let mut line = format!(
        "{group}/{id}: time [{} {} {}] ({} samples)",
        fmt_duration(min),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
    if let Some(tp) = throughput {
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!(" thrpt {:.1} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!(
                        " thrpt {:.2} MiB/s",
                        n as f64 / secs / (1 << 20) as f64
                    ));
                }
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Define a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_surface_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut count = 0u64;
        group.bench_function("iter", |b| b.iter(|| count += 1));
        // 1 warmup + 3 samples
        assert_eq!(count, 4);
        group.bench_function(format!("batched_{}", 1), |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::PerIteration)
        });
        group.finish();
    }
}

//! Workspace-local `crossbeam` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! provides the one piece of crossbeam the workspace uses: the
//! multi-producer **multi-consumer** channel (`crossbeam::channel`).
//! `std::sync::mpsc` is not enough — the rbio transport clones the
//! `Receiver` across worker threads — so this is a small MPMC channel
//! built on a `Mutex<VecDeque>` + `Condvar` pair with sender/receiver
//! reference counting for disconnection semantics.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Error returned by [`Sender::send`] when every receiver is gone.
    /// The unsent message is handed back.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T: Send> std::error::Error for SendError<T> {}

    /// Error returned by [`Receiver::recv`]: the channel is empty and every
    /// sender is gone.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => f.write_str("receiving on an empty channel"),
                TryRecvError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The timeout elapsed with the channel still empty.
        Timeout,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvTimeoutError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
                RecvTimeoutError::Disconnected => {
                    f.write_str("receiving on an empty and disconnected channel")
                }
            }
        }
    }

    impl std::error::Error for RecvTimeoutError {}

    struct Inner<T> {
        queue: Mutex<VecDeque<T>>,
        /// Waiters blocked in `recv`/`recv_timeout` (channel empty) and, for
        /// bounded channels, waiters blocked in `send` (channel full).
        cond: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
        /// `usize::MAX` means unbounded.
        capacity: usize,
    }

    /// The sending half of a channel. Cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// The receiving half of a channel. Cloneable — every clone drains the
    /// same queue (MPMC), each message is delivered to exactly one receiver.
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Create an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_capacity(usize::MAX)
    }

    /// Create a bounded channel; `send` blocks while `cap` messages are
    /// queued. `cap = 0` behaves as capacity 1 (this shim does not implement
    /// rendezvous channels; the workspace never creates one).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_capacity(cap.max(1))
    }

    fn with_capacity<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            queue: Mutex::new(VecDeque::new()),
            cond: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
            capacity,
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Inner<T> {
        fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
            match self.queue.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Send a message, blocking if a bounded channel is full. Fails only
        /// when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let inner = &*self.inner;
            let mut queue = inner.lock();
            loop {
                // ordering: acquire — pairs with the AcqRel drop of the last
                // receiver; senders must not observe 0 before its queue effects
                if inner.receivers.load(Ordering::Acquire) == 0 {
                    return Err(SendError(msg));
                }
                if queue.len() < inner.capacity {
                    queue.push_back(msg);
                    drop(queue);
                    inner.cond.notify_all();
                    return Ok(());
                }
                queue = match inner.cond.wait_timeout(queue, Duration::from_millis(10)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            // ordering: acqrel — refcount; the last drop's release pairs with the
            // acquire checks in recv paths
            self.inner.senders.fetch_add(1, Ordering::AcqRel);
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            // ordering: acqrel — the final decrement releases all prior sends to
            // whichever receiver observes disconnection
            if self.inner.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender gone: wake blocked receivers so they observe
                // disconnection.
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receive a message, blocking until one arrives or every sender is
        /// dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let inner = &*self.inner;
            let mut queue = inner.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.cond.notify_all();
                    return Ok(msg);
                }
                // ordering: acquire — pairs with the AcqRel drop of the last sender:
                // observing 0 must also show every message they queued
                if inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = match inner.cond.wait_timeout(queue, Duration::from_millis(10)) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Receive a message if one is already queued.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let inner = &*self.inner;
            let mut queue = inner.lock();
            if let Some(msg) = queue.pop_front() {
                drop(queue);
                inner.cond.notify_all();
                return Ok(msg);
            }
            // ordering: acquire — pairs with the AcqRel drop of the last sender:
            // observing 0 must also show every message they queued
            if inner.senders.load(Ordering::Acquire) == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receive a message, waiting at most `timeout`.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let inner = &*self.inner;
            let mut queue = inner.lock();
            loop {
                if let Some(msg) = queue.pop_front() {
                    drop(queue);
                    inner.cond.notify_all();
                    return Ok(msg);
                }
                // ordering: acquire — pairs with the AcqRel drop of the last sender:
                // observing 0 must also show every message they queued
                if inner.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let wait = (deadline - now).min(Duration::from_millis(10));
                queue = match inner.cond.wait_timeout(queue, wait) {
                    Ok((g, _)) => g,
                    Err(p) => p.into_inner().0,
                };
            }
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.inner.lock().len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            // ordering: acqrel — refcount; see the senders counterpart above
            self.inner.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            // ordering: acqrel — the final decrement releases the drain to senders
            // that observe disconnection
            if self.inner.receivers.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last receiver gone: wake blocked senders so they observe
                // disconnection.
                self.inner.cond.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn send_recv_fifo() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnection_semantics() {
            let (tx, rx) = unbounded::<u32>();
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(5)),
                Err(RecvTimeoutError::Disconnected)
            );

            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(9).is_err());
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            let start = Instant::now();
            assert_eq!(rx.recv_timeout(Duration::from_millis(20)), Err(RecvTimeoutError::Timeout));
            assert!(start.elapsed() >= Duration::from_millis(20));
        }

        #[test]
        fn mpmc_workers_drain_shared_receiver() {
            let (tx, rx) = unbounded::<u32>();
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    thread::spawn(move || {
                        let mut got = Vec::new();
                        while let Ok(v) = rx.recv() {
                            got.push(v);
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for i in 0..100 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut all: Vec<u32> = workers.into_iter().flat_map(|w| w.join().unwrap()).collect();
            all.sort_unstable();
            assert_eq!(all, (0..100).collect::<Vec<_>>());
        }

        #[test]
        fn bounded_channel_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            let t = thread::spawn(move || {
                tx.send(3).unwrap(); // blocks until a slot frees
                "sent"
            });
            thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(t.join().unwrap(), "sent");
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Ok(3));
        }
    }
}

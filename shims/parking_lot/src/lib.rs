//! Workspace-local `parking_lot` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) slice of the parking_lot API the workspace
//! uses on top of `std::sync`. Semantics match parking_lot where it
//! matters here: guards are returned directly (no `Result`), poisoning is
//! transparently ignored (a panicking holder does not poison the lock for
//! everyone else), and `Condvar::wait_for` takes the guard by `&mut`.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// A mutual-exclusion lock. `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait_for`] can move the std guard out and back in.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
    // Condvar identity check (parking_lot panics on mixed-mutex waits;
    // we simply don't check) — not needed, kept out.
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: Some(inner) }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);
/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => RwLockReadGuard(g),
            Err(p) => RwLockReadGuard(p.into_inner()),
        }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => RwLockWriteGuard(g),
            Err(p) => RwLockWriteGuard(p.into_inner()),
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified. The guard is released during the wait and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard holds the lock");
        let g = match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard holds the lock");
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A one-time initialization flag (subset of parking_lot::Once).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Once {
    /// Create a new `Once`.
    pub const fn new() -> Once {
        Once { inner: std::sync::Once::new(), done: AtomicBool::new(false) }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(|| {
            f();
            self.done.store(true, Ordering::Release);
        });
    }

    /// Whether `call_once` has completed.
    pub fn state_done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g); // guard still functional after the wait
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the value is still there.
        assert_eq!(*m.lock(), 7);
    }
}

//! Workspace-local `parking_lot` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the (small) slice of the parking_lot API the workspace
//! uses on top of `std::sync`. Semantics match parking_lot where it
//! matters here: guards are returned directly (no `Result`), poisoning is
//! transparently ignored (a panicking holder does not poison the lock for
//! everyone else), and `Condvar::wait_for` takes the guard by `&mut`.
//!
//! On top of the parking_lot surface the shim adds **runtime lock-rank
//! checking** (debug builds only — see [`lock_rank`]). Long-lived locks
//! are constructed with [`Mutex::with_rank`] / [`RwLock::with_rank`];
//! every blocking acquisition of a ranked lock panics unless its rank
//! strictly exceeds every rank the thread already holds. This turns the
//! static acquisition-order analysis done by `soclint` into an invariant
//! the test suites exercise on every run: a new call path that nests
//! locks against the documented order dies loudly in CI instead of
//! deadlocking once in production. The rank table itself lives in
//! `common::lock_rank` (the shim sits below `common` in the dependency
//! graph and cannot name it).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Debug-only runtime lock-rank tracking.
///
/// Each thread keeps a stack of `(rank, name)` pairs for the ranked
/// guards it currently holds. The rules:
///
/// - rank `0` means *unranked* (the default from `Mutex::new`): never
///   tracked, never checked. Fine-grained per-object locks (per-page
///   latches, per-entry states) stay unranked; ranking them would force
///   a global order on objects that are never nested.
/// - a **blocking** acquire (`lock`, `read`, `write`) of a ranked lock
///   panics unless its rank is strictly greater than every rank held.
/// - `try_lock` never panics on rank (it cannot deadlock — it fails
///   instead of blocking) but still pushes, so locks acquired *after*
///   it are checked against it.
/// - `Condvar::wait`/`wait_for` pop the guard's rank for the duration
///   of the wait (the mutex really is released) and re-push it on
///   re-acquisition without re-checking.
/// - guards may be dropped in any order; release removes the matching
///   entry wherever it sits in the stack.
///
/// Release builds compile all of this away: the rank fields remain (so
/// layouts match) but no thread-local is touched.
pub mod lock_rank {
    #[cfg(debug_assertions)]
    use std::cell::RefCell;

    #[cfg(debug_assertions)]
    thread_local! {
        static HELD: RefCell<Vec<(u32, &'static str)>> = const { RefCell::new(Vec::new()) };
    }

    /// The `(rank, name)` pairs this thread currently holds, acquisition
    /// order. Always empty in release builds.
    pub fn held() -> Vec<(u32, &'static str)> {
        #[cfg(debug_assertions)]
        {
            HELD.with(|h| h.borrow().clone())
        }
        #[cfg(not(debug_assertions))]
        {
            Vec::new()
        }
    }

    /// Blocking-acquire path: panic on rank inversion, then push.
    pub(crate) fn check_and_push(rank: u32, name: &'static str) {
        if rank == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(&(top, top_name)) = h.iter().max_by_key(|&&(r, _)| r) {
                if rank <= top {
                    panic!(
                        "lock-rank inversion: blocking acquire of `{name}` (rank {rank}) \
                         while holding `{top_name}` (rank {top}); ranks must strictly \
                         increase on nested acquisition — see common::lock_rank for the \
                         workspace rank table"
                    );
                }
            }
            h.push((rank, name));
        });
        #[cfg(not(debug_assertions))]
        {
            let _ = name;
        }
    }

    /// Non-checking push (try_lock, condvar re-acquire).
    pub(crate) fn push(rank: u32, name: &'static str) {
        if rank == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        HELD.with(|h| h.borrow_mut().push((rank, name)));
        #[cfg(not(debug_assertions))]
        {
            let _ = name;
        }
    }

    /// Remove the most recent matching entry (guards drop in any order).
    pub(crate) fn release(rank: u32, name: &'static str) {
        if rank == 0 {
            return;
        }
        #[cfg(debug_assertions)]
        HELD.with(|h| {
            let mut h = h.borrow_mut();
            if let Some(pos) = h.iter().rposition(|&(r, n)| r == rank && n == name) {
                h.remove(pos);
            }
        });
        #[cfg(not(debug_assertions))]
        {
            let _ = name;
        }
    }
}

/// A mutual-exclusion lock. `lock()` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    rank: u32,
    name: &'static str,
    inner: std::sync::Mutex<T>,
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so
/// [`Condvar::wait_for`] can move the std guard out and back in.
pub struct MutexGuard<'a, T: ?Sized> {
    rank: u32,
    name: &'static str,
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Create a new (unranked) mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex { rank: 0, name: "", inner: std::sync::Mutex::new(value) }
    }

    /// Create a mutex participating in [`lock_rank`] checking. `rank`
    /// must come from the workspace rank table (`common::lock_rank`);
    /// `name` is reported in inversion panics.
    pub const fn with_rank(value: T, rank: u32, name: &'static str) -> Mutex<T> {
        Mutex { rank, name, inner: std::sync::Mutex::new(value) }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        lock_rank::check_and_push(self.rank, self.name);
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { rank: self.rank, name: self.name, inner: Some(inner) }
    }

    /// Try to acquire the lock without blocking. Exempt from the rank
    /// *check* (a failed try cannot deadlock) but the returned guard is
    /// still tracked so later blocking acquires are checked against it.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let inner = match self.inner.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return None,
        };
        lock_rank::push(self.rank, self.name);
        Some(MutexGuard { rank: self.rank, name: self.name, inner: Some(inner) })
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        lock_rank::release(self.rank, self.name);
    }
}

/// A reader-writer lock with parking_lot's panic-free guard API.
pub struct RwLock<T: ?Sized> {
    rank: u32,
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

/// Shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    rank: u32,
    name: &'static str,
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    rank: u32,
    name: &'static str,
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create a new (unranked) reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock { rank: 0, name: "", inner: std::sync::RwLock::new(value) }
    }

    /// Create a reader-writer lock participating in [`lock_rank`]
    /// checking; see [`Mutex::with_rank`].
    pub const fn with_rank(value: T, rank: u32, name: &'static str) -> RwLock<T> {
        RwLock { rank, name, inner: std::sync::RwLock::new(value) }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        lock_rank::check_and_push(self.rank, self.name);
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockReadGuard { rank: self.rank, name: self.name, inner }
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        lock_rank::check_and_push(self.rank, self.name);
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        RwLockWriteGuard { rank: self.rank, name: self.name, inner }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        lock_rank::release(self.rank, self.name);
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        lock_rank::release(self.rank, self.name);
    }
}

/// Result of a timed condition-variable wait.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable usable with this crate's [`Mutex`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Condvar {
        Condvar(std::sync::Condvar::new())
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Block until notified. The guard is released during the wait and
    /// re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard holds the lock");
        // The mutex really is released while we sleep: pop its rank so
        // the thread's held-set reflects reality, and re-push (without
        // re-checking — the nesting was validated at first acquire) once
        // the wait hands the lock back.
        lock_rank::release(guard.rank, guard.name);
        let g = match self.0.wait(g) {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        lock_rank::push(guard.rank, guard.name);
        guard.inner = Some(g);
    }

    /// Block until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard holds the lock");
        // Same rank bookkeeping as `wait` above.
        lock_rank::release(guard.rank, guard.name);
        let (g, res) = match self.0.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(p) => {
                let (g, res) = p.into_inner();
                (g, res)
            }
        };
        lock_rank::push(guard.rank, guard.name);
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A one-time initialization flag (subset of parking_lot::Once).
pub struct Once {
    inner: std::sync::Once,
    done: AtomicBool,
}

impl Once {
    /// Create a new `Once`.
    pub const fn new() -> Once {
        Once { inner: std::sync::Once::new(), done: AtomicBool::new(false) }
    }

    /// Run `f` exactly once across all callers.
    pub fn call_once<F: FnOnce()>(&self, f: F) {
        self.inner.call_once(|| {
            f();
            // ordering: Release publishes the init closure's writes to any
            // thread whose `state_done` Acquire load sees `true`.
            self.done.store(true, Ordering::Release);
        });
    }

    /// Whether `call_once` has completed.
    pub fn state_done(&self) -> bool {
        // ordering: Acquire pairs with the Release store in `call_once`,
        // so done == true implies the initialized state is visible.
        self.done.load(Ordering::Acquire)
    }
}

impl Default for Once {
    fn default() -> Self {
        Once::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
        drop(g); // guard still functional after the wait
    }

    #[test]
    fn condvar_notify_crosses_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        drop(g);
        t.join().unwrap();
    }

    #[test]
    fn poisoned_lock_recovers() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning, the value is still there.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rank_ordered_nesting_allowed_and_fully_released() {
        let a = Mutex::with_rank(1u32, 100, "test.a");
        let b = RwLock::with_rank(2u32, 200, "test.b");
        {
            let _ga = a.lock();
            let _gb = b.read();
            #[cfg(debug_assertions)]
            assert_eq!(lock_rank::held(), vec![(100, "test.a"), (200, "test.b")]);
        }
        assert!(lock_rank::held().is_empty());
    }

    #[test]
    fn rank_out_of_order_drop_releases_correct_entry() {
        let a = Mutex::with_rank(1u32, 100, "test.a");
        let b = Mutex::with_rank(2u32, 200, "test.b");
        let ga = a.lock();
        let gb = b.lock();
        drop(ga); // dropped out of acquisition order
        #[cfg(debug_assertions)]
        assert_eq!(lock_rank::held(), vec![(200, "test.b")]);
        drop(gb);
        assert!(lock_rank::held().is_empty());
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn rank_inversion_panics() {
        let hi = Mutex::with_rank(1u32, 200, "test.hi");
        let lo = Mutex::with_rank(2u32, 100, "test.lo");
        let _g_hi = hi.lock();
        let _g_lo = lo.lock(); // 100 <= 200 while held → inversion
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-rank inversion")]
    fn rank_equal_rank_nesting_panics() {
        let a = RwLock::with_rank(1u32, 300, "test.same");
        let _r1 = a.read();
        let _r2 = a.read(); // same-rank re-entry: deadlock-prone under writer priority
    }

    #[test]
    fn try_lock_is_exempt_from_rank_check_but_tracked() {
        let hi = Mutex::with_rank(1u32, 200, "test.hi");
        let lo = Mutex::with_rank(2u32, 100, "test.lo");
        let _g_hi = hi.lock();
        let g_lo = lo.try_lock().expect("uncontended"); // no panic: try_lock cannot deadlock
        #[cfg(debug_assertions)]
        assert_eq!(lock_rank::held(), vec![(200, "test.hi"), (100, "test.lo")]);
        drop(g_lo);
    }

    #[test]
    fn condvar_wait_pops_and_repushes_rank() {
        let m = Arc::new(Mutex::with_rank(false, 150, "test.cv"));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let t = std::thread::spawn(move || {
            // This thread's blocking acquire succeeds only because the
            // waiter's rank entry is popped for the wait's duration.
            *m2.lock() = true;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while !*g {
            cv.wait_for(&mut g, Duration::from_millis(50));
        }
        #[cfg(debug_assertions)]
        assert_eq!(lock_rank::held(), vec![(150, "test.cv")]);
        drop(g);
        assert!(lock_rank::held().is_empty());
        t.join().unwrap();
    }
}

//! Workspace-local `proptest` shim.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the slice of the proptest API the workspace's property
//! tests use: the `proptest!` / `prop_oneof!` / `prop_assert!` macros, the
//! [`strategy::Strategy`] trait with `prop_map`, `any::<T>()`, `Just`,
//! numeric range strategies, tuple strategies, `collection::vec`,
//! `option::of`, and a tiny `".{m,n}"` regex string strategy.
//!
//! Differences from real proptest, by design:
//! - **No shrinking.** A failing case panics with its seed; re-running is
//!   deterministic (fixed base seed per test name), so failures reproduce.
//! - `prop_assert!` / `prop_assert_eq!` panic instead of returning
//!   `Err(TestCaseError)`.
//! - Regex strategies support only the `.{m,n}` form the tests use.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Produce one value. Deterministic given the RNG state.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform produced values with `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe view of [`Strategy`] used by [`BoxedStrategy`].
    trait DynStrategy<V> {
        fn dyn_generate(&self, rng: &mut TestRng) -> V;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.dyn_generate(rng)
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Build from `(weight, strategy)` arms. Panics if all weights are 0.
        pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one nonzero weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! numeric_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (lo + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    numeric_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                    self.start + (self.end - self.start) * unit
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `".{m,n}"` regex string strategy: a printable-ASCII string whose
    /// length is uniform in `[m, n]`. Other patterns panic — extend this
    /// parser if a test needs more of the regex language.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (min, max) = parse_dot_repeat(self).unwrap_or_else(|| {
                panic!("unsupported regex strategy {self:?}; shim supports only \".{{m,n}}\"")
            });
            let len = min + rng.below((max - min + 1) as u64) as usize;
            (0..len).map(|_| (b' ' + rng.below(95) as u8) as char).collect()
        }
    }

    fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
        let rest = pattern.strip_prefix(".{")?.strip_suffix('}')?;
        let (min, max) = rest.split_once(',')?;
        let (min, max) = (min.trim().parse().ok()?, max.trim().parse().ok()?);
        (min <= max).then_some((min, max))
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Produce an arbitrary value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            // Printable ASCII keeps generated data readable in failures.
            (b' ' + rng.below(95) as u8) as char
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`: `any::<u8>()` etc.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange { min: r.start, max_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with size drawn from `size`.
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy: each element from `element`, length within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min + 1) as u64;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` from `inner` three times out of four, `None` otherwise
    /// (matching real proptest's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    /// Runner configuration. Only the fields the workspace's tests set are
    /// meaningful; `max_shrink_iters` is accepted but unused (no shrinking).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
        /// Accepted for source compatibility; this shim never shrinks.
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256, max_shrink_iters: 0 }
        }
    }

    /// Deterministic splitmix64 RNG; seeded per test name + case index so
    /// failures reproduce exactly on re-run.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a test name and case index.
        pub fn for_case(test_name: &str, case: u32) -> TestRng {
            let mut seed =
                0x9e37_79b9_7f4a_7c15u64 ^ (case as u64).wrapping_mul(0xff51_afd7_ed55_8ccd);
            for b in test_name.bytes() {
                seed = seed.rotate_left(7) ^ (b as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
            }
            TestRng { state: seed }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`. `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling kills modulo bias.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }

    /// Drive `f` through `config.cases` deterministic cases. On panic the
    /// failing case index is reported via a `[proptest-shim]` line before
    /// the panic propagates (no shrinking).
    pub fn run_cases<F: FnMut(&mut TestRng)>(config: &ProptestConfig, test_name: &str, mut f: F) {
        for case in 0..config.cases {
            let mut rng = TestRng::for_case(test_name, case);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                f(&mut rng);
            }));
            if let Err(panic) = result {
                eprintln!(
                    "[proptest-shim] {test_name}: case {case}/{} failed \
                     (deterministic; re-run reproduces it)",
                    config.cases
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: generated inputs bound with `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr); $($(#[$meta:meta])+ fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                // Build each strategy once, bound to the argument's name;
                // inside the case closure the name is shadowed by a
                // generated value.
                $(let $arg = $strat;)+
                $crate::test_runner::run_cases(&config, stringify!($name), |rng| {
                    $(let $arg = $crate::strategy::Strategy::generate(&$arg, rng);)+
                    $body
                });
            }
        )*
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Assert inside a property test (panics; this shim has no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assert inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::for_case("ranges", 0);
        for _ in 0..1000 {
            let v = crate::strategy::Strategy::generate(&(5i64..10), &mut rng);
            assert!((5..10).contains(&v));
            let v = crate::strategy::Strategy::generate(&(0usize..=3), &mut rng);
            assert!(v <= 3);
        }
    }

    #[test]
    fn regex_dot_repeat() {
        let mut rng = TestRng::for_case("regex", 0);
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&".{0,24}", &mut rng);
            assert!(s.len() <= 24);
            assert!(s.chars().all(|c| c.is_ascii() && !c.is_control()));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case("det", 3);
        let mut b = TestRng::for_case("det", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_case("det", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn macro_surface_compiles(
            v in proptest::collection::vec(any::<u8>(), 0..10),
            opt in proptest::option::of(0u64..5),
            choice in prop_oneof![
                2 => (0i64..10).prop_map(|x| x * 2),
                1 => Just(-1i64),
            ],
            s in ".{0,8}",
        ) {
            prop_assert!(v.len() < 10);
            if let Some(x) = opt {
                prop_assert!(x < 5);
            }
            prop_assert!(choice == -1 || (choice % 2 == 0 && (0..20).contains(&choice)));
            prop_assert!(s.len() <= 8);
        }
    }

    // `use proptest::prelude::*` resolves to this crate within its own tests.
    use crate as proptest;
}

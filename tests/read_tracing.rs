//! Integration: read-path span tracing.
//!
//! Drives a deployment through a commit workload, fails over so the
//! replacement primary's scan is all cache misses, and interrogates the
//! tracing layer end to end: every miss-path GetPage yields a complete
//! span, per-stage percentiles surface in the hub and both exporters,
//! the slow-op ring retains the worst spans in order, hedge outcomes are
//! stamped when hedging fires, and `read_trace_capacity = 0` turns the
//! whole subsystem off.

use socrates::{Socrates, SocratesConfig};
use socrates_common::obs::{
    json_snapshot, prometheus_text, testjson, HedgeOutcome, MetricValue, ReadStage,
};
use socrates_common::NodeId;
use socrates_engine::value::{ColumnType, Schema, Value};
use socrates_rbio::HedgeConfig;
use std::time::Duration;

const ROWS: u64 = 150;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Str)], 1)
}

/// Launch with `config`, commit `ROWS` rows, quiesce, fail over, and
/// cold-scan the table so every touched page goes over GetPage@LSN.
fn cold_read_deployment(config: SocratesConfig) -> Socrates {
    let sys = Socrates::launch(config).unwrap();
    {
        let primary = sys.primary().unwrap();
        let db = primary.db();
        db.create_table("t", schema()).unwrap();
        for i in 0..ROWS {
            let h = db.begin();
            db.insert(&h, "t", &[Value::Int(i as i64), Value::Str(format!("v{i}"))]).unwrap();
            db.commit(h).unwrap();
        }
        let frontier = primary.pipeline().hardened_lsn();
        sys.fabric().wait_applied(frontier, Duration::from_secs(30)).unwrap();
    }
    sys.kill_primary();
    let p = sys.failover().unwrap();
    let r = p.db().begin();
    let rows = p.db().scan_table(&r, "t", usize::MAX).unwrap();
    assert_eq!(rows.len(), ROWS as usize);
    sys
}

#[test]
fn miss_path_spans_are_complete_and_exported() {
    let sys = cold_read_deployment(SocratesConfig::fast_test());
    let trace = sys.read_trace();

    // The cold scan produced miss-path spans, and every one is complete:
    // all six stages stamped, non-zero total.
    let spans = trace.spans_recorded();
    assert!(spans > 0, "cold scan recorded no read spans");
    let traces = trace.traces();
    assert!(!traces.is_empty());
    for t in &traces {
        assert!(t.is_complete(), "incomplete span for {}: {t:?}", t.page);
        assert!(t.total_ns() > 0);
        assert!(t.range_width >= 1);
    }
    assert_eq!(trace.completed_traces().len(), traces.len());

    // Per-stage histograms surface under the primary in the hub, with one
    // sample per span.
    let snapshot = sys.hub().snapshot();
    for stage in ReadStage::ALL {
        let name = format!("read_stage_{}_us", stage.name());
        match snapshot.get(NodeId::PRIMARY, &name) {
            Some(MetricValue::Histogram(h)) => {
                assert_eq!(h.count, spans, "{name} count != spans recorded")
            }
            other => panic!("{name} missing or wrong type: {other:?}"),
        }
    }

    // Both exporters carry the stage histograms.
    let prom = prometheus_text(&snapshot);
    assert!(prom.contains("read_stage_net_rbio_us"), "prometheus export missing read stages");
    let json = testjson::parse(&json_snapshot(&snapshot)).expect("json export parses");
    let has_stage = json
        .get("metrics")
        .and_then(|m| m.as_array())
        .map(|samples| {
            samples.iter().any(|s| {
                s.get("metric").and_then(|n| n.as_str()) == Some("read_stage_server_serve_us")
            })
        })
        .unwrap_or(false);
    assert!(has_stage, "json export missing read stages");

    // The slow-op ring holds the worst spans, slowest first.
    let slow = trace.slow_ops();
    assert!(!slow.is_empty());
    for pair in slow.windows(2) {
        assert!(pair[0].total_ns() >= pair[1].total_ns(), "slow-op ring out of order");
    }
    sys.shutdown();
}

#[test]
fn hedged_reads_stamp_span_outcome() {
    // A zero hedge delay fires a hedge on effectively every remote call;
    // the second partition replica gives the hedge somewhere to go.
    let mut config = SocratesConfig::fast_test();
    config.hedge = HedgeConfig {
        enabled: true,
        min_delay: Duration::ZERO,
        max_delay: Duration::ZERO,
        ..HedgeConfig::default()
    };
    let sys = Socrates::launch(config).unwrap();
    {
        let primary = sys.primary().unwrap();
        let db = primary.db();
        db.create_table("t", schema()).unwrap();
        for i in 0..ROWS {
            let h = db.begin();
            db.insert(&h, "t", &[Value::Int(i as i64), Value::Str(format!("v{i}"))]).unwrap();
            db.commit(h).unwrap();
        }
        let frontier = primary.pipeline().hardened_lsn();
        sys.fabric().wait_applied(frontier, Duration::from_secs(30)).unwrap();
    }
    let pid = sys.fabric().partition_ids()[0];
    sys.fabric().add_partition_replica(pid).unwrap();
    sys.kill_primary();
    let p = sys.failover().unwrap();
    let r = p.db().begin();
    assert_eq!(p.db().scan_table(&r, "t", usize::MAX).unwrap().len(), ROWS as usize);

    let route = &sys.fabric().partition(pid).unwrap().route;
    assert!(route.hedges_fired().get() > 0, "zero-delay hedge never fired");

    // Hedge outcomes propagate onto the spans: every span whose fetch
    // hedged is stamped Won or Lost, and at least one hedged span exists.
    let hedged: Vec<HedgeOutcome> = sys
        .read_trace()
        .traces()
        .iter()
        .map(|t| t.hedge)
        .filter(|h| *h != HedgeOutcome::None)
        .collect();
    assert!(!hedged.is_empty(), "no span carries a hedge outcome");

    // The hedge counters surface in the hub under the route's first node.
    let snapshot = sys.hub().snapshot();
    match snapshot.get(NodeId::page_server(0), "hedge_fired") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0),
        other => panic!("hedge_fired missing or wrong type: {other:?}"),
    }
    assert!(
        matches!(snapshot.get(NodeId::page_server(0), "hedge_won"), Some(MetricValue::Counter(_))),
        "hedge_won not registered"
    );
    assert!(
        matches!(
            snapshot.get(NodeId::page_server(0), "hedge_delay_us"),
            Some(MetricValue::Gauge(_))
        ),
        "hedge_delay_us not registered"
    );
    sys.shutdown();
}

#[test]
fn capacity_zero_disables_read_tracing() {
    let mut config = SocratesConfig::fast_test();
    config.read_trace_capacity = 0;
    let sys = cold_read_deployment(config);
    let trace = sys.read_trace();

    assert!(!trace.is_enabled());
    assert_eq!(trace.spans_recorded(), 0);
    assert!(trace.traces().is_empty());
    assert!(trace.slow_ops().is_empty());

    // The stage histograms still exist in the hub (registration is
    // unconditional) but never receive a sample.
    let snapshot = sys.hub().snapshot();
    for stage in ReadStage::ALL {
        let name = format!("read_stage_{}_us", stage.name());
        match snapshot.get(NodeId::PRIMARY, &name) {
            Some(MetricValue::Histogram(h)) => assert_eq!(h.count, 0, "{name} recorded samples"),
            other => panic!("{name} missing or wrong type: {other:?}"),
        }
    }
    sys.shutdown();
}

//! Chaos suite III: the quorum WAL tier under a seeded acceptor-loss
//! schedule.
//!
//! One long scenario drives the standard insert workload against a
//! 3-acceptor quorum log while a deterministic, seed-derived schedule
//! kills and rejoins acceptors, opens `lz.quorum.append` error and
//! latency windows, and fails the primary over (which campaigns a new
//! term). Throughout, the suite asserts the quorum invariants:
//!
//! * **zero commit errors** — losing any single acceptor never surfaces
//!   to the workload (every `commit()` in this file unwraps);
//! * **durability-watermark monotonicity** — the quorum commit LSN never
//!   regresses, across losses, rejoins, fault windows, and elections;
//! * **rejoin convergence** — a restarted acceptor catches up to the
//!   commit watermark and its flush gauge in the hub agrees.
//!
//! The schedule seed comes from `CHAOS_SEED` (default 1); CI runs three
//! fixed seeds. The derived schedule and the fault registry's fired log
//! are written to `target/chaos/` so a failing run can be replayed from
//! the uploaded artifact.

use socrates::{Socrates, SocratesConfig};
use socrates_common::obs::MetricValue;
use socrates_common::rng::Rng;
use socrates_common::{Lsn, NodeId};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::fmt::Write as _;

const ROUNDS: usize = 6;
const BATCH: i64 = 40;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Str)], 1)
}

fn row(id: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("quorum-{id}-{}", "pad".repeat(40)))]
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// One disruption per workload round.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Action {
    /// Kill acceptor `idx` before the batch, rejoin it after — the batch
    /// commits on the surviving majority.
    KillRejoinAcceptor(usize),
    /// Kill one acceptor, fail the primary over while it is down (the
    /// new proposer campaigns with a majority), then rejoin.
    FailoverDuringAcceptorLoss(usize),
    /// A transient `lz.quorum.append` error window: some per-acceptor
    /// appends fail; commits ride the remaining acks or retry.
    AppendErrorWindow,
    /// An `lz.quorum.append` latency window while one acceptor is
    /// rejoining: catch-up streams through the slowdown (satellite 3's
    /// live-path counterpart).
    LatencyWindowDuringRejoin(usize),
}

/// Derive the full action schedule from the seed. Pure function of the
/// seed — asserted identical across derivations in-test.
fn derive_schedule(seed: u64) -> Vec<Action> {
    let mut rng = Rng::new(seed ^ 0x0AC_CE97);
    let mut actions = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let idx = rng.gen_range(3) as usize;
        let a = match rng.gen_range(4) {
            0 => Action::KillRejoinAcceptor(idx),
            1 => Action::FailoverDuringAcceptorLoss(idx),
            2 => Action::AppendErrorWindow,
            _ => Action::LatencyWindowDuringRejoin(idx),
        };
        // Every schedule exercises the two acceptance scenarios at fixed
        // slots: a failover-during-loss, and a latency-window rejoin.
        actions.push(match round {
            1 => Action::LatencyWindowDuringRejoin(idx),
            r if r == ROUNDS / 2 => Action::FailoverDuringAcceptorLoss(idx),
            _ => a,
        });
    }
    actions
}

/// Dump the schedule (and, once the run finishes, the fired fault log)
/// to `target/chaos/`. Written before the rounds start so a failing CI
/// run still uploads the schedule it was executing.
fn write_artifact(seed: u64, actions: &[Action], sys: Option<&Socrates>) {
    let dir = std::path::Path::new("target/chaos");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"seed\": {seed},");
    let _ = writeln!(out, "  \"actions\": [");
    for (i, a) in actions.iter().enumerate() {
        let comma = if i + 1 == actions.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{a:?}\"{comma}");
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"fired\": [");
    if let Some(sys) = sys {
        let fired = sys.fabric().faults.fired_log();
        for (i, e) in fired.iter().enumerate() {
            let comma = if i + 1 == fired.len() { "" } else { "," };
            let _ = writeln!(out, "    \"{}\"{comma}", e.render());
        }
    }
    let _ = writeln!(out, "  ]\n}}");
    let _ = std::fs::write(dir.join(format!("quorum-schedule-seed-{seed}.json")), out);
}

fn acceptor_flush_gauge(sys: &Socrates, idx: usize) -> i64 {
    match sys.hub().snapshot().get(NodeId::acceptor(idx as u32), "acceptor_flush_lsn") {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("acceptor_flush_lsn[{idx}]: {other:?}"),
    }
}

#[test]
fn seeded_acceptor_loss_schedule_commits_cleanly() {
    let seed = chaos_seed();
    let actions = derive_schedule(seed);
    assert_eq!(actions, derive_schedule(seed), "schedule derivation must be deterministic");
    write_artifact(seed, &actions, None);

    let config = SocratesConfig::fast_test().with_quorum(3, 0).with_fault_spec(seed, "");
    let sys = Socrates::launch(config).unwrap();
    sys.primary().unwrap().db().create_table("t", schema()).unwrap();
    let quorum = sys.fabric().quorum.as_ref().expect("quorum tier mounted").clone();
    assert!(quorum.term() >= 1, "launch runs the initial election");

    let mut committed: i64 = 0;
    let mut watermark = Lsn::ZERO;
    let mut read_rng = Rng::new(seed ^ 0x0BEAD);
    // The durability watermark must be monotone at every observation
    // point; this closure is the single place it is sampled.
    let check_watermark = |label: &str, floor: &mut Lsn| {
        let now = quorum.commit_lsn();
        assert!(now >= *floor, "{label}: durability watermark regressed from {floor} to {now}");
        *floor = now;
        now
    };

    // One batch through whatever primary exists; every commit unwraps —
    // the zero-commit-errors invariant is structural in this test.
    let write_batch = |committed: &mut i64| {
        let p = sys.primary().unwrap();
        let db = p.db();
        let h = db.begin();
        for i in 0..BATCH {
            db.insert(&h, "t", &row(*committed + i)).unwrap();
        }
        db.commit(h).unwrap();
        *committed += BATCH;
    };

    for (round, action) in actions.iter().enumerate() {
        let fabric = sys.fabric();
        match *action {
            Action::KillRejoinAcceptor(idx) => {
                fabric.kill_acceptor(idx).unwrap();
                write_batch(&mut committed);
                let after_loss = check_watermark("after commit under loss", &mut watermark);
                let flushed = fabric.restart_acceptor(idx).unwrap();
                assert!(
                    flushed >= after_loss,
                    "round {round}: rejoined acceptor {idx} at {flushed}, watermark {after_loss}"
                );
                assert!(
                    acceptor_flush_gauge(&sys, idx) >= after_loss.offset() as i64,
                    "round {round}: hub flush gauge lags the rejoin"
                );
            }
            Action::FailoverDuringAcceptorLoss(idx) => {
                let term_before = quorum.term();
                fabric.kill_acceptor(idx).unwrap();
                sys.kill_primary();
                // Recovery campaigns on the surviving majority.
                sys.failover().unwrap();
                assert!(
                    quorum.term() > term_before,
                    "round {round}: failover must bump the proposer term"
                );
                check_watermark("after failover election", &mut watermark);
                write_batch(&mut committed);
                check_watermark("after post-failover commit", &mut watermark);
                fabric.restart_acceptor(idx).unwrap();
            }
            Action::AppendErrorWindow => {
                fabric.faults.install_spec("lz.quorum.append@every:4=error:unavailable").unwrap();
                write_batch(&mut committed);
                check_watermark("after commit through error window", &mut watermark);
                assert!(
                    fabric.faults.fired_count(socrates_common::fault::sites::LZ_QUORUM_APPEND) > 0,
                    "round {round}: the append window never fired"
                );
                fabric.faults.clear();
            }
            Action::LatencyWindowDuringRejoin(idx) => {
                fabric.kill_acceptor(idx).unwrap();
                write_batch(&mut committed);
                let after_loss = check_watermark("after commit under loss", &mut watermark);
                fabric.faults.install_spec("lz.quorum.append@always=latency:200us").unwrap();
                let flushed = fabric.restart_acceptor(idx).unwrap();
                assert!(
                    flushed >= after_loss,
                    "round {round}: catch-up under latency stalled at {flushed} < {after_loss}"
                );
                fabric.faults.clear();
            }
        }

        // All acknowledged rows remain readable after every round.
        let p = sys.primary().unwrap();
        let r = p.db().begin();
        for _ in 0..15 {
            let id = (read_rng.gen_range(committed as u64)) as i64;
            assert_eq!(
                p.db().get(&r, "t", &[Value::Int(id)]).unwrap(),
                Some(row(id)),
                "round {round} ({action:?}): committed row {id} lost or stale"
            );
        }
    }

    // Final convergence: with all acceptors up, every flush reaches the
    // commit watermark (catch-up leaves no straggler behind).
    let final_mark = quorum.commit_lsn();
    assert!(final_mark > Lsn::ZERO);
    for (i, acc) in quorum.acceptors().iter().enumerate() {
        assert!(acc.is_up(), "acceptor {i} left down at schedule end");
        assert!(
            acc.flush_lsn() >= final_mark,
            "acceptor {i} flush {} below final watermark {final_mark}",
            acc.flush_lsn()
        );
    }
    assert!(
        quorum.metrics().elections.get() >= 2,
        "launch election plus at least one failover campaign"
    );
    write_artifact(seed, &actions, Some(&sys));
    sys.shutdown();
}

/// The two quorum message legs the seeded schedule above never opens:
/// an `lz.quorum.ack` drop loses the append ack *after* the acceptor
/// flushed (the proposer counts the remaining majority), and an
/// `lz.quorum.vote` error during a failover campaign makes one ballot
/// leg go dark (the new term still wins on the surviving votes).
#[test]
fn ack_loss_and_vote_faults_never_surface_to_commits() {
    let config = SocratesConfig::fast_test().with_quorum(3, 0).with_fault_spec(9, "");
    let sys = Socrates::launch(config).unwrap();
    sys.primary().unwrap().db().create_table("t", schema()).unwrap();
    let quorum = sys.fabric().quorum.as_ref().expect("quorum tier mounted").clone();
    let fabric = sys.fabric();
    let mut committed: i64 = 0;
    let write_batch = |committed: &mut i64| {
        let p = sys.primary().unwrap();
        let db = p.db();
        let h = db.begin();
        for i in 0..BATCH {
            db.insert(&h, "t", &row(*committed + i)).unwrap();
        }
        db.commit(h).unwrap();
        *committed += BATCH;
    };
    use socrates_common::fault::sites;

    // Drop every third ack: the proposer stops draining once quorum (2
    // of 3) assembles, so a single write sees only two ack checks —
    // several batches through the window guarantee the schedule fires,
    // and at most one ack per write is ever lost.
    fabric.faults.install_spec("lz.quorum.ack@every:3=drop").unwrap();
    let before = quorum.commit_lsn();
    for _ in 0..3 {
        write_batch(&mut committed);
    }
    assert!(quorum.commit_lsn() > before, "the ack window stalled the watermark");
    assert!(fabric.faults.fired_count(sites::LZ_QUORUM_ACK) > 0, "the ack window never fired");
    fabric.faults.clear();

    // One vote leg in each ballot round errors out; the campaign still
    // reaches two grants.
    let term_before = quorum.term();
    fabric.faults.install_spec("lz.quorum.vote@every:2=error:unavailable").unwrap();
    sys.kill_primary();
    sys.failover().unwrap();
    assert!(quorum.term() > term_before, "failover must bump the proposer term");
    assert!(fabric.faults.fired_count(sites::LZ_QUORUM_VOTE) > 0, "the vote fault never fired");
    fabric.faults.clear();
    write_batch(&mut committed);

    // Every acknowledged row survives both windows and the election.
    let p = sys.primary().unwrap();
    let r = p.db().begin();
    for id in 0..committed {
        assert_eq!(
            p.db().get(&r, "t", &[Value::Int(id)]).unwrap(),
            Some(row(id)),
            "committed row {id} lost across ack/vote fault windows"
        );
    }
    sys.shutdown();
}

#[test]
fn quorum_schedules_differ_across_seeds() {
    let a = derive_schedule(1);
    let b = derive_schedule(2);
    let c = derive_schedule(3);
    assert!(a != b || b != c, "seeds 1/2/3 collapsed to one schedule");
}

//! Integration: the XLOG tier hierarchy end to end — a consumer that falls
//! behind is served from progressively colder tiers, transparently.

use socrates::{Socrates, SocratesConfig};
use socrates_common::Lsn;
use socrates_engine::value::{ColumnType, Schema, Value};
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Bytes)], 1)
}

#[test]
fn slow_consumer_reads_from_cold_tiers() {
    let mut config = SocratesConfig::fast_test();
    // Tiny hot tiers force fall-through: 4 KiB of sequence map, 64 KiB of
    // XLOG SSD cache, 256 KiB landing zone.
    config.xlog.sequence_map_bytes = 4 << 10;
    config.xlog.ssd_cache_bytes = 64 << 10;
    config.lz_capacity = 256 << 10;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();

    // Produce several MB of log so early blocks age out of every hot tier.
    for batch in 0..20 {
        let h = db.begin();
        for i in 0..20 {
            db.upsert(&h, "t", &[Value::Int(batch * 20 + i), Value::Bytes(vec![7u8; 1600])])
                .unwrap();
        }
        db.commit(h).unwrap();
    }
    let xlog = &sys.fabric().xlog;
    // Wait until destaging has pushed the tail to the LT.
    let hardened = primary.pipeline().hardened_lsn();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while xlog.destaged_lsn() < hardened {
        assert!(std::time::Instant::now() < deadline, "destager stalled");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A brand-new consumer pulling from LSN 0 must be able to read the
    // whole stream even though the hot tiers only hold the tail.
    let pull = xlog.pull_blocks(Lsn::ZERO, usize::MAX, None).unwrap();
    assert_eq!(pull.next_lsn, xlog.released_lsn());
    assert!(
        xlog.metrics().served_from_lt.get() > 0,
        "cold reads must have come from the long-term archive"
    );
    // And the blocks chain correctly.
    let mut at = Lsn::ZERO;
    for b in &pull.blocks {
        assert!(b.start_lsn() >= at);
        at = b.end_lsn();
    }
    // The landing zone was truncated behind destaging (it is far smaller
    // than the produced log, so this is load-bearing).
    assert!(sys.fabric().lz.tail() > Lsn::ZERO);
    sys.shutdown();
}

#[test]
fn lz_backpressure_stalls_but_never_fails_commits() {
    let mut config = SocratesConfig::fast_test();
    config.lz_capacity = 128 << 10; // minuscule LZ
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    // Write more than the LZ can hold: commits must stall on destaging and
    // then succeed — never error.
    for batch in 0..16 {
        let h = db.begin();
        for i in 0..8 {
            db.upsert(&h, "t", &[Value::Int(batch * 8 + i), Value::Bytes(vec![1u8; 1600])])
                .unwrap();
        }
        db.commit(h).unwrap();
    }
    let r = db.begin();
    assert_eq!(db.scan_table(&r, "t", usize::MAX).unwrap().len(), 128);
    sys.shutdown();
}

//! Chaos suite II: failover under a seeded kill/restart schedule.
//!
//! One long scenario drives the standard insert/read workload while a
//! deterministic, seed-derived schedule kills and restarts page servers
//! and the primary — including a primary failover concurrent with a
//! page-server outage. After every disruption the suite asserts the
//! Socrates invariants: every acknowledged commit is readable after
//! recovery, GetPage@LSN never serves a stale page (read-your-commits
//! verified value-by-value), the lag watcher converges once the fault
//! window closes, and the metrics hub accounts for every injected fault.
//!
//! The schedule seed comes from `CHAOS_SEED` (default 1); CI runs three
//! fixed seeds. The derived schedule and the fault registry's fired log
//! are written to `target/chaos/` so a failing run can be replayed from
//! the uploaded artifact.

use socrates::{Socrates, SocratesConfig};
use socrates_common::fault::sites;
use socrates_common::obs::MetricValue;
use socrates_common::rng::Rng;
use socrates_common::NodeId;
use socrates_engine::value::{ColumnType, Schema, Value};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

const ROUNDS: usize = 8;
const BATCH: i64 = 60;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Str)], 1)
}

/// Wide enough that each round's batch spans multiple pages, so a cold
/// primary's reads always generate GetPage traffic for fault windows.
fn row(id: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("chaos-{id}-{}", "pad".repeat(60)))]
}

fn chaos_seed() -> u64 {
    std::env::var("CHAOS_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(1)
}

/// One disruption per workload round.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Action {
    /// Kill every server of partition 0, then restart it from XStore.
    KillRestartPartition,
    /// Kill the primary; ADR recovery brings up a replacement.
    PrimaryFailover,
    /// Kill partition 0 AND the primary, fail over while the partition is
    /// still down (degraded reads carry recovery), then restart it.
    FailoverDuringPartitionOutage,
    /// A transient RBIO fault window over the read path.
    TransportFaultWindow,
    /// A transient landing-zone write fault window over the commit path.
    LzFaultWindow,
}

/// Derive the full action schedule from the seed. Pure function of the
/// seed — asserted identical across derivations in-test, and the thing
/// dumped to the artifact.
fn derive_schedule(seed: u64) -> Vec<Action> {
    let mut rng = Rng::new(seed ^ 0xC4A05);
    let mut actions = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let a = match rng.gen_range(5) {
            0 => Action::KillRestartPartition,
            1 => Action::PrimaryFailover,
            2 => Action::FailoverDuringPartitionOutage,
            3 => Action::TransportFaultWindow,
            _ => Action::LzFaultWindow,
        };
        // Guarantee the acceptance scenario — failover concurrent with a
        // page-server outage — and at least one fault window appear in
        // every schedule.
        actions.push(match round {
            1 => Action::TransportFaultWindow,
            r if r == ROUNDS / 2 => Action::FailoverDuringPartitionOutage,
            _ => a,
        });
    }
    actions
}

fn json_list(out: &mut String, key: &str, items: &[String], last: bool) {
    let _ = writeln!(out, "  \"{key}\": [");
    for (i, item) in items.iter().enumerate() {
        let comma = if i + 1 == items.len() { "" } else { "," };
        let _ = writeln!(out, "    \"{item}\"{comma}");
    }
    let _ = writeln!(out, "  ]{}", if last { "" } else { "," });
}

/// Dump the schedule (and, once the run finishes, the fired log and the
/// slow-op span ring) to `target/chaos/`. Written before the rounds start
/// so a failing CI run still uploads the schedule it was executing.
fn write_artifact(seed: u64, actions: &[Action], sys: Option<&Socrates>) {
    let dir = std::path::Path::new("target/chaos");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let mut out = String::new();
    let _ = writeln!(out, "{{\n  \"seed\": {seed},");
    let acts: Vec<String> = actions.iter().map(|a| format!("{a:?}")).collect();
    json_list(&mut out, "actions", &acts, false);
    let (fired, spans) = match sys {
        Some(sys) => (
            sys.fabric().faults.fired_log().iter().map(|e| e.render()).collect(),
            sys.read_trace()
                .slow_ops()
                .iter()
                .map(|t| {
                    format!(
                        "page {} total_us {} width {}",
                        t.page,
                        t.total_ns() / 1_000,
                        t.range_width
                    )
                })
                .collect(),
        ),
        None => (Vec::new(), Vec::new()),
    };
    json_list(&mut out, "fired", &fired, false);
    json_list(&mut out, "slow_ops", &spans, true);
    let _ = writeln!(out, "}}");
    let _ = std::fs::write(dir.join(format!("schedule-seed-{seed}.json")), out);
}

/// Hub counter for `site`; sites that never had a rule installed have no
/// counter registered, which must agree with a fired count of zero.
fn hub_fault_count(sys: &Socrates, site: &str) -> u64 {
    match sys.hub().snapshot().get(NodeId::FAULT, &format!("fault_injected_total.{site}")) {
        Some(MetricValue::Counter(v)) => *v,
        None => 0,
        other => panic!("fault counter for {site} has wrong type: {other:?}"),
    }
}

fn eventually(mut pred: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(15);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn seeded_kill_restart_schedule_preserves_all_invariants() {
    let seed = chaos_seed();
    let actions = derive_schedule(seed);
    // Same-seed-identical-schedule, asserted in-test: the schedule is a
    // pure function of the seed, so a CI failure is replayable from the
    // artifact's seed alone.
    assert_eq!(actions, derive_schedule(seed), "schedule derivation must be deterministic");
    write_artifact(seed, &actions, None);

    let config = SocratesConfig::fast_test().with_fault_spec(seed, "");
    let sys = Socrates::launch(config).unwrap();
    sys.primary().unwrap().db().create_table("t", schema()).unwrap();
    let mut committed: i64 = 0;
    let mut read_rng = Rng::new(seed ^ 0x5EED5);

    for (round, action) in actions.iter().enumerate() {
        // Write a batch through whatever primary currently exists. Only
        // acknowledged commits count toward the durability assertion.
        let p = sys.primary().unwrap();
        let db = p.db();
        let h = db.begin();
        for i in 0..BATCH {
            db.insert(&h, "t", &row(committed + i)).unwrap();
        }
        db.commit(h).unwrap();
        committed += BATCH;
        let hardened = p.pipeline().hardened_lsn();
        sys.fabric().wait_applied(hardened, Duration::from_secs(15)).unwrap();
        // Ship a checkpoint so degraded reads can cover this round's
        // writes if the next action takes the whole partition down.
        sys.checkpoint().unwrap();

        let fabric = sys.fabric();
        match action {
            Action::KillRestartPartition => {
                let pid = fabric.partition_ids()[0];
                fabric.kill_partition(pid).unwrap();
                fabric.restart_partition(pid).unwrap();
                fabric.wait_applied(hardened, Duration::from_secs(15)).unwrap();
            }
            Action::PrimaryFailover => {
                sys.kill_primary();
                sys.failover().unwrap();
            }
            Action::FailoverDuringPartitionOutage => {
                let pid = fabric.partition_ids()[0];
                fabric.kill_partition(pid).unwrap();
                sys.kill_primary();
                // Recovery runs with the partition down: analysis needs
                // only the log, and any page it touches degrades to the
                // checkpoint.
                sys.failover().unwrap();
                fabric.restart_partition(pid).unwrap();
                fabric.wait_applied(hardened, Duration::from_secs(15)).unwrap();
            }
            Action::TransportFaultWindow => {
                fabric
                    .faults
                    .install_spec("rbio.transport.send@every:2=error:unavailable")
                    .unwrap();
                // A cold replacement primary pages everything in through
                // the faulted transport; the client's retry budget carries
                // every read through the window.
                sys.kill_primary();
                let p = sys.failover().unwrap();
                let r = p.db().begin();
                for _ in 0..30 {
                    let id = (read_rng.gen_range(committed as u64)) as i64;
                    assert_eq!(p.db().get(&r, "t", &[Value::Int(id)]).unwrap(), Some(row(id)));
                }
                assert!(
                    fabric.faults.fired_count(sites::RBIO_SEND) > 0,
                    "round {round}: the transport window never fired"
                );
                fabric.faults.clear();
            }
            Action::LzFaultWindow => {
                fabric.faults.install_spec("lz.write@every:3=error:unavailable").unwrap();
                let p = sys.primary().unwrap();
                let db = p.db();
                // Several small commits so the window sees several LZ
                // flushes; each commit retries through the faults and,
                // once acknowledged, joins the durable set.
                for _ in 0..4 {
                    let h = db.begin();
                    for i in 0..(BATCH / 4) {
                        db.insert(&h, "t", &row(committed + i)).unwrap();
                    }
                    db.commit(h).unwrap();
                    committed += BATCH / 4;
                }
                assert!(
                    fabric.faults.fired_count(sites::LZ_WRITE) > 0,
                    "round {round}: the LZ window never fired"
                );
                fabric.faults.clear();
            }
        }

        // Invariants after every round: all acknowledged commits readable
        // with the values they were committed with (freshness — a stale
        // page would surface as a missing or old row), spot-checked plus
        // a full count.
        let p = sys.primary().unwrap();
        let r = p.db().begin();
        for _ in 0..20 {
            let id = (read_rng.gen_range(committed as u64)) as i64;
            assert_eq!(
                p.db().get(&r, "t", &[Value::Int(id)]).unwrap(),
                Some(row(id)),
                "round {round} ({action:?}): committed row {id} lost or stale"
            );
        }
        assert_eq!(
            p.db().scan_table(&r, "t", usize::MAX).unwrap().len(),
            committed as usize,
            "round {round} ({action:?}): scan disagrees with acknowledged commits"
        );
    }

    // The lag watcher converges once the fault windows close: no lag left
    // behind by killed/restarted servers.
    let lag = || match sys.hub().snapshot().get(NodeId::XLOG, "max_pageserver_lag_bytes") {
        Some(MetricValue::Gauge(v)) => *v,
        other => panic!("max_pageserver_lag_bytes: {other:?}"),
    };
    eventually(|| lag() == 0, "page-server lag to drain after the chaos schedule");

    // Every injected fault is accounted for in the hub, per site.
    let mut total = 0;
    for site in sites::ALL {
        let fired = sys.fabric().faults.fired_count(site);
        assert_eq!(hub_fault_count(&sys, site), fired, "hub miscounts {site}");
        total += fired;
    }
    assert_eq!(total, sys.fabric().faults.total_fired());
    assert!(total > 0, "the schedule should have injected at least one fault");

    write_artifact(seed, &actions, Some(&sys));
    sys.shutdown();
}

#[test]
fn schedule_derivation_differs_across_seeds() {
    // Not a tautology of derive_schedule's purity: three fixed CI seeds
    // must actually exercise different schedules.
    let a = derive_schedule(1);
    let b = derive_schedule(2);
    let c = derive_schedule(3);
    assert!(a != b || b != c, "seeds 1/2/3 collapsed to one schedule");
}

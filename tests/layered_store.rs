//! Acceptance properties of the layered page-version store.
//!
//! Two end-to-end claims ride on the L0/L1 layer design:
//!
//! 1. Resolution is path-independent: over random interleavings of writes,
//!    checkpoints, compactions, and GC passes, `GetPage(X, lsn)` answers
//!    for any LSN between the GC horizon and the applied frontier exactly
//!    as a replacement server re-deriving the partition from XStore + log
//!    would answer — images and merged deltas are an optimization, never
//!    a semantic.
//! 2. Branches are zero-copy and isolated: a branch created at `lsn_b`
//!    serves all pre-branch history from the parent's own layer `Arc`s,
//!    keeps serving it after the parent is crashed mid-compaction, and
//!    divergent writes never leak in either direction.

use socrates::{Socrates, SocratesConfig};
use socrates_common::fault::sites;
use socrates_common::{Error, Lsn, PageId};
use socrates_engine::value::{ColumnType, Schema, Value};
use socrates_storage::pageops::PageOp;
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Int)], 1)
}

fn row(id: i64, v: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Int(v)]
}

/// A page image with its checksum field zeroed: the CRC is only maintained
/// at I/O boundaries, so two reads of the same version may differ there
/// depending on which tier served them.
fn canon(p: &socrates_storage::Page) -> Vec<u8> {
    let mut b = p.as_bytes().to_vec();
    b[4..8].fill(0);
    b
}

/// How a probe resolved: a canonical page image, or which error class.
#[derive(PartialEq, Debug)]
enum Probe {
    Version(Lsn, Vec<u8>),
    NoVersion,
}

fn probe(ps: &socrates_pageserver::PageServer, page: PageId, lsn: Lsn) -> Probe {
    match ps.get_page_at(page, lsn) {
        Ok(p) => Probe::Version(p.page_lsn(), canon(&p)),
        Err(Error::NotFound(_)) => Probe::NoVersion,
        Err(e) => panic!("probe ({page}, {lsn}) failed unexpectedly: {e}"),
    }
}

/// One seeded run of the interleaving property.
fn interleaving_resolves_like_replay(seed: u64) {
    let config = SocratesConfig::fast_test().with_layer_knobs(256, usize::MAX >> 1);
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..30 {
        db.insert(&h, "t", &row(i, 0)).unwrap();
    }
    db.commit(h).unwrap();
    let fabric = sys.fabric();
    let pid = fabric.partition_ids()[0];
    let spec = fabric.partition_spec(pid);
    let ps = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);
    let mut rng = socrates_common::rng::Rng::new(seed);

    // Random interleaving: mostly writes, with checkpoints, explicit
    // compaction passes, and GC passes (retention is at its default
    // keep-everything setting, so GC exercises the no-op edge) mixed in.
    let mut compactions = 0;
    let mut recorded: Vec<(PageId, Lsn, Probe)> = Vec::new();
    for _ in 0..40 {
        match rng.gen_range(10) {
            0..=5 => {
                let h = db.begin();
                for _ in 0..=rng.gen_range(8) {
                    let id = rng.gen_range(30) as i64;
                    db.update(&h, "t", &row(id, rng.gen_range(1 << 20) as i64)).unwrap();
                }
                db.commit(h).unwrap();
                let lsn = p.pipeline().hardened_lsn();
                fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();
                // Witness this frontier on a handful of random pages.
                for _ in 0..4 {
                    let page = PageId::new(spec.base_page + rng.gen_range(48));
                    recorded.push((page, lsn, probe(&ps, page, lsn)));
                }
            }
            6 | 7 => {
                sys.checkpoint().unwrap();
            }
            8 => compactions += usize::from(ps.compact_blocking().unwrap()),
            _ => assert_eq!(ps.gc().unwrap(), None, "GC must be a no-op without retention"),
        }
    }
    if compactions == 0 {
        // The draw can miss the compaction op; run one so every seed
        // exercises resolution through an L1 image.
        compactions += usize::from(ps.compact_blocking().unwrap());
    }
    assert!(compactions > 0, "seed {seed}: nothing sealed, nothing compacted");
    let frontier = ps.applied_lsn();

    // Random historical probes across the whole retained range.
    for _ in 0..200 {
        let page = PageId::new(spec.base_page + rng.gen_range(48));
        let lsn = Lsn::new(1 + rng.gen_range(frontier.offset()));
        recorded.push((page, lsn, probe(&ps, page, lsn)));
    }

    // Replace the server: the successor re-derives everything from the
    // checkpoint blobs plus the log. Its history floor is the checkpoint
    // watermark — log below it is insulated away — so versions at or
    // above the watermark must resolve identically; older ones may be
    // gone, but must never resolve to different bytes.
    let wm = ps.checkpointed_lsn();
    assert!(fabric.kill_partition(pid).is_some());
    fabric.restart_partition(pid).unwrap();
    fabric.wait_applied(frontier, Duration::from_secs(15)).unwrap();
    let replay = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);
    let mut strict = 0;
    for (page, lsn, want) in &recorded {
        let got = probe(&replay, *page, *lsn);
        if *lsn >= wm {
            strict += 1;
            assert_eq!(
                got, *want,
                "seed {seed}: ({page}, {lsn}) resolves differently after re-derivation"
            );
        } else if matches!(got, Probe::Version(..)) {
            assert_eq!(got, *want, "seed {seed}: pre-watermark ({page}, {lsn}) rewrote history");
        }
    }
    assert!(strict > 0, "seed {seed}: no probe landed above the checkpoint watermark");
    sys.shutdown();
}

#[test]
fn random_interleavings_resolve_like_replay() {
    for seed in [11, 29, 47] {
        interleaving_resolves_like_replay(seed);
    }
}

/// The branch acceptance story, end to end through the fabric: zero-copy
/// sharing, two-way isolation, and survival of the parent's
/// mid-compaction crash.
#[test]
fn fabric_branches_share_history_and_survive_parent_crash() {
    let mut config = SocratesConfig::fast_test().with_layer_knobs(256, usize::MAX >> 1);
    config.fault_seed = 0xB4A9C;
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for round in 0..4i64 {
        let h = db.begin();
        for i in 0..20 {
            db.insert(&h, "t", &row(round * 20 + i, round)).unwrap();
        }
        db.commit(h).unwrap();
    }
    let branch_point = p.pipeline().hardened_lsn();
    let fabric = sys.fabric();
    fabric.wait_applied(branch_point, Duration::from_secs(10)).unwrap();
    let pid = fabric.partition_ids()[0];
    let spec = fabric.partition_spec(pid);
    let parent = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);

    let branch = fabric.branch_partition(pid, branch_point).unwrap();
    // Zero-copy: every branch layer is literally the parent's allocation.
    let branch_deltas = branch.layers().delta_layers();
    assert!(!branch_deltas.is_empty(), "the branch carried no history");
    for bl in &branch_deltas {
        assert!(
            parent.layers().delta_layers().iter().any(|pl| Arc::ptr_eq(pl, bl)),
            "branch delta layer not shared with parent"
        );
    }
    for bi in &branch.layers().image_layers() {
        assert!(parent.layers().image_layers().iter().any(|pi| Arc::ptr_eq(pi, bi)));
    }

    // Pre-branch history answers identically from both sides.
    let mut rng = socrates_common::rng::Rng::new(0xB7);
    let mut witnessed = Vec::new();
    for _ in 0..60 {
        let page = PageId::new(spec.base_page + rng.gen_range(48));
        let lsn = Lsn::new(1 + rng.gen_range(branch_point.offset()));
        let from_branch = probe(&branch, page, lsn);
        assert_eq!(probe(&parent, page, lsn), from_branch, "({page}, {lsn}) differs on branch");
        witnessed.push((page, lsn, from_branch));
    }

    // Divergence: the branch ingests a write the parent never sees, and
    // the parent's post-branch commits never reach the branch.
    let own_page = PageId::new(spec.base_page + spec.span - 1);
    let ingest_lsn = Lsn::new(branch_point.offset() + 1);
    branch
        .ingest(
            own_page,
            &PageOp::Format { ptype: socrates_storage::PageType::BTreeLeaf },
            ingest_lsn,
        )
        .unwrap();
    assert!(branch.get_page_at(own_page, ingest_lsn).is_ok());
    assert!(
        matches!(parent.get_page_at(own_page, parent.applied_lsn()), Err(Error::NotFound(_))),
        "divergent branch write leaked into the parent"
    );
    let h = db.begin();
    db.insert(&h, "t", &row(500, 500)).unwrap();
    db.commit(h).unwrap();
    let post = p.pipeline().hardened_lsn();
    fabric.wait_applied(post, Duration::from_secs(10)).unwrap();
    assert_eq!(
        branch.applied_lsn(),
        ingest_lsn,
        "parent commits moved the branch frontier; isolation is broken"
    );

    // Crash the parent mid-compaction. The branch holds its own Arcs to
    // the shared layers, so every witnessed version keeps serving.
    fabric.faults.install_spec("ps.compact.merge@always=crash").unwrap();
    assert!(matches!(parent.compact_blocking(), Err(Error::Unavailable(_))));
    assert_eq!(fabric.faults.fired_count(sites::PS_COMPACT_MERGE), 1);
    fabric.faults.clear();
    for (page, lsn, want) in &witnessed {
        assert_eq!(
            probe(&branch, *page, *lsn),
            *want,
            "({page}, {lsn}) lost on the branch after the parent crashed"
        );
    }

    // The parent's replacement re-derives its history; the branch's
    // divergent page stays its own.
    assert!(fabric.kill_partition(pid).is_some());
    fabric.restart_partition(pid).unwrap();
    fabric.wait_applied(post, Duration::from_secs(15)).unwrap();
    let revived = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);
    for (page, lsn, want) in &witnessed {
        assert_eq!(probe(&revived, *page, *lsn), *want);
    }
    assert!(matches!(
        revived.get_page_at(own_page, revived.applied_lsn()),
        Err(Error::NotFound(_))
    ));

    // Dropping the branch releases the parent layers it pinned (and its
    // metrics-node gauges, which hold strong Arcs to the branch).
    let pinned = Arc::clone(&branch_deltas[0]);
    let before = Arc::strong_count(&pinned);
    assert!(fabric.drop_branch(&branch));
    assert!(!fabric.drop_branch(&branch), "double drop must be a no-op");
    drop(branch);
    drop(branch_deltas);
    assert!(
        Arc::strong_count(&pinned) < before,
        "dropping the branch released none of the layers it pinned"
    );
    sys.shutdown();
}

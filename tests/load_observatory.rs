//! End-to-end checks of the open-loop load observatory: a live
//! deployment driven by the arrival-schedule driver, with the phase
//! records, hub wiring, SLO scoring, and bottleneck attribution all
//! produced the way `benchrec` consumes them.

use socrates::{Socrates, SocratesConfig};
use socrates_bench::loadgen::{
    build_schedule, run_phase, secondary_kill_scenario, seed_load_table, Arrival, FabricExecutor,
    LoadRecorder, LoadSpec, OpMix,
};
use socrates_bench::setup::Effort;
use socrates_common::obs::MetricValue;
use socrates_common::NodeId;
use std::time::Duration;

#[test]
fn open_loop_phase_against_a_live_deployment() {
    let config = SocratesConfig::fast_test()
        .with_secondaries(1)
        .with_hub_history(256, Duration::from_millis(10))
        .with_slo_spec("client.0.load_intended_us.p99 < 5s over 2s");
    let sys = Socrates::launch(config).unwrap();
    seed_load_table(&sys, 100).unwrap();
    let recorder = LoadRecorder::new();
    recorder.register(sys.hub());
    let exec = FabricExecutor::new(&sys, 100, None);

    let spec = LoadSpec {
        arrival: Arrival::Poisson { rate_hz: 400.0 },
        sessions: 5_000,
        mix: OpMix::parse("commit=25,read=60,scan=15").unwrap(),
        duration: Duration::from_millis(500),
        seed: 11,
        workers: 4,
    };
    let schedule = build_schedule(&spec);
    assert!(!schedule.is_empty());
    let phase = recorder.begin_phase("smoke", spec.arrival.rate_hz());
    let start = sys.hub().snapshot();
    let t0 = std::time::Instant::now();
    run_phase(&phase, &schedule, spec.workers, &exec);
    let wall = t0.elapsed();
    let end = sys.hub().snapshot();

    // Open-loop invariant: the whole schedule was dispatched, and the
    // vast majority completed without error against a healthy system.
    assert_eq!(phase.dispatched(), schedule.len() as u64);
    assert_eq!(phase.completed(), schedule.len() as u64);
    assert_eq!(phase.errors(), 0, "healthy deployment must not error");
    assert!(phase.achieved_hz() > 0.0);

    // Percentile curves are monotone and non-empty.
    let curve = phase.intended_snapshot().curve();
    assert!(!curve.is_empty());
    assert!(curve.windows(2).all(|w| w[0].us <= w[1].us));
    assert!(curve.windows(2).all(|w| w[0].q < w[1].q));

    // The live hub metrics saw the run (this is what the SLO engine and
    // `socmon --load` score).
    let client = NodeId::client(0);
    match end.get(client, "load_completed_total") {
        Some(MetricValue::Counter(c)) => assert_eq!(*c, schedule.len() as u64),
        other => panic!("load_completed_total missing: {other:?}"),
    }

    // Attribution produces a full ranked table over the phase window.
    let rows = socrates_bench::loadgen::attribute_window(&start, &end, wall);
    assert!(rows.len() >= 8);
    assert!(rows.windows(2).all(|w| w[0].score >= w[1].score));

    // The SLO configured over the load histogram was actually evaluated
    // against in-window history samples.
    let statuses = sys.fabric().slo_statuses();
    assert_eq!(statuses.len(), 1);
    assert!(statuses[0].samples > 0, "history must have scored the run live");
    assert!(!statuses[0].breaching, "a 5s p99 budget cannot breach here");

    sys.shutdown();
}

#[test]
fn secondary_kill_scenario_keeps_offering_load() {
    let rec = secondary_kill_scenario(Effort::Quick, 77).unwrap();
    assert_eq!(rec.name, "secondary_kill");
    assert_eq!(rec.phases.len(), 3);
    let names: Vec<&str> = rec.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, ["steady", "kill", "recovered"]);
    for phase in &rec.phases {
        // The acceptance criterion: offered load never drops through
        // the kill — every phase offers the same rate and dispatches
        // its entire schedule.
        assert!((phase.offered_hz - rec.phases[0].offered_hz).abs() < 1e-9);
        assert!(phase.dispatched > 0);
        assert_eq!(phase.dispatched, phase.completed);
        assert!(!phase.intended.is_empty());
        assert!(!phase.service.is_empty());
        assert!(!phase.attribution.is_empty());
        // Reads route around the killed replica instead of failing.
        assert_eq!(phase.errors, 0, "phase {} saw errors", phase.name);
    }
}

//! Chaos suite I: deterministic fault injection at every site, one failure
//! mode at a time.
//!
//! Each test arms the deployment-wide [`FaultRegistry`] at one of the
//! Socrates failure points (LZ writes, the lossy feed, RBIO transport,
//! page-server serving, XStore ops) and asserts the paper's separation of
//! durability from availability: acknowledged commits survive, reads stay
//! fresh, convergence resumes once the fault window closes, and every
//! injected fault is visible in the metrics hub.

use socrates::{Socrates, SocratesConfig};
use socrates_common::fault::sites;
use socrates_common::obs::MetricValue;
use socrates_common::{Error, Lsn, NodeId, PageId};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Str)], 1)
}

fn row(id: i64, tag: &str) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("{tag}-{id}"))]
}

/// `fault_injected_total.<site>` from the hub, as a plain number.
fn hub_fault_count(sys: &Socrates, site: &str) -> u64 {
    match sys.hub().snapshot().get(NodeId::FAULT, &format!("fault_injected_total.{site}")) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("fault counter for {site} missing or wrong type: {other:?}"),
    }
}

/// Assert the hub counter for `site` agrees with the registry's own count.
fn assert_hub_matches_registry(sys: &Socrates, site: &str) {
    assert_eq!(
        hub_fault_count(sys, site),
        sys.fabric().faults.fired_count(site),
        "hub and registry disagree for {site}"
    );
}

/// A row wide enough that 2000 of them overflow a 24-page cache.
fn wide_row(id: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Str(format!("{id}-{}", "pad".repeat(60)))]
}

/// One fully deterministic run: single-threaded reads against a tiny
/// cache with the I/O scheduler off, faults armed on the RBIO send leg.
/// Returns the rendered per-site fired log.
fn deterministic_send_fault_run(fault_seed: u64) -> Vec<String> {
    let config = SocratesConfig::fast_test()
        .with_cache(24, 0)
        .with_scheduler(false)
        .with_fault_spec(fault_seed, "rbio.transport.send@every:5=error:unavailable");
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    // Enough padded rows that the 24-page cache cannot hold the table:
    // the reads below must generate GetPage traffic.
    for batch in 0..20i64 {
        let h = db.begin();
        for i in 0..100 {
            db.insert(&h, "t", &wide_row(batch * 100 + i)).unwrap();
        }
        db.commit(h).unwrap();
    }
    // Point reads in a fixed scattered order; every miss is a GetPage and
    // every 5th send leg errors, exercising the client's retry loop.
    let h = db.begin();
    let mut rng = socrates_common::rng::Rng::new(7);
    for _ in 0..200 {
        let id = rng.gen_range(2000) as i64;
        assert_eq!(
            db.get(&h, "t", &[Value::Int(id)]).unwrap(),
            Some(wide_row(id)),
            "read of committed row {id} failed under send faults"
        );
    }
    assert!(
        p.io().cache().stats().fetches.get() > 0,
        "the cache held everything; no remote traffic to fault"
    );
    let log: Vec<String> = sys
        .fabric()
        .faults
        .fired_log()
        .iter()
        .filter(|e| e.site == sites::RBIO_SEND)
        .map(|e| e.render())
        .collect();
    assert_hub_matches_registry(&sys, sites::RBIO_SEND);
    sys.shutdown();
    log
}

#[test]
fn same_seed_gives_identical_fault_schedule() {
    let a = deterministic_send_fault_run(0xC0FFEE);
    let b = deterministic_send_fault_run(0xC0FFEE);
    assert!(!a.is_empty(), "the schedule never fired");
    assert_eq!(a, b, "same seed must give an identical fault schedule");
    // A different seed still fires (every:5 is seed-independent), so the
    // comparison above is not vacuous about the log plumbing.
    let c = deterministic_send_fault_run(0xBAD5EED);
    assert_eq!(a.len(), c.len(), "nth-call schedules are count-deterministic across seeds");
}

/// The response leg mirrors the send leg: the server already replied,
/// the client loses the reply. Every retry re-issues the request, so
/// reads stay correct and the fired log shows the recv site.
#[test]
fn recv_leg_faults_are_retried_like_send_faults() {
    let config = SocratesConfig::fast_test()
        .with_cache(24, 0)
        .with_scheduler(false)
        .with_fault_spec(3, "rbio.transport.recv@every:7=error:unavailable");
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for batch in 0..20i64 {
        let h = db.begin();
        for i in 0..100 {
            db.insert(&h, "t", &wide_row(batch * 100 + i)).unwrap();
        }
        db.commit(h).unwrap();
    }
    let h = db.begin();
    let mut rng = socrates_common::rng::Rng::new(11);
    for _ in 0..200 {
        let id = rng.gen_range(2000) as i64;
        assert_eq!(
            db.get(&h, "t", &[Value::Int(id)]).unwrap(),
            Some(wide_row(id)),
            "read of committed row {id} failed under recv faults"
        );
    }
    assert!(
        p.io().cache().stats().fetches.get() > 0,
        "the cache held everything; no remote traffic to fault"
    );
    assert!(
        sys.fabric().faults.fired_count(sites::RBIO_RECV) > 0,
        "the recv fault schedule never fired"
    );
    assert_hub_matches_registry(&sys, sites::RBIO_RECV);
    sys.shutdown();
}

#[test]
fn lz_write_faults_are_absorbed_and_commits_stay_durable() {
    let config =
        SocratesConfig::fast_test().with_fault_spec(11, "lz.write@every:6=error:unavailable");
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for batch in 0..20i64 {
        let h = db.begin();
        for i in 0..10 {
            db.insert(&h, "t", &row(batch * 10 + i, "lz")).unwrap();
        }
        // The flusher sees periodic LZ write failures; the commit path
        // must retry through them, never acknowledge a lost commit.
        db.commit(h).unwrap();
    }
    assert!(
        sys.fabric().faults.fired_count(sites::LZ_WRITE) > 0,
        "the LZ fault schedule never fired"
    );
    assert_hub_matches_registry(&sys, sites::LZ_WRITE);
    // Durability: a cold replacement primary recovers every acknowledged
    // commit from the (fault-scarred but quorum-written) log.
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 200);
    sys.shutdown();
}

#[test]
fn feed_drops_converge_via_lz_gap_fill() {
    let config = SocratesConfig::fast_test().with_fault_spec(23, "xlog.feed.poll@p:0.4=drop");
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for batch in 0..10i64 {
        let h = db.begin();
        for i in 0..30 {
            db.insert(&h, "t", &row(batch * 30 + i, "feed")).unwrap();
        }
        db.commit(h).unwrap();
    }
    let lsn = p.pipeline().hardened_lsn();
    // Dropped feed blocks are the lossy path by design: XLOG must gap-fill
    // from the landing zone and the page servers still converge.
    sys.fabric().wait_applied(lsn, Duration::from_secs(15)).unwrap();
    assert!(
        sys.fabric().faults.fired_count(sites::XLOG_FEED_POLL) > 0,
        "the feed fault schedule never fired"
    );
    assert_hub_matches_registry(&sys, sites::XLOG_FEED_POLL);
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 300);
    sys.shutdown();
}

#[test]
fn pageserver_faults_degrade_reads_to_the_checkpoint() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..200i64 {
        db.insert(&h, "t", &row(i, "deg")).unwrap();
    }
    db.commit(h).unwrap();
    let lsn = p.pipeline().hardened_lsn();
    sys.fabric().wait_applied(lsn, Duration::from_secs(10)).unwrap();
    sys.checkpoint().unwrap();

    // From here every page-server request fails. The compute tier must
    // keep answering from the XStore checkpoint instead of failing the
    // fetch chain (availability survives total replica loss).
    sys.fabric().faults.install_spec("pageserver.serve@always=error:unavailable").unwrap();
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 200);
    assert!(
        sys.fabric().degraded_read_count() > 0,
        "the scan should have been served from the checkpoint"
    );
    assert!(sys.fabric().faults.fired_count(sites::PAGESERVER_SERVE) > 0);
    assert_hub_matches_registry(&sys, sites::PAGESERVER_SERVE);

    // Close the fault window: the page servers serve again.
    sys.fabric().faults.clear();
    let before = sys.fabric().degraded_read_count();
    sys.kill_primary();
    let p3 = sys.failover().unwrap();
    let r = p3.db().begin();
    assert_eq!(p3.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 200);
    assert_eq!(sys.fabric().degraded_read_count(), before, "healthy replicas must not be bypassed");
    sys.shutdown();
}

#[test]
fn xstore_put_faults_defer_checkpoints_until_cleared() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..100i64 {
        db.insert(&h, "t", &row(i, "xs")).unwrap();
    }
    db.commit(h).unwrap();
    let lsn = p.pipeline().hardened_lsn();
    sys.fabric().wait_applied(lsn, Duration::from_secs(10)).unwrap();

    sys.fabric().faults.install_spec("xstore.put@always=error:unavailable").unwrap();
    assert!(sys.checkpoint().is_err(), "checkpoint must fail while XStore rejects writes");
    assert!(sys.fabric().faults.fired_count(sites::XSTORE_PUT) > 0);
    assert_hub_matches_registry(&sys, sites::XSTORE_PUT);

    // The deferred checkpoint succeeds once the outage clears, and the
    // data it shipped is complete (cold scan through a fresh primary).
    sys.fabric().faults.clear();
    sys.checkpoint().unwrap();
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 100);
    sys.shutdown();
}

#[test]
fn kill_partition_unregisters_metrics_and_restart_reregisters() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..150i64 {
        db.insert(&h, "t", &row(i, "m")).unwrap();
    }
    db.commit(h).unwrap();
    let lsn = p.pipeline().hardened_lsn();
    let fabric = sys.fabric();
    fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();
    sys.checkpoint().unwrap();

    let pid = fabric.partition_ids()[0];
    let old_nodes = fabric.partition(pid).unwrap().nodes.clone();
    for node in &old_nodes {
        assert!(
            sys.hub().snapshot().get(*node, "records_applied").is_some(),
            "live server {node:?} should export metrics"
        );
    }

    // Kill: every `tier.index.*` series of the dead servers must leave
    // the hub — no stale snapshots from stopped nodes.
    fabric.kill_partition(pid).unwrap();
    let snap = sys.hub().snapshot();
    for node in &old_nodes {
        assert!(snap.get(*node, "records_applied").is_none(), "stale metrics for {node:?}");
        assert!(!snap.nodes().contains(node), "{node:?} still listed in the hub");
    }

    // Restart from the remembered XStore blobs: a fresh node id appears,
    // the old ones stay gone, and the data is all there.
    fabric.restart_partition(pid).unwrap();
    let new_nodes = fabric.partition(pid).unwrap().nodes.clone();
    assert!(new_nodes.iter().all(|n| !old_nodes.contains(n)), "node ids must not be reused");
    let snap = sys.hub().snapshot();
    for node in &new_nodes {
        assert!(snap.get(*node, "records_applied").is_some(), "restarted {node:?} not registered");
    }
    for node in &old_nodes {
        assert!(!snap.nodes().contains(node), "{node:?} resurrected in the hub");
    }
    fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 150);
    sys.shutdown();
}

/// Layered-store chaos: a seeded schedule crashes the page server dead in
/// the middle of an L0→L1 compaction merge. Immutable layer files must
/// make this a non-event for history — every (page, LSN) version
/// resolvable before the crash resolves to byte-identical contents from
/// the fresh server `restart_partition` attaches afterwards.
#[test]
fn crash_mid_compaction_loses_no_resolvable_version() {
    // A tiny seal threshold banks real sealed L0s (the compaction input)
    // during the workload, while the background trigger is parked out of
    // reach so the only merge is the one crashed deterministically below.
    let mut config = SocratesConfig::fast_test().with_layer_knobs(512, usize::MAX >> 1);
    config.fault_seed = 0xC4A0;
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for batch in 0..10i64 {
        let h = db.begin();
        for i in 0..40 {
            db.insert(&h, "t", &row(batch * 40 + i, "layer")).unwrap();
        }
        db.commit(h).unwrap();
    }
    let frontier = p.pipeline().hardened_lsn();
    let fabric = sys.fabric();
    fabric.wait_applied(frontier, Duration::from_secs(10)).unwrap();
    let pid = fabric.partition_ids()[0];
    let ps = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);
    assert!(ps.layer_counts().l0 >= 2, "workload sealed no L0 layers; nothing to compact");

    // Witness every version the layered store can currently resolve: the
    // frontier image of every live page, plus a seeded spray of historical
    // LSN probes over each of them.
    let spec = fabric.partition_spec(pid);
    let mut rng = socrates_common::rng::Rng::new(0x1A7E6);
    let mut witnessed: Vec<(PageId, Lsn, Lsn, Vec<u8>)> = Vec::new();
    let mut live_pages = Vec::new();
    for off in 0..spec.span {
        let page = PageId::new(spec.base_page + off);
        if let Ok(img) = ps.get_page_at(page, frontier) {
            live_pages.push(page);
            witnessed.push((page, frontier, img.page_lsn(), img.as_bytes().to_vec()));
        }
    }
    assert!(!live_pages.is_empty(), "the workload left no resolvable pages");
    for page in &live_pages {
        for _ in 0..20 {
            let lsn = Lsn::new(1 + rng.gen_range(frontier.offset()));
            if let Ok(img) = ps.get_page_at(*page, lsn) {
                witnessed.push((*page, lsn, img.page_lsn(), img.as_bytes().to_vec()));
            }
        }
    }
    assert!(
        witnessed.len() > live_pages.len(),
        "no historical probe resolved; the time-travel surface is untested"
    );

    // Arm the crash at the merge fault site and drive the compaction that
    // dies mid-flight: the server stops itself, layer state untouched.
    fabric.faults.install_spec("ps.compact.merge@always=crash").unwrap();
    let err = ps.compact_blocking().unwrap_err();
    assert!(matches!(err, Error::Unavailable(_)), "crash fault surfaced as {err:?}");
    assert_eq!(fabric.faults.fired_count(sites::PS_COMPACT_MERGE), 1);
    assert_hub_matches_registry(&sys, sites::PS_COMPACT_MERGE);

    // Recover: a replacement server attaches to the remembered blobs and
    // replays the log. Every witnessed version must still resolve,
    // byte-identical.
    fabric.faults.clear();
    assert!(fabric.kill_partition(pid).is_some());
    fabric.restart_partition(pid).unwrap();
    fabric.wait_applied(frontier, Duration::from_secs(15)).unwrap();
    let ps2 = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);
    for (page, lsn, want_lsn, want_bytes) in &witnessed {
        let got = ps2.get_page_at(*page, *lsn).unwrap_or_else(|e| {
            panic!("({page}, {lsn}) was resolvable before the crash, lost after restart: {e}")
        });
        assert_eq!(got.page_lsn(), *want_lsn, "wrong version for ({page}, {lsn})");
        assert_eq!(got.as_bytes()[..], want_bytes[..], "contents diverged for ({page}, {lsn})");
    }
    sys.shutdown();
}

/// Chaos + blackbox: a faulted run with SLOs armed must write a flight-
/// recorder bundle on the breach edge, and the bundle must round-trip
/// through the in-tree JSON parser with every section populated — the
/// postmortem artifact CI uploads when a chaos suite fails.
#[test]
fn blackbox_bundle_from_a_faulted_run_roundtrips() {
    let dir = std::env::temp_dir().join(format!("bb-chaos-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut config = SocratesConfig::fast_test()
        .with_fault_spec(31, "lz.write@every:6=error:unavailable")
        .with_trace_sample(1, 4096)
        .with_hub_history(256, Duration::from_millis(1))
        // An objective the workload is guaranteed to miss: appending any
        // log at all breaches it, so the ok→breach edge fires once the
        // watcher ticks — exercising the automatic trigger path.
        .with_slo_spec("primary.0.log_bytes_appended < 1 over 1m")
        .with_blackbox(&dir);
    config.blackbox_last_n = 32;
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    for i in 0..60i64 {
        let h = db.begin();
        db.insert(&h, "t", &row(i, "bb")).unwrap();
        db.commit(h).unwrap();
    }
    sys.fabric().wait_applied(p.pipeline().hardened_lsn(), Duration::from_secs(30)).unwrap();

    // The watcher thread drives obs_tick; wait for the breach edge.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while sys.fabric().blackbox.bundles_written() == 0 {
        assert!(std::time::Instant::now() < deadline, "SLO breach never triggered the blackbox");
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(sys.fabric().slo_breaching(), "breach edge fired but the gauge reads ok");

    // Quiesce the async commit stages (destage, applies) so the explicit
    // bundle retains completed commit traces, then trigger what a chaos
    // harness calls on invariant violation — it gets its own sequence.
    sys.fabric().xlog.destage_all().unwrap();
    std::thread::sleep(sys.fabric().config.watcher_interval * 4 + Duration::from_millis(20));
    let explicit = sys.fabric().blackbox.trigger("chaos-invariant").unwrap();
    sys.shutdown();

    let auto = dir.join("slo-breach-0.json");
    assert!(auto.exists(), "missing automatic bundle {}", auto.display());
    for (path, quiesced) in [(auto, false), (explicit, true)] {
        let doc = socrates_common::obs::testjson::parse(&std::fs::read_to_string(&path).unwrap())
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        assert_eq!(
            doc.get("version").and_then(|v| v.as_i64()),
            Some(socrates_common::obs::BLACKBOX_VERSION as i64)
        );
        // Every ring section is present in both bundles. The breach-edge
        // bundle fires on the watcher's first tick — milliseconds into
        // the run — so only the quiesced explicit bundle guarantees the
        // rings it snapshots are populated: metrics, completed commit
        // traces, cross-tier spans (sample_every=1), fired fault events
        // (lz.write every 6th call).
        let section = |key: &str| {
            doc.get(key)
                .and_then(|v| v.as_array())
                .unwrap_or_else(|| panic!("{}: missing section {key:?}", path.display()))
                .len()
        };
        for key in ["metrics", "commit_traces", "read_spans", "slow_ops", "spans", "fault_events"] {
            let n = section(key);
            if quiesced && key != "read_spans" && key != "slow_ops" {
                assert!(n > 0, "{}: section {key:?} is empty after quiesce", path.display());
            }
        }
        assert!(section("commit_traces") <= 32, "last_n must bound the section");
        if quiesced {
            // The spans section carries causal links the deserializer
            // can walk: some span names a parent also in the bundle.
            let spans = doc.get("spans").unwrap().as_array().unwrap();
            let ids: Vec<i64> =
                spans.iter().filter_map(|s| s.get("span").and_then(|v| v.as_i64())).collect();
            assert!(
                spans.iter().any(|s| {
                    s.get("parent")
                        .and_then(|v| v.as_i64())
                        .is_some_and(|p| p != 0 && ids.contains(&p))
                }),
                "{}: no causally-linked span pair in the bundle",
                path.display()
            );
            // And a fired fault round-trips with its site name intact.
            let faults = doc.get("fault_events").unwrap().as_array().unwrap();
            assert!(
                faults.iter().any(|e| e.get("site").and_then(|s| s.as_str()) == Some("lz.write")),
                "{}: lz.write fault missing from the bundle",
                path.display()
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

//! Architecture equivalence: the same operation stream against HADR and
//! Socrates must produce identical query results — the two architectures
//! differ in *how* they store and move data, never in *what* the database
//! contains (the paper's compatibility requirement, §4.1.6).

use socrates::{Socrates, SocratesConfig};
use socrates_common::rng::Rng;
use socrates_engine::value::{ColumnType, Schema, Value};
use socrates_engine::Database;
use socrates_hadr::{Hadr, HadrConfig};

fn schema() -> Schema {
    Schema::new(
        vec![
            ("id".into(), ColumnType::Int),
            ("v".into(), ColumnType::Int),
            ("s".into(), ColumnType::Str),
        ],
        1,
    )
}

/// A deterministic mixed op stream.
fn apply_stream(db: &Database, seed: u64, ops: usize) {
    let mut rng = Rng::new(seed);
    db.create_table("t", schema()).unwrap();
    let mut open = None;
    for step in 0..ops {
        if open.is_none() {
            open = Some(db.begin());
        }
        let h = open.as_ref().unwrap();
        let id = rng.gen_range(300) as i64;
        match rng.gen_range(10) {
            0..=4 => {
                let _ = db.upsert(
                    h,
                    "t",
                    &[Value::Int(id), Value::Int(step as i64), Value::Str(format!("s{step}"))],
                );
            }
            5..=6 => {
                let _ = db.delete(h, "t", &[Value::Int(id)]);
            }
            7 => {
                let _ = db.get(h, "t", &[Value::Int(id)]);
            }
            _ => {}
        }
        // Commit or (sometimes) abort every few ops.
        if rng.gen_bool(0.3) {
            let h = open.take().unwrap();
            if rng.gen_bool(0.15) {
                db.abort(h);
            } else {
                db.commit(h).unwrap();
            }
        }
    }
    if let Some(h) = open {
        db.commit(h).unwrap();
    }
}

fn full_state(db: &Database) -> Vec<Vec<Value>> {
    let h = db.begin();
    db.scan_table(&h, "t", usize::MAX).unwrap()
}

#[test]
fn same_stream_same_state() {
    let hadr = Hadr::launch(HadrConfig::fast_test()).unwrap();
    apply_stream(hadr.db(), 777, 2000);
    let hadr_state = full_state(hadr.db());

    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    apply_stream(sys.primary().unwrap().db(), 777, 2000);
    let socrates_state = full_state(sys.primary().unwrap().db());

    assert_eq!(hadr_state.len(), socrates_state.len());
    assert_eq!(hadr_state, socrates_state);

    // And the state survives each architecture's own failure model:
    // Socrates failover...
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    assert_eq!(full_state(p2.db()), socrates_state);
    // ...and HADR replica apply.
    hadr.pipeline().flush().unwrap();
    let lsn = hadr.pipeline().hardened_lsn();
    hadr.replica(0).wait_applied(lsn, std::time::Duration::from_secs(5)).unwrap();
    let rdb = hadr.replica(0).db().unwrap();
    assert_eq!(full_state(&rdb), hadr_state);
    sys.shutdown();
}

#[test]
fn socrates_survives_what_kills_hadr_capacity() {
    // The qualitative Table 1 point: Socrates grows past one "machine"
    // (partition) without moving data; HADR replicates everything
    // everywhere. Here: write enough to span several partitions and check
    // Socrates spun up page servers on demand.
    let mut config = SocratesConfig::fast_test();
    config.pages_per_partition = 64; // tiny partitions to force growth
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    for batch in 0..20 {
        let h = db.begin();
        for i in 0..50 {
            db.insert(
                &h,
                "t",
                &[Value::Int(batch * 50 + i), Value::Int(0), Value::Str("y".repeat(400))],
            )
            .unwrap();
        }
        db.commit(h).unwrap();
    }
    let partitions = sys.fabric().partition_ids().len();
    assert!(partitions > 1, "growth must cross partitions, got {partitions}");
    // Everything still readable through the partitioned storage tier.
    sys.kill_primary();
    let p = sys.failover().unwrap();
    let h = p.db().begin();
    assert_eq!(p.db().scan_table(&h, "t", usize::MAX).unwrap().len(), 1000);
    sys.shutdown();
}

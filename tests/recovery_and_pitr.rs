//! Crash recovery (ADR) and point-in-time restore across the whole stack.

use socrates::{Socrates, SocratesConfig};
use socrates_common::{Error, Lsn, PageId};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Int)], 1)
}

fn row(id: i64, v: i64) -> Vec<Value> {
    vec![Value::Int(id), Value::Int(v)]
}

/// A page image with its checksum field zeroed: the CRC is only maintained
/// at I/O boundaries, so two reads of the same version may differ there
/// depending on which tier served them.
fn canon(p: &socrates_storage::Page) -> Vec<u8> {
    let mut b = p.as_bytes().to_vec();
    b[4..8].fill(0);
    b
}

#[test]
fn failover_after_checkpoint_and_more_commits() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..50 {
        db.insert(&h, "t", &row(i, 1)).unwrap();
    }
    db.commit(h).unwrap();
    sys.checkpoint().unwrap();
    // Work after the checkpoint (the analysis tail).
    let h = db.begin();
    for i in 50..80 {
        db.insert(&h, "t", &row(i, 2)).unwrap();
    }
    db.commit(h).unwrap();
    // A transaction that never commits.
    let open = db.begin();
    db.update(&open, "t", &row(0, -999)).unwrap();
    p.pipeline().flush().unwrap();

    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let db2 = p2.db();
    let r = db2.begin();
    assert_eq!(db2.scan_table(&r, "t", usize::MAX).unwrap().len(), 80);
    assert_eq!(
        db2.get(&r, "t", &[Value::Int(0)]).unwrap(),
        Some(row(0, 1)),
        "uncommitted update must be invisible after recovery (ADR)"
    );
    // The dead transaction's id is in the aborted map: new writers skip
    // its version.
    let h = db2.begin();
    db2.update(&h, "t", &row(0, 7)).unwrap();
    db2.commit(h).unwrap();
    let r = db2.begin();
    assert_eq!(db2.get(&r, "t", &[Value::Int(0)]).unwrap(), Some(row(0, 7)));
    sys.shutdown();
}

#[test]
fn repeated_failovers_keep_allocator_and_clock_consistent() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    sys.primary().unwrap().db().create_table("t", schema()).unwrap();
    let mut expected = 0i64;
    for round in 0..4 {
        let p = sys.primary().unwrap();
        let db = p.db();
        let h = db.begin();
        for i in 0..40 {
            db.insert(&h, "t", &row(round * 40 + i, round)).unwrap();
            expected += 1;
        }
        db.commit(h).unwrap();
        if round % 2 == 0 {
            sys.checkpoint().unwrap();
        }
        sys.kill_primary();
        sys.failover().unwrap();
    }
    let p = sys.primary().unwrap();
    let r = p.db().begin();
    assert_eq!(p.db().scan_table(&r, "t", usize::MAX).unwrap().len(), expected as usize);
    sys.shutdown();
}

#[test]
fn pitr_restores_each_era() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();

    // Era A: ids 0..30.
    let h = db.begin();
    for i in 0..30 {
        db.insert(&h, "t", &row(i, 0)).unwrap();
    }
    db.commit(h).unwrap();
    sys.checkpoint().unwrap();
    let backup = sys.backup().unwrap();
    let lsn_a = p.pipeline().hardened_lsn();

    // Era B: ids 30..60 and updates to era A.
    let h = db.begin();
    for i in 30..60 {
        db.insert(&h, "t", &row(i, 0)).unwrap();
    }
    for i in 0..10 {
        db.update(&h, "t", &row(i, 100)).unwrap();
    }
    db.commit(h).unwrap();
    let lsn_b = p.pipeline().hardened_lsn();

    // Era C: delete everything below 20.
    let h = db.begin();
    for i in 0..20 {
        db.delete(&h, "t", &[Value::Int(i)]).unwrap();
    }
    db.commit(h).unwrap();
    let lsn_c = p.pipeline().hardened_lsn();

    // Restore to A: 30 rows, none updated.
    let at_a = sys.restore_pitr(&backup, lsn_a).unwrap();
    let ra = at_a.primary().unwrap();
    let r = ra.db().begin();
    let rows = ra.db().scan_table(&r, "t", usize::MAX).unwrap();
    assert_eq!(rows.len(), 30);
    assert_eq!(ra.db().get(&r, "t", &[Value::Int(0)]).unwrap(), Some(row(0, 0)));
    at_a.shutdown();

    // Restore to B: 60 rows, first 10 updated.
    let at_b = sys.restore_pitr(&backup, lsn_b).unwrap();
    let rb = at_b.primary().unwrap();
    let r = rb.db().begin();
    assert_eq!(rb.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 60);
    assert_eq!(rb.db().get(&r, "t", &[Value::Int(5)]).unwrap(), Some(row(5, 100)));
    at_b.shutdown();

    // Restore to C: 40 rows.
    let at_c = sys.restore_pitr(&backup, lsn_c).unwrap();
    let rc = at_c.primary().unwrap();
    let r = rc.db().begin();
    assert_eq!(rc.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 40);
    assert!(rc.db().get(&r, "t", &[Value::Int(5)]).unwrap().is_none());
    at_c.shutdown();
    sys.shutdown();
}

#[test]
fn pitr_excludes_transactions_in_flight_at_target() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    db.insert(&h, "t", &row(1, 1)).unwrap();
    db.commit(h).unwrap();
    sys.checkpoint().unwrap();
    let backup = sys.backup().unwrap();

    // A transaction is mid-flight at the restore target...
    let open = db.begin();
    db.insert(&open, "t", &row(2, 2)).unwrap();
    p.pipeline().flush().unwrap();
    let target = p.pipeline().hardened_lsn();
    // ...and commits later (after the target).
    db.commit(open).unwrap();

    let restored = sys.restore_pitr(&backup, target).unwrap();
    let rp = restored.primary().unwrap();
    let r = rp.db().begin();
    assert!(rp.db().get(&r, "t", &[Value::Int(1)]).unwrap().is_some());
    assert!(
        rp.db().get(&r, "t", &[Value::Int(2)]).unwrap().is_none(),
        "a txn uncommitted at the PITR point must not be visible"
    );
    restored.shutdown();
    sys.shutdown();
}

#[test]
fn page_server_loss_and_replacement_preserves_data() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..200 {
        db.insert(&h, "t", &row(i, i)).unwrap();
    }
    db.commit(h).unwrap();
    let lsn = p.pipeline().hardened_lsn();
    sys.checkpoint().unwrap();

    let fabric = sys.fabric();
    for pid in fabric.partition_ids() {
        let old = fabric.kill_partition(pid).unwrap();
        let (data, meta) = old.servers[0].blobs();
        drop(old);
        let ps = socrates_pageserver::PageServer::attach(
            &format!("replacement-{}", pid.raw()),
            fabric.partition_spec(pid),
            fabric.config.page_server.clone(),
            std::sync::Arc::new(socrates_storage::MemFcb::new("r-ssd")),
            std::sync::Arc::new(socrates_storage::MemFcb::new("r-meta")),
            std::sync::Arc::clone(&fabric.xstore),
            data,
            meta,
            std::sync::Arc::clone(&fabric.xlog),
            fabric.cpu.accountant(socrates_common::NodeId::page_server(7)),
        )
        .unwrap();
        ps.start();
        fabric.install_partition(pid, vec![ps]).unwrap();
    }
    fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();

    // Force a cold read path through the replacements.
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    let rows = p2.db().scan_table(&r, "t", usize::MAX).unwrap();
    assert_eq!(rows.len(), 200);
    let _ = Lsn::ZERO;
    sys.shutdown();
}

#[test]
fn partition_replica_serves_reads() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..100 {
        db.insert(&h, "t", &row(i, i)).unwrap();
    }
    db.commit(h).unwrap();
    let fabric = sys.fabric();
    let pid = fabric.partition_ids()[0];
    fabric.add_partition_replica(pid).unwrap();
    assert_eq!(fabric.partition(pid).unwrap().servers.len(), 2);
    // Cold primary → reads route through the replica set.
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 100);
    sys.shutdown();
}

/// Time travel through the layered page-version store, end to end: every
/// workload frontier stays resolvable at its exact bytes across
/// checkpoints and an L0→L1 compaction, and history the retention GC
/// retires fails with a clean error naming the horizon.
#[test]
fn get_page_at_time_travels_across_checkpoints_and_gc() {
    // Tiny L0 seal so each round banks sealed history; the background
    // compaction trigger is parked so the explicit pass below is the only
    // one. A small retention window lets filler commits push the GC
    // horizon past the compaction cutoff at the end.
    let config = SocratesConfig::fast_test()
        .with_layer_knobs(256, usize::MAX >> 1)
        .with_retention_window(4096);
    let sys = Socrates::launch(config).unwrap();
    let p = sys.primary().unwrap();
    let db = p.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..20 {
        db.insert(&h, "t", &row(i, 0)).unwrap();
    }
    db.commit(h).unwrap();
    let fabric = sys.fabric();
    let pid = fabric.partition_ids()[0];
    let spec = fabric.partition_spec(pid);
    let ps = Arc::clone(&fabric.partition(pid).unwrap().servers[0]);

    // Six rounds of updates; checkpoint between every other pair so the
    // retained history straddles checkpoint images. At each round's
    // frontier, snapshot the bytes of every page the store can resolve.
    type FrontierSnap = Vec<(PageId, Vec<u8>)>;
    let mut frontiers: Vec<(Lsn, FrontierSnap)> = Vec::new();
    for round in 0..6i64 {
        let h = db.begin();
        for i in 0..20 {
            db.update(&h, "t", &row(i, round + 1)).unwrap();
        }
        db.commit(h).unwrap();
        if round % 2 == 0 {
            sys.checkpoint().unwrap();
        }
        let lsn = p.pipeline().hardened_lsn();
        fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();
        let mut snap = Vec::new();
        for off in 0..spec.span {
            let page = PageId::new(spec.base_page + off);
            if let Ok(img) = ps.get_page_at(page, lsn) {
                snap.push((page, canon(&img)));
            }
        }
        assert!(!snap.is_empty(), "round {round}: nothing resolvable at its own frontier");
        frontiers.push((lsn, snap));
    }

    // At least one page (the rows' home) must carry a distinct version at
    // every frontier, or the per-frontier probes below are vacuous.
    let versioned = |page: &PageId| {
        let versions: Vec<&Vec<u8>> = frontiers
            .iter()
            .filter_map(|(_, snap)| snap.iter().find(|(q, _)| q == page).map(|(_, b)| b))
            .collect();
        versions.len() == frontiers.len() && versions.windows(2).all(|w| w[0] != w[1])
    };
    assert!(
        frontiers[0].1.iter().any(|(page, _)| versioned(page)),
        "no page carries a distinct version at every frontier"
    );

    // Fold the sealed L0 history into a merged delta layer + L1 image,
    // then re-resolve every (page, frontier) pair byte-for-byte.
    assert!(ps.compact_blocking().unwrap(), "seven commits sealed no compaction input");
    for (lsn, snap) in &frontiers {
        for (page, want) in snap {
            let got = ps.get_page_at(*page, *lsn).unwrap_or_else(|e| {
                panic!("({page}, {lsn}) lost after checkpoints + compaction: {e}")
            });
            assert_eq!(canon(&got), *want, "version at ({page}, {lsn}) diverged");
        }
    }

    // Filler commits march the applied frontier until the retention
    // horizon passes the compaction cutoff and GC retires old layers.
    let mut floor = Lsn::ZERO;
    for attempt in 0.. {
        assert!(attempt < 200, "GC never found anything to retire");
        let h = db.begin();
        for i in 0..20 {
            db.update(&h, "t", &row(i, 99)).unwrap();
        }
        db.commit(h).unwrap();
        let lsn = p.pipeline().hardened_lsn();
        fabric.wait_applied(lsn, Duration::from_secs(10)).unwrap();
        // The floor only moves once the horizon passes an image boundary;
        // keep marching until it clears the oldest frontier.
        if let Some(f) = ps.gc().unwrap() {
            if f > frontiers[0].0 {
                floor = f;
                break;
            }
        }
    }
    assert_eq!(ps.gc_floor_lsn(), floor);

    // Retired history errors cleanly; retained history still resolves.
    for (lsn, snap) in &frontiers {
        for (page, want) in snap {
            if *lsn < floor {
                match ps.get_page_at(*page, *lsn) {
                    Err(Error::InvalidArgument(msg)) => assert!(
                        msg.contains("GC horizon"),
                        "retired read failed without naming the horizon: {msg}"
                    ),
                    other => panic!("({page}, {lsn}) is below floor {floor}: got {other:?}"),
                }
            } else {
                let got = ps.get_page_at(*page, *lsn).unwrap();
                assert_eq!(canon(&got), *want, "retained ({page}, {lsn}) diverged");
            }
        }
    }
    // And the present is unaffected: the frontier read serves the latest
    // version of every live page.
    let now = ps.applied_lsn();
    let (page, _) = &frontiers[0].1[0];
    assert_eq!(
        ps.get_page_at(*page, now).unwrap().page_lsn(),
        ps.get_page(*page, now).unwrap().page_lsn()
    );
    sys.shutdown();
}

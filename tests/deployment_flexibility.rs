//! §6 of the paper: a Socrates deployment is tailored by adding/removing
//! secondaries and page-server replicas at runtime — availability and
//! read scale-out knobs, all O(1) in data size.

use socrates::{Socrates, SocratesConfig};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::time::Duration;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Int)], 1)
}

#[test]
fn read_scale_out_with_runtime_secondaries() {
    // Start minimal: one primary, no secondaries (the paper's cheapest
    // deployment).
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..200 {
        db.insert(&h, "t", &[Value::Int(i), Value::Int(i * 3)]).unwrap();
    }
    db.commit(h).unwrap();
    assert_eq!(sys.secondary_count(), 0);

    // Scale out to three read replicas at runtime.
    for _ in 0..3 {
        sys.add_secondary().unwrap();
    }
    assert_eq!(sys.secondary_count(), 3);
    let lsn = primary.pipeline().hardened_lsn();
    for i in 0..3 {
        let sec = sys.secondary(i).unwrap();
        sec.wait_applied(lsn, Duration::from_secs(10)).unwrap();
        let r = sec.db().begin();
        assert_eq!(
            sec.db().get(&r, "t", &[Value::Int(123)]).unwrap(),
            Some(vec![Value::Int(123), Value::Int(369)]),
            "secondary {i}"
        );
    }

    // All secondaries keep tracking new commits.
    let h = db.begin();
    db.update(&h, "t", &[Value::Int(123), Value::Int(-1)]).unwrap();
    db.commit(h).unwrap();
    let lsn = primary.pipeline().hardened_lsn();
    for i in 0..3 {
        let sec = sys.secondary(i).unwrap();
        sec.wait_applied(lsn, Duration::from_secs(10)).unwrap();
        let r = sec.db().begin();
        assert_eq!(
            sec.db().get(&r, "t", &[Value::Int(123)]).unwrap(),
            Some(vec![Value::Int(123), Value::Int(-1)])
        );
    }

    // Scale back in.
    sys.remove_secondary(2).unwrap();
    sys.remove_secondary(1).unwrap();
    assert_eq!(sys.secondary_count(), 1);
    sys.shutdown();
}

#[test]
fn planned_promotion_of_a_secondary() {
    let mut config = SocratesConfig::fast_test();
    config.secondaries = 1;
    let sys = Socrates::launch(config).unwrap();
    {
        let primary = sys.primary().unwrap();
        let db = primary.db();
        db.create_table("t", schema()).unwrap();
        let h = db.begin();
        db.insert(&h, "t", &[Value::Int(1), Value::Int(10)]).unwrap();
        db.commit(h).unwrap();
        let sec = sys.secondary(0).unwrap();
        sec.wait_applied(primary.pipeline().hardened_lsn(), Duration::from_secs(5)).unwrap();
    }
    // Planned failover: the secondary is drained and a new primary rises.
    let new_primary = sys.promote_secondary(0).unwrap();
    assert_eq!(sys.secondary_count(), 0);
    let db = new_primary.db();
    let r = db.begin();
    assert_eq!(
        db.get(&r, "t", &[Value::Int(1)]).unwrap(),
        Some(vec![Value::Int(1), Value::Int(10)])
    );
    // And it is writable.
    let h = db.begin();
    db.update(&h, "t", &[Value::Int(1), Value::Int(11)]).unwrap();
    db.commit(h).unwrap();
    sys.shutdown();
}

#[test]
fn secondary_snapshot_reads_are_stable_under_writes() {
    let mut config = SocratesConfig::fast_test();
    config.secondaries = 1;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    let h = db.begin();
    for i in 0..50 {
        db.insert(&h, "t", &[Value::Int(i), Value::Int(0)]).unwrap();
    }
    db.commit(h).unwrap();
    let sec = sys.secondary(0).unwrap();
    sec.wait_applied(primary.pipeline().hardened_lsn(), Duration::from_secs(5)).unwrap();

    // Open a snapshot on the secondary, then update everything on the
    // primary; the snapshot must keep seeing 0s (shared version store).
    let snap = sec.db().begin();
    let before = sec.db().scan_table(&snap, "t", usize::MAX).unwrap();
    let w = db.begin();
    for i in 0..50 {
        db.update(&w, "t", &[Value::Int(i), Value::Int(999)]).unwrap();
    }
    db.commit(w).unwrap();
    sec.wait_applied(primary.pipeline().hardened_lsn(), Duration::from_secs(5)).unwrap();
    let after = sec.db().scan_table(&snap, "t", usize::MAX).unwrap();
    assert_eq!(before, after, "old snapshot must not see new commits");
    // A fresh snapshot sees the updates.
    let fresh = sec.db().begin();
    let rows = sec.db().scan_table(&fresh, "t", usize::MAX).unwrap();
    assert!(rows.iter().all(|r| r[1] == Value::Int(999)));
    sys.shutdown();
}

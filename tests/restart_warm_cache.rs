//! RBPEX recoverability (paper §3.3): after a short restart, a node
//! recovers its SSD cache and only replays the log records newer than each
//! cached page — instead of refetching its whole working set.

use socrates_common::{Lsn, PageId, TxnId};
use socrates_storage::fcb::{Fcb, MemFcb};
use socrates_storage::page::{Page, PageType};
use socrates_storage::pageops::{apply_page_op, PageOp};
use socrates_storage::rbpex::{Rbpex, RbpexPolicy};
use socrates_wal::block::BlockBuilder;
use socrates_wal::record::{LogPayload, LogRecord};
use std::sync::Arc;

#[test]
fn restart_replays_only_the_delta() {
    // The SSD device and its metadata journal survive the "restart".
    let ssd: Arc<MemFcb> = Arc::new(MemFcb::new("ssd"));
    let meta: Arc<MemFcb> = Arc::new(MemFcb::new("meta"));
    let n_pages = 64u64;

    // Life 1: a cache with 64 pages, each updated a few times.
    let mut log: Vec<(PageId, Vec<u8>, Lsn)> = Vec::new();
    let mut next_lsn = 100u64;
    {
        let cache = Rbpex::create(
            Arc::clone(&ssd) as Arc<dyn Fcb>,
            Arc::clone(&meta) as Arc<dyn Fcb>,
            RbpexPolicy::Sparse { capacity_pages: n_pages as usize },
        )
        .unwrap();
        for pid in 0..n_pages {
            let mut page = Page::new(PageId::new(pid), PageType::BTreeLeaf);
            apply_page_op(
                &mut page,
                &PageOp::Format { ptype: PageType::BTreeLeaf },
                Lsn::new(next_lsn),
            )
            .unwrap();
            next_lsn += 1;
            for upd in 0..3 {
                let op = PageOp::Insert { idx: upd, bytes: format!("v{pid}-{upd}").into_bytes() };
                let mut bytes = Vec::new();
                op.encode(&mut bytes);
                apply_page_op(&mut page, &op, Lsn::new(next_lsn)).unwrap();
                log.push((PageId::new(pid), bytes, Lsn::new(next_lsn)));
                next_lsn += 1;
            }
            cache.put(&page).unwrap();
        }
    } // restart

    // While the node was down, 10 pages got 1 more update each (on the
    // primary, flowing through the log).
    let mut tail: Vec<(PageId, Vec<u8>, Lsn)> = Vec::new();
    for pid in 0..10u64 {
        let op = PageOp::Insert { idx: 3, bytes: format!("new-{pid}").into_bytes() };
        let mut bytes = Vec::new();
        op.encode(&mut bytes);
        tail.push((PageId::new(pid), bytes, Lsn::new(next_lsn)));
        next_lsn += 1;
    }

    // Life 2: recover the cache, then replay the tail with the standard
    // LSN-idempotence rule — count how many records actually apply.
    let cache = Rbpex::recover(
        Arc::clone(&ssd) as Arc<dyn Fcb>,
        Arc::clone(&meta) as Arc<dyn Fcb>,
        RbpexPolicy::Sparse { capacity_pages: n_pages as usize },
    )
    .unwrap();
    assert_eq!(cache.len(), n_pages as usize, "the whole cache survived the restart");

    let mut applied = 0usize;
    let mut skipped = 0usize;
    for (pid, op_bytes, lsn) in log.iter().chain(tail.iter()) {
        let mut page = cache.get(*pid).unwrap().expect("cached");
        if page.page_lsn() >= *lsn {
            skipped += 1;
            continue;
        }
        let (op, _) = PageOp::decode(op_bytes).unwrap();
        apply_page_op(&mut page, &op, *lsn).unwrap();
        cache.put(&page).unwrap();
        applied += 1;
    }
    assert_eq!(applied, 10, "only the 10 post-restart records needed replay");
    assert_eq!(skipped, log.len(), "all pre-restart records were already in the cache");

    // The recovered + caught-up pages are correct.
    let p = cache.get(PageId::new(3)).unwrap().unwrap();
    assert_eq!(socrates_storage::Slotted::slot_count(&p), 4);
    let p = cache.get(PageId::new(40)).unwrap().unwrap();
    assert_eq!(socrates_storage::Slotted::slot_count(&p), 3);
}

#[test]
fn log_blocks_roundtrip_through_landing_zone_after_restart() {
    // A smaller end-to-end restart: the LZ retains hardened blocks across
    // a consumer restart, and the consumer can rescan from its cursor.
    use socrates_wal::landing_zone::{LandingZone, LandingZoneConfig};
    let lz = LandingZone::new(
        vec![Arc::new(MemFcb::new("lz")) as Arc<dyn Fcb>],
        LandingZoneConfig { capacity: 1 << 20, write_quorum: 1 },
    );
    let mut start = Lsn::ZERO;
    let mut block_starts = Vec::new();
    for i in 0..10u64 {
        let mut b = BlockBuilder::new(start, 1 << 16);
        b.append(
            &LogRecord {
                txn: TxnId::new(i),
                payload: LogPayload::PageWrite { page_id: PageId::new(i), op: vec![1; 32] },
            },
            None,
        );
        let block = b.seal();
        lz.write_block(&block).unwrap();
        block_starts.push(block.start_lsn());
        start = block.end_lsn();
    }
    // "Restart" from the 6th block's cursor.
    let mut seen = 0;
    lz.scan_from(block_starts[5], |b| {
        assert!(b.start_lsn() >= block_starts[5]);
        seen += 1;
        true
    })
    .unwrap();
    assert_eq!(seen, 5);
}

//! Integration: the end-to-end observability layer.
//!
//! Drives a full deployment (primary + secondary + page servers + XLOG)
//! through a real commit workload and then interrogates everything the
//! observability subsystem promises: complete per-stage commit traces,
//! a hub snapshot covering every tier, lag gauges that return to zero
//! once the system quiesces, and exporters whose output parses.

use socrates::{Socrates, SocratesConfig};
use socrates_common::ids::NodeKind;
use socrates_common::obs::{
    chrome_trace_json, json_snapshot, json_trace_summary, prometheus_text, testjson, MetricValue,
    SpanKind, Stage,
};
use socrates_common::NodeId;
use socrates_engine::value::{ColumnType, Schema, Value};
use std::collections::HashSet;
use std::time::{Duration, Instant};

const COMMITS: u64 = 120;

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Str)], 1)
}

/// Launch primary + 1 secondary, drive `COMMITS` transactions, quiesce.
fn observed_deployment() -> Socrates {
    let mut config = SocratesConfig::fast_test();
    config.secondaries = 1;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    for i in 0..COMMITS {
        let h = db.begin();
        db.insert(&h, "t", &[Value::Int(i as i64), Value::Str(format!("v{i}"))]).unwrap();
        db.commit(h).unwrap();
    }
    // Quiesce: storage catches up, XLOG destages, and the watcher gets a
    // few ticks to complete the async trace stages.
    let frontier = primary.pipeline().hardened_lsn();
    sys.fabric().wait_applied(frontier, Duration::from_secs(30)).unwrap();
    sys.secondary(0).unwrap().wait_applied(frontier, Duration::from_secs(30)).unwrap();
    sys.fabric().xlog.destage_all().unwrap();
    sys
}

/// Wait (bounded) for a predicate that the watcher thread satisfies.
fn eventually(mut pred: impl FnMut() -> bool, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn commit_traces_cover_every_stage() {
    let sys = observed_deployment();

    // The watcher needs to observe the final frontiers.
    eventually(
        || sys.trace().completed_traces().len() as u64 >= COMMITS,
        "all commit traces to complete",
    );

    let traces = sys.trace().completed_traces();
    assert!(traces.len() as u64 >= COMMITS, "only {} complete traces", traces.len());
    for t in &traces {
        for stage in Stage::ALL {
            assert!(
                t.stage_ns(stage) > 0,
                "commit {} (lsn {}) has zero duration for stage {}",
                t.txn,
                t.lsn,
                stage.name()
            );
        }
        assert!(t.is_complete());
        assert!(t.total_ns() >= t.stage_ns(Stage::Engine));
    }
    // Percentile queries answer over the retained window.
    assert!(sys.trace().stage_percentile_us(Stage::Harden, 0.5) > 0);
    assert!(sys.trace().commits_recorded() >= COMMITS);
    sys.shutdown();
}

#[test]
fn hub_snapshot_covers_every_tier() {
    let sys = observed_deployment();
    let snapshot = sys.hub().snapshot();

    let tiers: Vec<NodeKind> = snapshot.nodes().iter().map(|n| n.kind).collect();
    for want in [NodeKind::Primary, NodeKind::Secondary, NodeKind::XLog, NodeKind::PageServer] {
        assert!(tiers.contains(&want), "no {} metrics in snapshot", want.tier_name());
    }

    // Spot-check one live metric per tier.
    match snapshot.get(NodeId::PRIMARY, "log_bytes_appended") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0, "no log bytes appended"),
        other => panic!("primary log_bytes_appended missing/wrong type: {other:?}"),
    }
    match snapshot.get(NodeId::XLOG, "blocks_offered") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0),
        other => panic!("xlog blocks_offered: {other:?}"),
    }
    match snapshot.get(NodeId::page_server(0), "records_applied") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0),
        other => panic!("pageserver records_applied: {other:?}"),
    }
    assert!(
        snapshot.get(NodeId::secondary(0), "applied_lsn").is_some(),
        "secondary applied_lsn missing"
    );
    // The commit-stage histograms are in the hub too (registered off the
    // trace recorder).
    match snapshot.get(NodeId::PRIMARY, "commit_stage_harden_us") {
        Some(MetricValue::Histogram(h)) => assert!(h.count >= COMMITS),
        other => panic!("commit_stage_harden_us: {other:?}"),
    }
    sys.shutdown();
}

#[test]
fn lag_gauges_return_to_zero_after_quiesce() {
    let sys = observed_deployment();

    let lag_of = |node: NodeId, name: &str| -> i64 {
        match sys.hub().snapshot().get(node, name) {
            Some(MetricValue::Gauge(v)) => *v,
            other => panic!("{name}: {other:?}"),
        }
    };
    // Service-sampled gauges read the watermarks directly; the background
    // apply/destage threads may still be a scheduling quantum away from
    // their final advance, so allow a bounded drain.
    eventually(
        || lag_of(NodeId::page_server(0), "apply_lag_bytes") == 0,
        "pageserver apply lag to drain",
    );
    eventually(|| lag_of(NodeId::XLOG, "destage_lag_bytes") == 0, "destage lag to drain");
    // Watcher-owned gauges need a tick after the frontier settles.
    eventually(
        || lag_of(NodeId::XLOG, "max_pageserver_lag_bytes") == 0,
        "watcher pageserver lag to drain",
    );
    eventually(
        || lag_of(NodeId::XLOG, "max_secondary_lag_bytes") == 0,
        "watcher secondary lag to drain",
    );
    sys.shutdown();
}

#[test]
fn exporters_emit_parseable_output() {
    let sys = observed_deployment();
    let snapshot = sys.hub().snapshot();

    // Prometheus: every non-comment line is `name{labels} value`.
    let prom = prometheus_text(&snapshot);
    assert!(prom.contains("# TYPE socrates_log_bytes_appended counter"));
    assert!(prom.contains("tier=\"pageserver\""));
    assert!(prom.contains("tier=\"secondary\""));
    let mut lines = 0;
    for line in prom.lines().filter(|l| !l.starts_with('#')) {
        let (series, value) = line.rsplit_once(' ').expect("space-separated");
        let name_end = series.find('{').expect("labels start");
        assert!(series.ends_with('}'), "unterminated labels: {series}");
        assert!(
            series[..name_end].chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "illegal prometheus name: {}",
            &series[..name_end]
        );
        value.parse::<f64>().unwrap_or_else(|_| panic!("bad value {value}"));
        lines += 1;
    }
    assert!(lines > 20, "suspiciously few prometheus samples: {lines}");

    // JSON: parses, and carries the same sample count as the snapshot.
    let json = json_snapshot(&snapshot);
    let v = testjson::parse(&json).expect("valid JSON snapshot");
    let metrics = v.get("metrics").and_then(|m| m.as_array()).expect("metrics array");
    assert_eq!(metrics.len(), snapshot.samples.len());

    // Trace summary: parses and reports every stage.
    let summary = testjson::parse(&json_trace_summary(sys.trace())).expect("valid JSON");
    assert!(summary.get("commits").and_then(|c| c.as_i64()).unwrap() >= COMMITS as i64);
    let stages = summary.get("stages").expect("stages object");
    for stage in Stage::ALL {
        let s = stages.get(stage.name()).expect("stage entry");
        assert!(s.get("count").and_then(|c| c.as_i64()).unwrap() > 0);
    }
    sys.shutdown();
}

#[test]
fn traced_commit_yields_causally_linked_spans_across_tiers() {
    // Sample every commit/GetPage into the cross-tier span ring.
    let mut config = SocratesConfig::fast_test();
    config.secondaries = 1;
    config.trace_sample = 1;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema()).unwrap();
    for i in 0..COMMITS {
        let h = db.begin();
        db.insert(&h, "t", &[Value::Int(i as i64), Value::Str(format!("v{i}"))]).unwrap();
        db.commit(h).unwrap();
    }
    let frontier = primary.pipeline().hardened_lsn();
    sys.fabric().wait_applied(frontier, Duration::from_secs(30)).unwrap();
    sys.secondary(0).unwrap().wait_applied(frontier, Duration::from_secs(30)).unwrap();

    // The feed pump and page-server apply record their spans
    // asynchronously; wait until at least one trace has grown a
    // page-server apply span.
    let spans_of = |trace: u64| -> Vec<socrates_common::obs::SpanEvent> {
        sys.fabric().spans.spans().into_iter().filter(|s| s.trace_id == trace).collect()
    };
    let pick_trace = || -> Option<u64> {
        sys.fabric()
            .spans
            .spans()
            .iter()
            .filter(|s| s.kind == SpanKind::PsApply)
            .map(|s| s.trace_id)
            .find(|&t| spans_of(t).iter().any(|s| s.kind == SpanKind::Commit))
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    let trace_id = loop {
        if let Some(t) = pick_trace() {
            break t;
        }
        assert!(Instant::now() < deadline, "no trace grew a cross-tier apply span");
        std::thread::sleep(Duration::from_millis(5));
    };

    // Acceptance: one traced commit renders ≥5 causally-linked spans
    // spanning ≥3 tiers.
    let trace = spans_of(trace_id);
    assert!(trace.len() >= 5, "only {} spans in trace {trace_id}: {trace:?}", trace.len());
    let tiers: HashSet<NodeKind> = trace.iter().map(|s| s.node.kind).collect();
    assert!(tiers.len() >= 3, "trace {trace_id} spans only {tiers:?}");

    // Causal linkage: exactly one root (the commit), and every other
    // span's parent is a span of the same trace.
    let ids: HashSet<u64> = trace.iter().map(|s| s.span_id).collect();
    let roots: Vec<_> = trace.iter().filter(|s| s.parent_id == 0).collect();
    assert_eq!(roots.len(), 1, "trace {trace_id} has {} roots", roots.len());
    assert_eq!(roots[0].kind, SpanKind::Commit);
    assert_eq!(roots[0].span_id, trace_id, "trace id is the root span id");
    for s in &trace {
        if s.parent_id != 0 {
            assert!(
                ids.contains(&s.parent_id),
                "span {:?} parents outside its trace",
                s.kind.name()
            );
        }
    }
    // The commit's stage children all surface.
    for kind in [SpanKind::CommitEngine, SpanKind::CommitHarden, SpanKind::WalHarden] {
        assert!(
            trace.iter().any(|s| s.kind == kind),
            "trace {trace_id} missing a {} span",
            kind.name()
        );
    }
    assert!(
        trace.iter().any(|s| s.node.kind == NodeKind::XLog),
        "trace {trace_id} never crossed into the XLOG tier"
    );

    // The Chrome exporter renders the same events as valid JSON with one
    // complete-event entry per span (plus thread-name metadata).
    let all = sys.fabric().spans.spans();
    let doc = testjson::parse(&chrome_trace_json(&all)).expect("valid chrome trace JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).expect("traceEvents array");
    let complete =
        events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).count();
    assert_eq!(complete, all.len(), "one X event per recorded span");
    sys.shutdown();
}

#[test]
fn disarmed_span_ring_stays_empty() {
    // fast_test leaves trace_sample = 0: the whole workload must not
    // record a single cross-tier span or mint an id.
    let sys = observed_deployment();
    assert!(!sys.fabric().spans.is_enabled());
    assert_eq!(sys.fabric().spans.spans_recorded(), 0);
    assert!(sys.fabric().spans.spans().is_empty());
    sys.shutdown();
}

#[test]
fn node_lifecycle_updates_the_hub() {
    let sys = observed_deployment();

    // Scale out: a new secondary's metrics appear.
    let idx = sys.add_secondary().unwrap();
    let node = sys.secondary(idx).unwrap().node();
    assert!(sys.hub().snapshot().get(node, "applied_lsn").is_some());

    // Scale in: they disappear.
    sys.remove_secondary(idx).unwrap();
    assert!(
        sys.hub().snapshot().get(node, "applied_lsn").is_none(),
        "removed secondary still in hub"
    );

    // Failover: the replacement primary re-registers under the same id and
    // its counters keep counting from the new node's perspective.
    sys.kill_primary();
    let new_primary = sys.failover().unwrap();
    let db = new_primary.db();
    let h = db.begin();
    db.insert(&h, "t", &[Value::Int(10_000), Value::Str("post-failover".into())]).unwrap();
    db.commit(h).unwrap();
    match sys.hub().snapshot().get(NodeId::PRIMARY, "log_bytes_appended") {
        Some(MetricValue::Counter(v)) => assert!(*v > 0),
        other => panic!("failover primary not registered: {other:?}"),
    }
    sys.shutdown();
}

//! End-to-end integration: the full Socrates stack under a lossy XLOG
//! feed, with secondaries, page-server convergence, and cache pressure.

use socrates::{Socrates, SocratesConfig};
use socrates_engine::value::{ColumnType, Schema, Value};
use socrates_rbio::lossy::LossyConfig;
use std::time::Duration;

fn schema(cols: usize) -> Schema {
    let mut columns = vec![("id".to_string(), ColumnType::Int)];
    for i in 1..cols {
        columns.push((format!("c{i}"), ColumnType::Str));
    }
    Schema::new(columns, 1)
}

fn row(id: i64, cols: usize, tag: &str) -> Vec<Value> {
    let mut r = vec![Value::Int(id)];
    for i in 1..cols {
        r.push(Value::Str(format!("{tag}-{id}-{i}")));
    }
    r
}

#[test]
fn lossy_feed_still_converges_everywhere() {
    // A hostile feed: 25% of blocks dropped, 15% reordered. The landing
    // zone gap-fill must make everything whole.
    let mut config = SocratesConfig::fast_test();
    config.lossy_feed = LossyConfig::unreliable(0.25, 0.15, 1234);
    config.secondaries = 1;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema(3)).unwrap();
    for batch in 0..20 {
        let h = db.begin();
        for i in 0..25 {
            db.insert(&h, "t", &row(batch * 25 + i, 3, "x")).unwrap();
        }
        db.commit(h).unwrap();
    }
    let lsn = primary.pipeline().hardened_lsn();
    // Page servers converge.
    sys.fabric().wait_applied(lsn, Duration::from_secs(10)).unwrap();
    // Secondary converges and reads everything.
    let sec = sys.secondary(0).unwrap();
    sec.wait_applied(lsn, Duration::from_secs(10)).unwrap();
    let r = sec.db().begin();
    let rows = sec.db().scan_table(&r, "t", usize::MAX).unwrap();
    assert_eq!(rows.len(), 500);
    // A cold replacement primary (pure GetPage@LSN reads) sees the same.
    sys.kill_primary();
    let p2 = sys.failover().unwrap();
    let r = p2.db().begin();
    assert_eq!(p2.db().scan_table(&r, "t", usize::MAX).unwrap().len(), 500);
    sys.shutdown();
}

#[test]
fn tiny_cache_forces_getpage_traffic() {
    // A cache far smaller than the database: correctness must not depend
    // on residency.
    let config = SocratesConfig::fast_test().with_cache(24, 0);
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("t", schema(2)).unwrap();
    let n = 2000i64;
    for batch in 0..(n / 100) {
        let h = db.begin();
        for i in 0..100 {
            db.insert(&h, "t", &row(batch * 100 + i, 2, "padpadpadpad")).unwrap();
        }
        db.commit(h).unwrap();
    }
    // Read everything back in a scattered order.
    let h = db.begin();
    let mut rng = socrates_common::rng::Rng::new(5);
    for _ in 0..500 {
        let id = rng.gen_range(n as u64) as i64;
        let got = db.get(&h, "t", &[Value::Int(id)]).unwrap().expect("present");
        assert_eq!(got, row(id, 2, "padpadpadpad"));
    }
    // The cache really was too small: remote fetches happened.
    assert!(
        primary.io().cache().stats().fetches.get() > 0,
        "expected GetPage@LSN traffic with a 24-page cache"
    );
    sys.shutdown();
}

#[test]
fn multi_table_transactions_are_atomic() {
    let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
    let primary = sys.primary().unwrap();
    let db = primary.db();
    db.create_table("a", schema(2)).unwrap();
    db.create_table("b", schema(2)).unwrap();
    // A transaction spanning both tables aborts: neither side visible.
    let h = db.begin();
    db.insert(&h, "a", &row(1, 2, "a")).unwrap();
    db.insert(&h, "b", &row(1, 2, "b")).unwrap();
    db.abort(h);
    let r = db.begin();
    assert!(db.get(&r, "a", &[Value::Int(1)]).unwrap().is_none());
    assert!(db.get(&r, "b", &[Value::Int(1)]).unwrap().is_none());
    // And committing makes both visible atomically.
    let h = db.begin();
    db.insert(&h, "a", &row(2, 2, "a")).unwrap();
    db.insert(&h, "b", &row(2, 2, "b")).unwrap();
    db.commit(h).unwrap();
    let r = db.begin();
    assert!(db.get(&r, "a", &[Value::Int(2)]).unwrap().is_some());
    assert!(db.get(&r, "b", &[Value::Int(2)]).unwrap().is_some());
    sys.shutdown();
}

#[test]
fn secondary_catches_ddl() {
    let mut config = SocratesConfig::fast_test();
    config.secondaries = 1;
    let sys = Socrates::launch(config).unwrap();
    let primary = sys.primary().unwrap();
    // DDL *after* the secondary is already running.
    primary.db().create_table("late_table", schema(2)).unwrap();
    let h = primary.db().begin();
    primary.db().insert(&h, "late_table", &row(5, 2, "ddl")).unwrap();
    primary.db().commit(h).unwrap();
    let sec = sys.secondary(0).unwrap();
    sec.wait_applied(primary.pipeline().hardened_lsn(), Duration::from_secs(5)).unwrap();
    let r = sec.db().begin();
    assert_eq!(sec.db().get(&r, "late_table", &[Value::Int(5)]).unwrap(), Some(row(5, 2, "ddl")));
    sys.shutdown();
}

//! Property-based tests over the full Socrates stack: arbitrary operation
//! sequences (with commits, aborts, failovers, and checkpoints) must match
//! a sequential model.

use proptest::prelude::*;
use socrates::{Socrates, SocratesConfig};
use socrates_engine::value::{ColumnType, Schema, Value};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Upsert(i64, i64),
    Delete(i64),
    Commit,
    Abort,
    Checkpoint,
    Failover,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0i64..60, any::<i64>()).prop_map(|(k, v)| Op::Upsert(k, v)),
        2 => (0i64..60).prop_map(Op::Delete),
        3 => Just(Op::Commit),
        1 => Just(Op::Abort),
        1 => Just(Op::Checkpoint),
        1 => Just(Op::Failover),
    ]
}

fn schema() -> Schema {
    Schema::new(vec![("id".into(), ColumnType::Int), ("v".into(), ColumnType::Int)], 1)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12, // each case spins up a full deployment
        max_shrink_iters: 40,
    })]

    #[test]
    fn socrates_matches_sequential_model(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let sys = Socrates::launch(SocratesConfig::fast_test()).unwrap();
        sys.primary().unwrap().db().create_table("t", schema()).unwrap();

        let mut committed: BTreeMap<i64, i64> = BTreeMap::new();
        let mut pending: BTreeMap<i64, Option<i64>> = BTreeMap::new(); // None = delete
        let mut open = None;

        for op in &ops {
            let primary = sys.primary().unwrap();
            let db = primary.db();
            match op {
                Op::Upsert(k, v) => {
                    let h = *open.get_or_insert_with(|| db.begin());
                    db.upsert(&h, "t", &[Value::Int(*k), Value::Int(*v)]).unwrap();
                    pending.insert(*k, Some(*v));
                }
                Op::Delete(k) => {
                    let h = *open.get_or_insert_with(|| db.begin());
                    let existed = db.delete(&h, "t", &[Value::Int(*k)]).unwrap();
                    let model_existed = pending.get(k).map_or_else(
                        || committed.contains_key(k),
                        |v| v.is_some(),
                    );
                    prop_assert_eq!(existed, model_existed);
                    pending.insert(*k, None);
                }
                Op::Commit => {
                    if let Some(h) = open.take() {
                        db.commit(h).unwrap();
                        for (k, v) in pending.drain_filter_like() {
                            match v {
                                Some(v) => { committed.insert(k, v); }
                                None => { committed.remove(&k); }
                            }
                        }
                    }
                }
                Op::Abort => {
                    if let Some(h) = open.take() {
                        db.abort(h);
                        pending.clear();
                    }
                }
                Op::Checkpoint => {
                    // Only between transactions (a checkpoint mid-txn is
                    // fine for the system but makes the model fiddly).
                    if open.is_none() {
                        sys.checkpoint().unwrap();
                    }
                }
                Op::Failover => {
                    if open.is_none() {
                        sys.kill_primary();
                        sys.failover().unwrap();
                    } else {
                        // Crash with a transaction open: its writes vanish.
                        open = None;
                        pending.clear();
                        sys.kill_primary();
                        sys.failover().unwrap();
                    }
                }
            }
        }
        // Final state must equal the model's committed map.
        let primary = sys.primary().unwrap();
        let db = primary.db();
        if let Some(h) = open.take() {
            db.abort(h);
        }
        let h = db.begin();
        let rows = db.scan_table(&h, "t", usize::MAX).unwrap();
        let got: BTreeMap<i64, i64> = rows
            .iter()
            .map(|r| match (&r[0], &r[1]) {
                (Value::Int(k), Value::Int(v)) => (*k, *v),
                _ => unreachable!(),
            })
            .collect();
        prop_assert_eq!(got, committed);
        sys.shutdown();
    }
}

/// Tiny helper: drain a BTreeMap (name avoids the unstable drain_filter).
trait DrainAll<K, V> {
    fn drain_filter_like(&mut self) -> Vec<(K, V)>;
}

impl<K: Ord + Clone, V: Clone> DrainAll<K, V> for BTreeMap<K, V> {
    fn drain_filter_like(&mut self) -> Vec<(K, V)> {
        let out: Vec<(K, V)> = self.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        self.clear();
        out
    }
}

//! Root package of the socrates-rs workspace.
//!
//! This package owns the runnable examples in `examples/` and the
//! cross-crate integration tests in `tests/`. It re-exports the workspace
//! crates under short names so examples and tests read naturally.

pub use socrates;
pub use socrates_cdb as cdb;
pub use socrates_common as common;
pub use socrates_engine as engine;
pub use socrates_hadr as hadr;
pub use socrates_pageserver as pageserver;
pub use socrates_rbio as rbio;
pub use socrates_storage as storage;
pub use socrates_wal as wal;
pub use socrates_xlog as xlog;
pub use socrates_xstore as xstore;
